"""Legacy setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
