"""Shared serving-tier fixtures: one published artifact pair per module.

Building and publishing an ADS dominates these tests' runtime, so the
artifact (and its epoch-1 delta) are built once per module and shared;
every test cold-starts its own front-end/workers from the files.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.owner import DataOwner
from repro.core.records import Record
from repro.crypto.signer import make_signer
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

N_RECORDS = 40


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """Dataset, template and published epoch-0/epoch-1 artifact paths."""
    directory = tmp_path_factory.mktemp("serving-ads")
    workload = WorkloadConfig(n_records=N_RECORDS, dimension=1, seed=9)
    dataset = make_dataset(workload)
    template = make_template(workload)
    owner = DataOwner(
        dataset,
        template,
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        keypair=make_signer("hmac", rng=random.Random(99)),
    )
    epoch0 = directory / "ads-epoch0.npz"
    owner.publish(epoch0)
    owner.apply_updates(
        inserts=[Record(record_id=N_RECORDS, values=(4.0, 3.0))], deletes=[1]
    )
    epoch1 = directory / "ads-epoch1.npz"
    owner.publish(epoch1, base=epoch0)
    return {
        "dataset": dataset,
        "template": template,
        "epoch0": epoch0,
        "epoch1": epoch1,
    }
