"""Percentile math, clock behaviour and recorder summaries."""

import pytest

from repro.metrics.timing import LatencySummary, percentile
from repro.serving.recorder import LatencyRecorder, ServingClock


class FakeTicket:
    def __init__(self, enqueued_at, dispatched_at, completed_at, worker_id, error=None):
        self.enqueued_at = enqueued_at
        self.dispatched_at = dispatched_at
        self.completed_at = completed_at
        self.worker_id = worker_id
        self.error = error


# ---------------------------------------------------------------- percentile
def test_percentile_nearest_rank():
    samples = [float(value) for value in range(1, 101)]
    assert percentile(samples, 50.0) == 50.0
    assert percentile(samples, 95.0) == 95.0
    assert percentile(samples, 99.0) == 99.0
    assert percentile(samples, 100.0) == 100.0
    assert percentile(samples, 0.0) == 1.0


def test_percentile_is_an_observed_value():
    samples = [0.1, 0.9, 5.0]
    for q in (1.0, 33.0, 50.0, 90.0, 99.9):
        assert percentile(samples, q) in samples


def test_percentile_validation():
    with pytest.raises(ValueError, match="empty"):
        percentile([], 50.0)
    with pytest.raises(ValueError, match="rank"):
        percentile([1.0], 150.0)


def test_latency_summary_fields():
    summary = LatencySummary.from_samples([0.2, 0.4, 0.6, 0.8])
    assert summary.count == 4
    assert summary.mean == pytest.approx(0.5)
    assert summary.p50 == 0.4
    assert summary.max == 0.8
    assert summary.as_dict()["p99"] == 0.8


# --------------------------------------------------------------------- clock
def test_clock_monotonic_and_sleep_until_past_deadline_returns():
    clock = ServingClock()
    first = clock.now()
    clock.sleep(0.0)  # no-op
    clock.sleep(-1.0)  # no-op
    clock.sleep_until(first - 10.0)  # already passed: returns immediately
    assert clock.now() >= first


def test_sleep_until_reaches_deadline():
    clock = ServingClock()
    deadline = clock.now() + 0.02
    clock.sleep_until(deadline)
    assert clock.now() >= deadline


# ------------------------------------------------------------------ recorder
def test_recorder_summary_counts_and_percentiles():
    recorder = LatencyRecorder()
    recorder.observe_all(
        [
            FakeTicket(0.0, 0.01, 0.10, worker_id=0),
            FakeTicket(0.1, 0.12, 0.30, worker_id=1),
            FakeTicket(0.2, 0.21, 0.50, worker_id=0),
            FakeTicket(0.3, None, None, worker_id=None, error="boom"),
        ]
    )
    summary = recorder.summary(offered_rate=10.0)
    assert summary["observed"] == 4
    assert summary["completed"] == 3
    assert summary["errored"] == 1
    assert summary["dropped"] == 0
    assert summary["wall_seconds"] == pytest.approx(0.5)
    assert summary["achieved_rate"] == pytest.approx(3 / 0.5)
    assert summary["achieved_over_offered"] == pytest.approx(0.6)
    assert summary["latency"]["count"] == 3
    assert summary["latency"]["max"] == pytest.approx(0.3)
    assert summary["queue_delay"]["count"] == 3


def test_recorder_flags_unresolved_tickets_as_errored():
    recorder = LatencyRecorder()
    recorder.observe(FakeTicket(0.0, None, None, worker_id=None))
    summary = recorder.summary()
    assert summary["errored"] == 1
    assert summary["latency"] is None
    assert summary["achieved_rate"] == 0.0


def test_recorder_per_worker_utilisation():
    recorder = LatencyRecorder()
    recorder.observe_all(
        [
            FakeTicket(0.0, 0.0, 1.0, worker_id=0),
            FakeTicket(0.0, 0.0, 1.0, worker_id=0),
            FakeTicket(0.0, 0.0, 1.0, worker_id=1),
        ]
    )
    stats = {
        0: {"busy_seconds": 0.6, "batches": 2, "respawns": 0},
        1: {"busy_seconds": 0.2, "batches": 1, "respawns": 1},
    }
    summary = recorder.summary(worker_stats=stats)
    per_worker = summary["per_worker"]
    assert per_worker["0"]["served"] == 2
    assert per_worker["0"]["utilisation"] == pytest.approx(0.6)
    assert per_worker["1"]["served"] == 1
    assert per_worker["1"]["respawns"] == 1
