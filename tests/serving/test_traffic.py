"""Determinism and shape of the open-loop traffic generator."""

import pytest

from repro.serving.traffic import DEFAULT_MIX, TrafficConfig, generate_trace


def _config(**overrides):
    defaults = {
        "rate": 200.0,
        "count": 90,
        "hot_fraction": 0.75,
        "hot_vectors": 3,
        "cold_vectors": 9,
        "seed": 21,
    }
    defaults.update(overrides)
    return TrafficConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError, match="rate"):
        TrafficConfig(rate=0.0)
    with pytest.raises(ValueError, match="at least one query"):
        TrafficConfig(count=0)
    with pytest.raises(ValueError, match="mix"):
        TrafficConfig(mix={})
    with pytest.raises(ValueError, match="mix"):
        TrafficConfig(mix={"topk": 0.0})
    with pytest.raises(ValueError, match="hot_fraction"):
        TrafficConfig(hot_fraction=1.5)
    with pytest.raises(ValueError, match="pools"):
        TrafficConfig(hot_vectors=0)


def test_same_seed_reproduces_the_exact_trace(serving_setup):
    """Same seed => identical queries, arrival times and weight assignment."""
    first = generate_trace(serving_setup["dataset"], serving_setup["template"], _config())
    second = generate_trace(serving_setup["dataset"], serving_setup["template"], _config())
    assert first.fingerprint() == second.fingerprint()
    assert [a.offset for a in first.arrivals] == [a.offset for a in second.arrivals]
    assert [a.query for a in first.arrivals] == [a.query for a in second.arrivals]
    assert [a.weight_id for a in first.arrivals] == [
        a.weight_id for a in second.arrivals
    ]


def test_different_seed_changes_the_trace(serving_setup):
    base = generate_trace(serving_setup["dataset"], serving_setup["template"], _config())
    other = generate_trace(
        serving_setup["dataset"], serving_setup["template"], _config(seed=22)
    )
    assert base.fingerprint() != other.fingerprint()


def test_trace_is_independent_of_consumer_shape(serving_setup):
    """The schedule is generation-time state: generating it repeatedly (as a
    1-worker and an 8-worker bench would) never perturbs the draws."""
    fingerprints = {
        generate_trace(
            serving_setup["dataset"], serving_setup["template"], _config()
        ).fingerprint()
        for _ in range(4)
    }
    assert len(fingerprints) == 1


def test_arrivals_are_ordered_and_poisson_positive(serving_setup):
    trace = generate_trace(serving_setup["dataset"], serving_setup["template"], _config())
    offsets = [arrival.offset for arrival in trace.arrivals]
    assert all(later > earlier for earlier, later in zip(offsets, offsets[1:]))
    assert offsets[0] > 0.0
    assert len(trace) == 90


def test_mix_and_skew_are_honoured(serving_setup):
    trace = generate_trace(
        serving_setup["dataset"],
        serving_setup["template"],
        _config(count=300, mix={"topk": 1.0, "range": 1.0}),
    )
    counts = trace.kind_counts()
    assert set(counts) == {"topk", "range"}
    assert counts["topk"] + counts["range"] == 300
    # 75% hot with 300 draws: a loose band, not a distribution test.
    assert 0.6 * 300 <= trace.hot_count() <= 0.9 * 300
    hot_ids = {a.weight_id for a in trace.arrivals if a.hot}
    cold_ids = {a.weight_id for a in trace.arrivals if not a.hot}
    assert all(weight_id.startswith("hot-") for weight_id in hot_ids)
    assert all(weight_id.startswith("cold-") for weight_id in cold_ids)
    assert len(hot_ids) <= 3


def test_pure_topk_mix_draws_no_query_randomness(serving_setup):
    """topk draws nothing per query, range/knn draw once; both replay."""
    config = _config(mix={"topk": 1.0}, count=40)
    first = generate_trace(serving_setup["dataset"], serving_setup["template"], config)
    second = generate_trace(serving_setup["dataset"], serving_setup["template"], config)
    assert first.fingerprint() == second.fingerprint()
    assert set(first.kind_counts()) == {"topk"}


def test_default_mix_covers_all_kinds():
    assert set(DEFAULT_MIX) == {"topk", "range", "knn"}
    config = TrafficConfig()
    assert config.kinds == ("topk", "range", "knn")
