"""Tests for the multi-worker serving tier."""
