"""End-to-end front-end behaviour: batching, swap, crash recovery, pooling."""

import pytest

from repro.core.client import Client
from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import TopKQuery
from repro.serving.dispatcher import ServingFrontEnd
from repro.serving.traffic import TrafficConfig, generate_trace, run_trace

DRAIN_TIMEOUT = 60.0


def _trace(setup, **overrides):
    defaults = {
        "rate": 500.0,
        "count": 60,
        "hot_fraction": 0.8,
        "hot_vectors": 2,
        "cold_vectors": 6,
        "seed": 31,
    }
    defaults.update(overrides)
    return generate_trace(setup["dataset"], setup["template"], TrafficConfig(**defaults))


def test_constructor_validation(serving_setup):
    with pytest.raises(ValueError, match="worker"):
        ServingFrontEnd(serving_setup["epoch0"], workers=0)
    with pytest.raises(ValueError, match="max_batch"):
        ServingFrontEnd(serving_setup["epoch0"], workers=1, max_batch=0)
    with pytest.raises(ValueError, match="max_linger"):
        ServingFrontEnd(serving_setup["epoch0"], workers=1, max_linger=-0.1)


def test_start_fails_cleanly_on_corrupt_artifact(serving_setup, tmp_path):
    corrupt = tmp_path / "corrupt.npz"
    corrupt.write_bytes(serving_setup["epoch0"].read_bytes()[:64])
    with pytest.raises(ConstructionError, match="failed to start"):
        ServingFrontEnd(corrupt, workers=2).start()


def test_submit_requires_running_frontend(serving_setup):
    frontend = ServingFrontEnd(serving_setup["epoch0"], workers=1)
    with pytest.raises(RuntimeError, match="not running"):
        frontend.submit(TopKQuery(weights=(0.5,), k=2))


def test_two_worker_frontend_serves_verified_answers(serving_setup):
    """Every ticket resolves with a client-verifiable reply, load is spread
    across workers, and same-weight queries actually share batches."""
    trace = _trace(serving_setup)
    client = Client.from_artifact(serving_setup["epoch0"])
    with ServingFrontEnd(serving_setup["epoch0"], workers=2) as frontend:
        tickets = run_trace(frontend, trace, paced=False)
        frontend.drain(tickets, timeout=DRAIN_TIMEOUT)
        stats = frontend.worker_stats()
    assert all(ticket.done and ticket.error is None for ticket in tickets)
    for ticket in tickets:
        assert ticket.reply.epoch == 0
        report = client.verify(
            ticket.reply.query, ticket.reply.result, ticket.reply.verification_object
        )
        assert report.is_valid
        assert ticket.latency is not None and ticket.latency >= 0.0
    total_batches = sum(stat["batches"] for stat in stats.values())
    total_served = sum(stat["served"] for stat in stats.values())
    assert total_served == len(tickets)
    assert total_batches < len(tickets), "same-weight queries must batch"
    assert all(stat["served"] > 0 for stat in stats.values()), "both workers serve"


def test_mid_stream_swap_drops_nothing_and_moves_epochs(serving_setup):
    trace = _trace(serving_setup, count=80, seed=32)
    clients = {
        0: Client.from_artifact(serving_setup["epoch0"]),
        1: Client.from_artifact(serving_setup["epoch1"]),
    }
    with ServingFrontEnd(serving_setup["epoch0"], workers=2) as frontend:
        outcome = {}

        def swap():
            outcome["broadcast"] = frontend.broadcast_swap(
                serving_setup["epoch1"], base=serving_setup["epoch0"]
            )

        tickets = run_trace(frontend, trace, paced=False, actions={40: swap})
        frontend.drain(tickets, timeout=DRAIN_TIMEOUT)
        assert frontend.epochs() == {0: 1, 1: 1}
    broadcast = outcome["broadcast"]
    assert broadcast.complete
    assert broadcast.new_epoch == 1
    assert broadcast.swapped == (0, 1)
    assert all(ticket.done and ticket.error is None for ticket in tickets)
    epochs_seen = set()
    for ticket in tickets:
        epoch = ticket.reply.epoch
        epochs_seen.add(epoch)
        assert clients[epoch].verify(
            ticket.reply.query, ticket.reply.result, ticket.reply.verification_object
        ).is_valid
    assert epochs_seen == {0, 1}, "swap must land mid-load"


def test_worker_crash_requeues_and_respawns(serving_setup):
    trace = _trace(serving_setup, count=80, seed=33)
    client = Client.from_artifact(serving_setup["epoch0"])
    with ServingFrontEnd(serving_setup["epoch0"], workers=2) as frontend:
        tickets = run_trace(
            frontend, trace, paced=False, actions={20: lambda: frontend.inject_crash(0)}
        )
        frontend.drain(tickets, timeout=DRAIN_TIMEOUT)
        stats = frontend.worker_stats()
        requeued = frontend.requeued
        # The respawned worker serves again when dispatched to directly
        # (it may still be cold-starting right after the drain).
        assert frontend.wait_ready(0, timeout=20.0)
        reply = frontend.execute_on(0, TopKQuery(weights=(0.5,), k=2))
    assert stats[0]["respawns"] == 1
    assert requeued > 0, "the dead worker owed queries and they were requeued"
    assert all(ticket.done and ticket.error is None for ticket in tickets)
    for ticket in tickets:
        assert client.verify(
            ticket.reply.query, ticket.reply.result, ticket.reply.verification_object
        ).is_valid
    assert client.verify(reply.query, reply.result, reply.verification_object).is_valid


def test_execute_on_rejects_unknown_and_dead_workers(serving_setup):
    with ServingFrontEnd(serving_setup["epoch0"], workers=1, auto_respawn=False) as frontend:
        with pytest.raises(KeyError, match="no worker"):
            frontend.execute_on(7, TopKQuery(weights=(0.5,), k=2))
        frontend.inject_crash(0)
        deadline = frontend.clock.now() + 20.0
        while frontend.worker_stats()[0]["ready"] and frontend.clock.now() < deadline:
            frontend.clock.sleep(0.01)
        with pytest.raises(QueryProcessingError, match="not serving"):
            frontend.execute_on(0, TopKQuery(weights=(0.5,), k=2))
        frontend.respawn(0)
        assert frontend.wait_ready(0, timeout=20.0)
        reply = frontend.execute_on(0, TopKQuery(weights=(0.5,), k=2))
        assert reply.epoch == 0


def test_replica_pool_mode_with_resilient_client(serving_setup):
    """WorkerProxy adapts worker processes to the resilience layer: pooled,
    verified execution with failover works over the process boundary."""
    from repro.resilience.pool import ResilientClient

    client = Client.from_artifact(serving_setup["epoch0"])
    with ServingFrontEnd(serving_setup["epoch0"], workers=2) as frontend:
        pool = frontend.replica_pool()
        assert len(pool) == 2
        assert [handle.server.epoch for handle in pool.handles] == [0, 0]
        resilient = ResilientClient(pool, client)
        for _ in range(4):
            outcome = resilient.execute(TopKQuery(weights=(0.5,), k=2))
            assert outcome.accepted
            assert outcome.report.is_valid
