"""Integration tests: the full three-party pipeline with real RSA signatures.

These tests exercise the complete flow the paper describes -- key generation,
ADS construction, outsourcing, query processing, VO construction, client
verification and attack rejection -- with an actual public-key signature
scheme (RSA-512 for speed) rather than the keyed-hash stand-in used by the
unit tests, and for both the univariate (interval-engine) and bivariate
(LP-engine) configurations.
"""

import random

import pytest

from repro.attacks import all_attacks
from repro.core.owner import DataOwner, SCHEMES
from repro.core.client import Client
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.metrics.counters import Counters
from repro.workloads.generator import WorkloadConfig, make_dataset, make_queries, make_template


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(n_records=14, dimension=1, distribution="uniform", seed=21)
    dataset = make_dataset(config)
    template = make_template(config)
    return dataset, template


@pytest.fixture(scope="module")
def systems(workload, rsa_keypair):
    dataset, template = workload
    built = {}
    for scheme in SCHEMES:
        owner = DataOwner(dataset, template, scheme=scheme, keypair=rsa_keypair)
        built[scheme] = OutsourcedSystem(
            owner=owner, server=Server(owner.outsource()), client=Client(owner.public_parameters())
        )
    return built


@pytest.fixture(scope="module")
def query_mix(workload):
    dataset, template = workload
    return make_queries(dataset, template, count=9, result_size=4, seed=2)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_full_pipeline_with_rsa(systems, query_mix, scheme):
    system = systems[scheme]
    for query in query_mix:
        server_counters = Counters()
        client_counters = Counters()
        execution, report = system.query_and_verify(
            query, server_counters=server_counters, client_counters=client_counters
        )
        assert report.is_valid, (scheme, query, report.failures)
        assert server_counters.nodes_traversed > 0
        assert client_counters.hash_operations > 0
        assert client_counters.signatures_verified >= 1


def test_schemes_agree_on_every_query(systems, query_mix):
    for query in query_mix:
        results = [
            systems[scheme].server.execute(query).result.record_ids() for scheme in SCHEMES
        ]
        assert results[0] == results[1] == results[2]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_attacks_rejected_with_rsa(systems, scheme):
    system = systems[scheme]
    rng = random.Random(17)
    query = RangeQuery(weights=(0.37,), low=2.0, high=6.0)
    execution = system.server.execute(query)
    applicable = 0
    for attack in all_attacks():
        tampered = attack(execution.result, execution.verification_object, rng)
        if tampered is None:
            continue
        applicable += 1
        report = system.client.verify(query, tampered[0], tampered[1])
        assert not report.is_valid, f"{attack.name} undetected under {scheme}"
    assert applicable >= 6


def test_ifmh_server_is_cheaper_than_mesh_at_scale(systems, workload):
    """The headline claim: logarithmic search versus linear cell scan."""
    dataset, template = workload
    query = TopKQuery(weights=(0.81,), k=3)
    costs = {}
    for scheme in SCHEMES:
        counters = Counters()
        systems[scheme].server.execute(query, counters=counters)
        costs[scheme] = counters.nodes_traversed
    # With 14 records the univariate arrangement has ~90 cells; a weight of
    # 0.81 forces the mesh to scan most of them while the IFMH path stays
    # logarithmic.
    assert costs["signature-mesh"] > costs["one-signature"]
    assert costs["signature-mesh"] > costs["multi-signature"]


def test_mesh_client_verifies_more_signatures(systems):
    query = RangeQuery(weights=(0.42,), low=1.0, high=7.0)
    verified = {}
    for scheme in SCHEMES:
        execution = systems[scheme].server.execute(query)
        counters = Counters()
        report = systems[scheme].client.verify(
            query, execution.result, execution.verification_object, counters=counters
        )
        assert report.is_valid
        verified[scheme] = counters.signatures_verified
    assert verified["one-signature"] == 1
    assert verified["multi-signature"] == 1
    assert verified["signature-mesh"] > 1


def test_bivariate_pipeline_with_lp_engine(rsa_keypair):
    """End-to-end on a 2-weight template (LP geometry engine)."""
    rows = [(3.9, 2, 4), (3.5, 1, 7), (3.2, 0, 2), (3.8, 3, 1), (2.9, 1, 0), (3.6, 4, 5)]
    from repro.core.records import Dataset, UtilityTemplate

    dataset = Dataset.from_rows(("gpa", "award", "paper"), rows)
    template = UtilityTemplate(attributes=("gpa", "award"))
    for scheme in SCHEMES:
        owner = DataOwner(dataset, template, scheme=scheme, keypair=rsa_keypair)
        system = OutsourcedSystem(
            owner=owner, server=Server(owner.outsource()), client=Client(owner.public_parameters())
        )
        for query in (
            TopKQuery(weights=(0.7, 0.3), k=3),
            RangeQuery(weights=(0.5, 0.5), low=1.5, high=3.0),
            KNNQuery(weights=(0.4, 0.6), k=2, target=2.5),
        ):
            execution, report = system.query_and_verify(query)
            assert report.is_valid, (scheme, query, report.failures)
