"""End-to-end edge cases: empty result windows and KNN score ties.

Covers the completeness machinery on the boundaries of the sorted list:
range queries with zero hits below the minimum / above the maximum score, a
single-record database, and KNN tie-breaking when several records score
exactly the query target.  Every case runs the full pipeline (server
execution, VO construction, client verification) in both IFMH modes.
"""

import pytest

from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.protocol import OutsourcedSystem
from repro.core.records import Dataset, UtilityTemplate
from repro.geometry.domain import Domain
from repro.queryproc.range_query import range_window
from repro.queryproc.window import ResultWindow

MODES = ("one-signature", "multi-signature")


def _system(rows, scheme):
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
    return OutsourcedSystem.setup(
        dataset, template, scheme=scheme, signature_algorithm="hmac"
    )


@pytest.fixture(params=MODES)
def scheme(request):
    return request.param


ROWS = [(2.0, 1.0), (1.0, 3.0), (4.0, 2.0), (0.5, 5.0), (3.0, 4.0)]


# ------------------------------------------------------------ empty windows
def test_range_zero_hits_below_minimum_score(scheme):
    """Empty window at the left end of the sorted list (gap position 0)."""
    system = _system(ROWS, scheme)
    query = RangeQuery(weights=(0.5,), low=-10.0, high=-5.0)
    execution, report = system.query_and_verify(query)
    assert len(execution.result) == 0
    assert report.is_valid, report.failures


def test_range_zero_hits_above_maximum_score(scheme):
    """Empty window at the right end of the sorted list (gap position size)."""
    system = _system(ROWS, scheme)
    query = RangeQuery(weights=(0.5,), low=50.0, high=60.0)
    execution, report = system.query_and_verify(query)
    assert len(execution.result) == 0
    assert report.is_valid, report.failures


def test_range_zero_hits_interior_gap(scheme):
    system = _system([(1.0, 0.0), (1.0, 8.0)], scheme)
    # Scores at x=0.5 are 0.5 and 8.5; the range [2, 7] falls in the gap.
    query = RangeQuery(weights=(0.5,), low=2.0, high=7.0)
    execution, report = system.query_and_verify(query)
    assert len(execution.result) == 0
    assert report.is_valid, report.failures


def test_empty_at_boundary_positions_cover_list_edges():
    """ResultWindow.empty_at at both edges exposes the token boundaries."""
    at_left = ResultWindow.empty_at(0, 5)
    assert at_left.is_empty
    assert at_left.left_boundary_position == -1  # the "min" token
    assert at_left.right_boundary_position == 0
    at_right = ResultWindow.empty_at(5, 5)
    assert at_right.is_empty
    assert at_right.left_boundary_position == 4
    assert at_right.right_boundary_position == 5  # the "max" token
    assert range_window([1.0, 2.0, 3.0, 4.0, 5.0], -3.0, 0.0) == at_left
    assert range_window([1.0, 2.0, 3.0, 4.0, 5.0], 9.0, 11.0) == at_right


# ------------------------------------------------------ single-record data
def test_single_record_database_all_query_kinds(scheme):
    system = _system([(2.0, 3.0)], scheme)
    weights = (0.25,)
    for query in (
        TopKQuery(weights=weights, k=1),
        RangeQuery(weights=weights, low=0.0, high=10.0),
        KNNQuery(weights=weights, k=1, target=3.5),
    ):
        execution, report = system.query_and_verify(query)
        assert len(execution.result) == 1
        assert report.is_valid, report.failures


def test_single_record_database_empty_range(scheme):
    system = _system([(2.0, 3.0)], scheme)
    for low, high in ((-5.0, -1.0), (20.0, 30.0)):
        query = RangeQuery(weights=(0.25,), low=low, high=high)
        execution, report = system.query_and_verify(query)
        assert len(execution.result) == 0
        assert report.is_valid, report.failures


def test_single_record_topk_k_exceeds_database(scheme):
    system = _system([(2.0, 3.0)], scheme)
    execution, report = system.query_and_verify(TopKQuery(weights=(0.25,), k=5))
    assert len(execution.result) == 1
    assert report.is_valid, report.failures


# --------------------------------------------------------------- KNN ties
#: Three identical records (duplicate score functions) among two distinct ones.
TIED_ROWS = [(1.0, 2.0), (1.0, 2.0), (1.0, 2.0), (3.0, 0.0), (0.0, 6.0)]


def test_knn_ties_at_target_are_deterministic_and_verified(scheme):
    system = _system(TIED_ROWS, scheme)
    weights = (0.5,)
    target = 2.5  # exact score of the three duplicate records at x = 0.5
    for k in (1, 2, 3, 4):
        query = KNNQuery(weights=weights, k=k, target=target)
        execution, report = system.query_and_verify(query)
        assert len(execution.result) == k
        assert report.is_valid, report.failures


def test_knn_ties_resolve_by_record_order(scheme):
    """Duplicate-score records are returned in index order (sortability ties)."""
    system = _system(TIED_ROWS, scheme)
    query = KNNQuery(weights=(0.5,), k=2, target=2.5)
    execution, report = system.query_and_verify(query)
    returned = [record.record_id for record in execution.result.records]
    # The duplicates occupy the first three sorted positions (ties broken by
    # record index); a window of two exact hits must be a prefix of them.
    assert returned == sorted(returned)
    assert set(returned).issubset({0, 1, 2})
    assert report.is_valid, report.failures


def test_knn_target_tied_with_excluded_neighbour_still_complete(scheme):
    """The verifier's completeness recheck accepts the deterministic tie rule."""
    system = _system(TIED_ROWS, scheme)
    # k = 2 with three candidates at distance zero: one tied record stays
    # excluded, and the recheck must still accept (worst <= excluded distance).
    execution, report = system.query_and_verify(
        KNNQuery(weights=(0.5,), k=2, target=2.5)
    )
    assert report.is_valid, report.failures
    scores = {record.record_id for record in execution.result.records}
    assert len(scores) == 2
