"""ReplicaPool selection/quarantine and the ResilientClient failover loop."""

import pytest

from repro.core.client import Client
from repro.core.errors import ConstructionError, InvalidQueryError
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import TopKQuery
from repro.core.server import Server
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.policy import RetryPolicy, VirtualClock
from repro.resilience.pool import (
    ReplicaPool,
    ResilientClient,
    pool_from_artifact,
    pool_from_artifacts,
)


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )


QUERY = TopKQuery(weights=(0.55,), k=3)


# -------------------------------------------------------------------- pool
def test_pool_validation(system):
    with pytest.raises(ValueError, match="at least one replica"):
        ReplicaPool([])
    with pytest.raises(ValueError, match="quarantine_threshold"):
        ReplicaPool([system.server], quarantine_threshold=0)
    with pytest.raises(ValueError, match="quarantine_period"):
        ReplicaPool([system.server], quarantine_period=0.0)


def test_round_robin_selection(system):
    pool = ReplicaPool([system.server] * 3)
    order = [pool.select().replica_id for _ in range(6)]
    assert order == [0, 1, 2, 0, 1, 2]


def test_select_skips_excluded_replicas(system):
    pool = ReplicaPool([system.server] * 3)
    assert pool.select({0}).replica_id == 1
    assert pool.select({0, 2}).replica_id == 1
    assert pool.select({0, 1, 2}) is None


def test_quarantine_and_half_open_probe(system):
    clock = VirtualClock()
    pool = ReplicaPool(
        [system.server] * 2,
        clock=clock,
        quarantine_threshold=2,
        quarantine_period=5.0,
    )
    bad = pool.handles[0]
    pool.report_failure(bad)
    assert bad.quarantined_until is None  # below the threshold
    pool.report_failure(bad)
    assert bad.quarantined_until == pytest.approx(5.0)
    assert bad.quarantines == 1
    # While quarantined, selection only offers the healthy replica.
    assert {pool.select().replica_id for _ in range(4)} == {1}
    # After the quarantine period the replica comes back as a probe...
    clock.advance(5.0)
    assert pool.select({1}).replica_id == 0
    # ...one more failure re-quarantines it immediately (probe semantics),
    pool.report_failure(bad)
    assert bad.quarantined_until == pytest.approx(10.0)
    assert bad.quarantines == 2
    # ...while a success would have restored it fully.
    clock.advance(5.0)
    pool.report_success(bad)
    assert bad.quarantined_until is None
    assert bad.consecutive_failures == 0


def test_pool_status_snapshot(system):
    pool = ReplicaPool([system.server] * 2, quarantine_threshold=1)
    pool.report_failure(pool.handles[1])
    status = pool.status()
    assert status[0] == {
        "replica_id": 0,
        "epoch": 0,
        "served": 0,
        "faults": 0,
        "quarantines": 0,
        "resyncs": 0,
        "quarantined": False,
    }
    assert status[1]["faults"] == 1
    assert status[1]["quarantined"] is True


# -------------------------------------------------------- resilient client
def test_fault_free_pool_is_bit_identical_to_single_server(system, tmp_path):
    """Acceptance invariant: with no faults, the resilient path returns
    exactly what one honest server would -- same records, same VO, same
    per-query counters -- in a single attempt."""
    path = tmp_path / "ads.npz"
    system.owner.publish(path)
    pool = pool_from_artifact(path, replicas=3)
    resilient = ResilientClient(pool, Client.from_artifact(path))
    reference = Server.from_artifact(path)
    for k in (2, 3, 5):
        query = TopKQuery(weights=(0.5,), k=k)
        outcome = resilient.execute(query)
        lone = reference.execute(query)
        assert outcome.accepted and not outcome.degraded
        assert len(outcome.attempts) == 1
        assert outcome.execution.result == lone.result
        assert outcome.execution.verification_object == lone.verification_object
        assert outcome.execution.counters.snapshot() == lone.counters.snapshot()
        assert outcome.report.is_valid


def test_failover_from_tampering_replica(system):
    clock = VirtualClock()
    tampering = FaultInjector(
        system.server, (FaultSpec(kind="tamper"),), seed=1, clock=clock, replica_id=0
    )
    honest = FaultInjector(system.server, (), clock=clock, replica_id=1)
    pool = ReplicaPool([tampering, honest], clock=clock)
    resilient = ResilientClient(pool, system.client)
    outcome = resilient.execute(QUERY)
    assert outcome.accepted and outcome.degraded
    assert outcome.replica_id == 1
    assert [a.outcome for a in outcome.attempts] == ["rejected", "accepted"]
    rejected = outcome.attempts[0]
    assert rejected.detail, "a rejection must name the failing checks"
    assert rejected.backoff > 0.0
    assert outcome.flags() == {
        "accepted": True,
        "degraded": True,
        "exhausted": False,
        "attempts": 2,
        "replica_id": 1,
    }


def test_failover_from_crashing_replica(system):
    clock = VirtualClock()
    crashing = FaultInjector(
        system.server, (FaultSpec(kind="crash"),), seed=1, clock=clock, replica_id=0
    )
    pool = ReplicaPool([crashing, system.server], clock=clock)
    resilient = ResilientClient(pool, system.client)
    outcome = resilient.execute(QUERY)
    assert outcome.accepted
    assert [a.outcome for a in outcome.attempts] == ["replica-error", "accepted"]
    assert "injected replica crash" in outcome.attempts[0].detail
    assert "replica_id=0" in outcome.attempts[0].detail


def test_timeout_counts_as_replica_fault(system):
    clock = VirtualClock()
    lagging = FaultInjector(
        system.server,
        (FaultSpec(kind="latency", delay=3.0),),
        clock=clock,
        replica_id=0,
    )
    pool = ReplicaPool([lagging, system.server], clock=clock)
    resilient = ResilientClient(pool, system.client, RetryPolicy(attempt_timeout=1.0))
    outcome = resilient.execute(QUERY)
    assert outcome.accepted
    assert outcome.attempts[0].outcome == "timeout"
    assert outcome.attempts[0].elapsed > 1.0


def test_all_replicas_faulty_exhausts_with_attempt_trail(system):
    clock = VirtualClock()
    replicas = [
        FaultInjector(
            system.server, (FaultSpec(kind="crash"),), seed=i, clock=clock, replica_id=i
        )
        for i in range(2)
    ]
    pool = ReplicaPool(replicas, clock=clock)
    policy = RetryPolicy(max_attempts=4)
    resilient = ResilientClient(pool, system.client, policy)
    outcome = resilient.execute(QUERY)
    assert outcome.exhausted and not outcome.accepted
    assert outcome.execution is None and outcome.report is None
    assert outcome.replica_id is None
    assert 1 <= len(outcome.attempts) <= policy.max_attempts
    assert all(a.outcome == "replica-error" for a in outcome.attempts)
    # Replicas were retried beyond the first round (exclusion resets).
    assert {a.replica_id for a in outcome.attempts} == {0, 1}


def test_deadline_bounds_the_retry_loop(system):
    clock = VirtualClock()
    crashing = FaultInjector(
        system.server, (FaultSpec(kind="crash"),), clock=clock, service_time=2.0
    )
    pool = ReplicaPool([crashing], clock=clock, quarantine_threshold=99)
    policy = RetryPolicy(max_attempts=50, deadline=7.0)
    resilient = ResilientClient(pool, system.client, policy)
    outcome = resilient.execute(QUERY)
    assert outcome.exhausted
    assert len(outcome.attempts) < policy.max_attempts
    assert outcome.elapsed <= policy.deadline + 2.0  # the attempt in flight may finish


def test_invalid_query_propagates_without_failover(system):
    pool = ReplicaPool([system.server])
    resilient = ResilientClient(pool, system.client)
    with pytest.raises(InvalidQueryError):
        resilient.execute(TopKQuery(weights=(0.5, 0.5), k=2))  # wrong dimension


def test_execute_batch_runs_every_query(system):
    clock = VirtualClock()
    tampering = FaultInjector(
        system.server, (FaultSpec(kind="tamper", rate=0.5),), seed=2, clock=clock
    )
    pool = ReplicaPool([tampering, system.server], clock=clock)
    resilient = ResilientClient(pool, system.client)
    queries = [TopKQuery(weights=(0.3 + 0.1 * i,), k=2) for i in range(5)]
    outcomes = resilient.execute_batch(queries)
    assert len(outcomes) == 5
    assert all(outcome.accepted for outcome in outcomes)


def test_same_seed_resilient_runs_are_identical(system):
    queries = [TopKQuery(weights=(0.3 + 0.1 * i,), k=2) for i in range(5)]

    def run():
        clock = VirtualClock()
        replicas = [
            FaultInjector(system.server, (), clock=clock, replica_id=0),
            FaultInjector(
                system.server,
                (FaultSpec(kind="tamper", rate=0.6),),
                seed=11,
                clock=clock,
                replica_id=1,
            ),
            FaultInjector(
                system.server,
                (FaultSpec(kind="crash", rate=0.6),),
                seed=12,
                clock=clock,
                replica_id=2,
            ),
        ]
        pool = ReplicaPool(replicas, clock=clock)
        resilient = ResilientClient(pool, system.client, seed=0)
        trace = []
        for query in queries:
            outcome = resilient.execute(query)
            trace.append(
                (
                    outcome.replica_id,
                    tuple((a.replica_id, a.outcome, a.backoff) for a in outcome.attempts),
                    outcome.finished,
                )
            )
        return trace

    assert run() == run()


# ----------------------------------------------------------- cold-starting
def test_pool_from_artifact_loads_independent_replicas(system, tmp_path):
    path = tmp_path / "ads.npz"
    system.owner.publish(path)
    pool = pool_from_artifact(path, replicas=3)
    assert len(pool) == 3
    servers = {id(handle.server) for handle in pool.handles}
    assert len(servers) == 3, "replicas must be independent loads"
    with pytest.raises(ValueError, match="replicas"):
        pool_from_artifact(path, replicas=0)


def test_pool_from_artifacts_skips_corrupt_and_stale(system, tmp_path):
    good = tmp_path / "good.npz"
    system.owner.publish(good)
    truncated = tmp_path / "truncated.npz"
    truncated.write_bytes(good.read_bytes()[:100])
    pool, skipped = pool_from_artifacts([good, truncated, good])
    assert len(pool) == 2
    assert len(skipped) == 1 and "truncated.npz" in skipped[0]
    # With an epoch pin, a stale artifact is skipped the same way.
    from repro.core.records import Record

    system.owner.insert(Record(record_id=99, values=(4.2, 1.7)))
    current = tmp_path / "current.npz"
    system.owner.publish(current)
    pool, skipped = pool_from_artifacts(
        [current, good], expected_epoch=system.owner.epoch
    )
    assert len(pool) == 1
    assert len(skipped) == 1 and "stale or replayed" in skipped[0]
    # Nothing loadable is a hard error.
    with pytest.raises(ConstructionError, match="no replica artifact"):
        pool_from_artifacts([truncated])


def test_outsourced_system_resilient_client(system):
    resilient = system.resilient_client()
    outcome = resilient.execute(QUERY)
    assert outcome.accepted
    lone = Server(system.owner.outsource()).execute(QUERY)
    assert outcome.execution.result == lone.result


def test_outsourced_system_resilient_from_artifact(system, tmp_path):
    path = tmp_path / "ads.npz"
    system.owner.publish(path)
    resilient = OutsourcedSystem.resilient_from_artifact(path, replicas=2)
    outcome = resilient.execute(QUERY)
    assert outcome.accepted and len(resilient.pool) == 2


# ------------------------------------------------------- resync self-healing
def _publish_epoch_pair(system, tmp_path):
    """Publish epoch 0, apply one insert, publish epoch 1; return both paths."""
    from repro.core.records import Record

    epoch0 = tmp_path / "epoch0.npz"
    system.owner.publish(epoch0)
    system.owner.insert(Record(record_id=99, values=(4.2, 1.7)))
    epoch1 = tmp_path / "epoch1.npz"
    system.owner.publish(epoch1)
    return epoch0, epoch1


def test_expired_probe_shares_rotation_with_healthy_replicas(system):
    """The quarantine dead-end fix: a recovered replica gets probe traffic
    even while healthy peers exist, instead of starving behind them."""
    clock = VirtualClock()
    pool = ReplicaPool(
        [system.server] * 3,
        clock=clock,
        quarantine_threshold=1,
        quarantine_period=5.0,
    )
    pool.report_failure(pool.handles[0])
    assert {pool.select().replica_id for _ in range(4)} == {1, 2}
    clock.advance(5.0)
    picked = {pool.select().replica_id for _ in range(6)}
    assert 0 in picked  # the probe joins the normal rotation
    assert picked == {0, 1, 2}


def test_stale_replicas_and_rolling_swap(system, tmp_path):
    epoch0, epoch1 = _publish_epoch_pair(system, tmp_path)
    pool = pool_from_artifact(epoch0, replicas=3)
    assert pool.stale_replicas(1) == [0, 1, 2]
    report = pool.resync(0, epoch1)
    assert (report.mode, report.old_epoch, report.new_epoch) == ("hot-swap", 0, 1)
    assert not report.rejoined_as_probe
    assert pool.handle(0).epoch == 1
    assert pool.stale_replicas(1) == [1, 2]
    reports = pool.rolling_swap(epoch1)
    assert [r.replica_id for r in reports] == [1, 2]
    assert all(r.mode == "hot-swap" for r in reports)
    assert pool.stale_replicas(1) == []
    assert [entry["resyncs"] for entry in pool.status()] == [1, 1, 1]


def test_resync_refresh_resets_health_without_swapping(system, tmp_path):
    epoch0, _epoch1 = _publish_epoch_pair(system, tmp_path)
    clock = VirtualClock()
    pool = ReplicaPool(
        [Server.from_artifact(epoch0)],
        clock=clock,
        quarantine_threshold=1,
        quarantine_period=30.0,
    )
    pool.report_failure(pool.handles[0])
    assert pool.select() is None  # quarantined, far from expiry
    report = pool.resync(0, epoch0)
    assert report.mode == "refresh"
    assert report.rejoined_as_probe
    assert pool.handle(0).consecutive_failures == 0
    # The quarantine now expires immediately: the replica is a live probe.
    assert pool.select().replica_id == 0


def test_resync_load_error_leaves_health_untouched(system, tmp_path):
    epoch0, epoch1 = _publish_epoch_pair(system, tmp_path)
    data = bytearray(epoch1.read_bytes())
    for offset in range(len(data) // 2, len(data) // 2 + 64):
        data[offset] ^= 0x5A
    epoch1.write_bytes(bytes(data))
    clock = VirtualClock()
    pool = ReplicaPool(
        [Server.from_artifact(epoch0)],
        clock=clock,
        quarantine_threshold=1,
        quarantine_period=30.0,
    )
    pool.report_failure(pool.handles[0])
    quarantined_until = pool.handles[0].quarantined_until
    with pytest.raises(ConstructionError):
        pool.resync(0, epoch1)
    handle = pool.handle(0)
    assert handle.quarantined_until == quarantined_until  # no half-applied reset
    assert handle.resyncs == 0
    assert handle.consecutive_failures == 1


def test_recovered_replica_serves_again_after_resync(system, tmp_path):
    """End-to-end self-healing: a stale replica is quarantined by verifying
    clients, resynced to the new artifact, probed, and serves again."""
    epoch0, epoch1 = _publish_epoch_pair(system, tmp_path)
    clock = VirtualClock()
    pool = ReplicaPool(
        [Server.from_artifact(epoch1), Server.from_artifact(epoch0)],
        clock=clock,
        quarantine_threshold=1,
        quarantine_period=5.0,
    )
    resilient = ResilientClient(pool, Client.from_artifact(epoch1))
    stale = pool.handle(1)
    # Drive queries until the stale replica is quarantined: its answers
    # carry epoch-0 parameters and fail verification at the new client.
    for _ in range(4):
        assert resilient.execute(QUERY).accepted
        if stale.quarantined_until is not None:
            break
    assert stale.quarantined_until is not None
    assert stale.epoch == 0
    report = pool.resync(1, epoch1)
    assert (report.mode, report.new_epoch) == ("hot-swap", 1)
    assert report.rejoined_as_probe
    served_before = stale.served
    for _ in range(4):
        assert resilient.execute(QUERY).accepted
    assert stale.served > served_before  # the probe got traffic...
    assert stale.quarantined_until is None  # ...and one success restored it
    assert stale.epoch == 1


def test_concurrent_pool_load_bit_identical_to_serial(system, tmp_path):
    """pool_from_artifact loads replicas on a thread pool; concurrency must
    be unobservable -- every replica bit-identical to a serial load."""
    import pickle

    path = tmp_path / "ads.npz"
    system.owner.publish(path)
    serial = [Server.from_artifact(path) for _ in range(4)]
    pool = pool_from_artifact(path, replicas=4)
    assert len(pool) == 4
    client = Client.from_artifact(path)
    reference = serial[0].execute(QUERY)
    reference_bytes = pickle.dumps(
        (reference.result, reference.verification_object)
    )
    for serial_server, handle in zip(serial, pool.handles):
        concurrent_server = handle.server
        assert concurrent_server.ads.root_hash == serial_server.ads.root_hash
        assert concurrent_server.epoch == serial_server.epoch
        execution = concurrent_server.execute(QUERY)
        assert (
            pickle.dumps((execution.result, execution.verification_object))
            == reference_bytes
        )
        assert client.verify(
            execution.query, execution.result, execution.verification_object
        ).is_valid
