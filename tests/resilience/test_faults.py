"""FaultInjector / FaultPlan: seeded, composable replica misbehavior."""

import random

import pytest

from repro.core.client import Client
from repro.core.errors import QueryProcessingError
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.records import Record
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PLANS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.policy import VirtualClock


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )


QUERY = TopKQuery(weights=(0.55,), k=3)


# ------------------------------------------------------------------- specs
def test_fault_spec_validation():
    for kind in FAULT_KINDS:
        FaultSpec(kind=kind, delay=1.0 if kind == "latency" else 0.0)
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="gremlins")
    with pytest.raises(ValueError, match="rate"):
        FaultSpec(kind="crash", rate=1.5)
    with pytest.raises(ValueError, match="delay > 0"):
        FaultSpec(kind="latency")
    with pytest.raises(ValueError, match="delay only applies"):
        FaultSpec(kind="crash", delay=1.0)
    with pytest.raises(ValueError, match="attack only applies"):
        FaultSpec(kind="crash", attack="drop-record")
    with pytest.raises(ValueError, match="unknown attack"):
        FaultSpec(kind="tamper", attack="no-such-attack")


def test_byzantine_plan_shape():
    plan = FaultPlan.byzantine(5)
    assert plan.name == "byzantine-5"
    assert plan.faults_for(0) == ()  # honest
    assert plan.faults_for(1)[0].kind == "tamper"
    assert plan.faults_for(2)[0].kind == "crash"
    assert plan.faults_for(3)[0].kind == "stale-epoch"
    assert plan.faults_for(4)[0].kind == "latency"
    assert plan.faults_for(99) == ()  # out of range -> honest
    assert plan.faulty_replicas == (1, 2, 3, 4)
    assert plan.kinds() == ("crash", "latency", "stale-epoch", "tamper")
    assert plan.needs_stale_server()
    with pytest.raises(ValueError, match=">= 4 replicas"):
        FaultPlan.byzantine(3)


def test_named_plans_registry():
    assert FAULT_PLANS["all-honest"].replica_faults == ()
    assert not FAULT_PLANS["all-honest"].needs_stale_server()
    assert FAULT_PLANS["byzantine-mix"].faulty_replicas == (1, 2, 3, 4)


# ---------------------------------------------------------------- injector
def test_honest_injector_is_transparent_and_advances_clock(system):
    clock = VirtualClock()
    injector = FaultInjector(system.server, (), clock=clock, service_time=0.25)
    direct = system.server.execute(QUERY)
    wrapped = injector.execute(QUERY)
    assert wrapped.result == direct.result
    assert wrapped.verification_object == direct.verification_object
    assert wrapped.counters.snapshot() == direct.counters.snapshot()
    assert clock.now() == pytest.approx(0.25)
    assert injector.injected_counts() == {}
    assert injector.scheme == system.server.scheme
    assert injector.epoch == system.server.epoch
    assert injector.counters is system.server.counters


def test_crash_fault_raises_with_replica_context(system):
    injector = FaultInjector(
        system.server, (FaultSpec(kind="crash"),), seed=1, replica_id=4
    )
    with pytest.raises(QueryProcessingError, match="injected replica crash") as excinfo:
        injector.execute(QUERY)
    context = excinfo.value.context
    assert context["replica_id"] == 4
    assert context["query_kind"] == "topk"
    assert context["scheme"] == "one-signature"
    assert injector.injected_counts() == {"crash": 1}


def test_latency_fault_advances_clock_by_delay(system):
    clock = VirtualClock()
    injector = FaultInjector(
        system.server,
        (FaultSpec(kind="latency", delay=2.0),),
        clock=clock,
        service_time=0.5,
    )
    injector.execute(QUERY)
    assert clock.now() == pytest.approx(2.5)
    assert injector.injected_counts() == {"latency": 1}


def test_tamper_fault_breaks_verification(system):
    injector = FaultInjector(system.server, (FaultSpec(kind="tamper"),), seed=3)
    execution = injector.execute(QUERY)
    report = system.client.verify(
        QUERY, execution.result, execution.verification_object
    )
    assert not report.is_valid
    assert injector.injected_counts() == {"tamper": 1}
    assert injector.applicability.applied, "an attack must have applied"


def test_pinned_tamper_attack_is_used(system):
    injector = FaultInjector(
        system.server, (FaultSpec(kind="tamper", attack="truncate-result"),), seed=3
    )
    honest = system.server.execute(QUERY)
    tampered = injector.execute(QUERY)
    assert len(tampered.result) == len(honest.result) - 1
    assert injector.applicability.applied == {"truncate-result": 1}


def test_stale_epoch_fault_serves_pre_update_ads(system):
    owner = system.owner
    stale_package_server = system.server  # still holds the epoch-0 package
    owner.insert(Record(record_id=99, values=(4.2, 1.7)))
    from repro.core.server import Server

    current = Server(owner.outsource())
    client = Client(owner.public_parameters())
    injector = FaultInjector(
        current, (FaultSpec(kind="stale-epoch"),), seed=0,
        stale_server=stale_package_server,
    )
    execution = injector.execute(QUERY)
    report = client.verify(QUERY, execution.result, execution.verification_object)
    assert not report.is_valid
    assert injector.injected_counts() == {"stale-epoch": 1}
    # The same query served honestly verifies.
    honest = current.execute(QUERY)
    assert client.verify(QUERY, honest.result, honest.verification_object).is_valid


def test_stale_epoch_requires_a_stale_server(system):
    with pytest.raises(ValueError, match="stale_server"):
        FaultInjector(system.server, (FaultSpec(kind="stale-epoch"),))


def test_rate_zero_never_fires_and_same_seed_reproduces(system):
    queries = [
        TopKQuery(weights=(0.35 + 0.05 * i,), k=3) for i in range(8)
    ]
    silent = FaultInjector(system.server, (FaultSpec(kind="crash", rate=0.0),), seed=9)
    for query in queries:
        silent.execute(query)
    assert silent.injected_counts() == {}

    def run(seed):
        injector = FaultInjector(
            system.server,
            (FaultSpec(kind="tamper", rate=0.5), FaultSpec(kind="crash", rate=0.3)),
            seed=seed,
        )
        trace = []
        for query in queries:
            try:
                execution = injector.execute(query)
            except QueryProcessingError:
                trace.append("crash")
            else:
                trace.append(tuple(execution.result.record_ids()))
        return trace, injector.injected_counts()

    assert run(21) == run(21)


def test_batch_faults_are_drawn_once_per_batch(system):
    queries = [TopKQuery(weights=(0.4,), k=2), TopKQuery(weights=(0.6,), k=2)]
    crashing = FaultInjector(system.server, (FaultSpec(kind="crash"),), seed=5)
    with pytest.raises(QueryProcessingError):
        crashing.execute_batch(queries)
    assert crashing.injected_counts() == {"crash": 1}

    tampering = FaultInjector(system.server, (FaultSpec(kind="tamper"),), seed=5)
    executions = tampering.execute_batch(queries)
    assert len(executions) == 2
    invalid = [
        not system.client.verify(e.query, e.result, e.verification_object).is_valid
        for e in executions
    ]
    assert all(invalid), "a tampering batch must tamper every execution"
