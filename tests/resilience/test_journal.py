"""Write-ahead journal: framing, torn tails, recovery, crash differential.

The durability contract under test: a batch is committed once
``append_batch`` returns, recovery replays exactly the committed batches
onto the newest artifact and lands bit-identical to an uninterrupted
owner, a torn tail (crash mid-append) is discarded cleanly, and damage
anywhere *before* intact data refuses to replay -- naming the record.
"""

import random
import struct

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import JournalError
from repro.core.owner import DataOwner
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.geometry.domain import Domain
from repro.resilience.journal import (
    JOURNAL_MAGIC,
    UpdateJournal,
    lineage_fingerprint,
)
from repro.resilience.recovery import (
    UpdateBatch,
    crash_points,
    run_crash_matrix,
    state_fingerprint,
)

_TEMPLATE = UtilityTemplate(
    attributes=("factor",),
    domain=Domain(lower=(0.0,), upper=(1.0,)),
    constant_attribute="baseline",
)

_ROWS = [(3.9, 2.0), (3.5, 1.0), (3.2, 0.0), (3.8, 3.0), (2.9, 1.0), (3.6, 0.5)]

QUERIES = (
    TopKQuery(weights=(0.55,), k=3),
    RangeQuery(weights=(0.4,), low=1.0, high=6.0),
)

_FRAME_HEADER = struct.Struct("<4sI32s")


def _owner():
    dataset = Dataset.from_rows(("factor", "baseline"), _ROWS)
    return DataOwner(
        dataset,
        _TEMPLATE,
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        rng=random.Random(11),
    )


def _journal_for(owner, tmp_path, name="updates.journal"):
    return UpdateJournal.create(
        tmp_path / name, lineage=owner.lineage(), base_epoch=owner.epoch, fsync=False
    )


def _frame_spans(path):
    """``(frame_start, body_start, body_end)`` per record, by direct parse."""
    data = path.read_bytes()
    spans = []
    offset = 0
    while offset < len(data):
        _magic, length, _digest = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        spans.append((offset, body_start, body_start + length))
        offset = body_start + length
    return spans


def _corrupt_byte(path, position):
    data = bytearray(path.read_bytes())
    data[position] ^= 0xFF
    path.write_bytes(bytes(data))


# ------------------------------------------------------------------ framing
def test_create_refuses_existing_file(tmp_path):
    owner = _owner()
    _journal_for(owner, tmp_path)
    with pytest.raises(JournalError, match="already exists"):
        _journal_for(owner, tmp_path)


def test_append_scan_roundtrip(tmp_path):
    owner = _owner()
    journal = _journal_for(owner, tmp_path)
    record = Record(record_id=100, values=(3.3, 1.0), label="insert-100")
    index = journal.append_batch(epoch=1, inserts=[record], deletes=[2])
    assert index == 1  # record 0 is the header
    scan = journal.scan()
    assert scan.base_epoch == 0
    assert scan.last_epoch == 1
    assert not scan.torn_tail
    (batch,) = scan.batches
    assert batch.epoch == 1
    assert batch.strategy == "auto"
    assert batch.inserts == (record,)
    assert batch.deletes == (2,)


def test_append_requires_contiguous_epochs(tmp_path):
    journal = _journal_for(_owner(), tmp_path)
    with pytest.raises(JournalError, match="chain contiguously"):
        journal.append_batch(epoch=3, deletes=[0])
    journal.append_batch(epoch=1, deletes=[0])
    with pytest.raises(JournalError, match="chain contiguously"):
        journal.append_batch(epoch=1, deletes=[1])


def test_torn_tail_discarded_and_repaired(tmp_path):
    journal = _journal_for(_owner(), tmp_path)
    journal.append_batch(epoch=1, deletes=[0])
    intact = (tmp_path / "updates.journal").read_bytes()
    # A crash mid-append: only half of the next frame reached the disk.
    with open(tmp_path / "updates.journal", "ab") as stream:
        stream.write(b"RJRN\x99\x00\x00\x00partial")
    scan = journal.scan()
    assert scan.torn_tail
    assert scan.valid_bytes == len(intact)
    assert [batch.epoch for batch in scan.batches] == [1]  # earlier data intact
    assert journal.truncate_torn_tail()
    assert (tmp_path / "updates.journal").read_bytes() == intact
    assert not journal.scan().torn_tail
    assert not journal.truncate_torn_tail()  # nothing left to cut


def test_append_after_crash_repairs_tail_first(tmp_path):
    journal = _journal_for(_owner(), tmp_path)
    with open(tmp_path / "updates.journal", "ab") as stream:
        stream.write(b"RJRN")  # torn: shorter than a frame header
    journal.append_batch(epoch=1, deletes=[0])
    scan = journal.scan()
    assert not scan.torn_tail  # the torn bytes were not buried mid-file
    assert [batch.epoch for batch in scan.batches] == [1]


def test_corrupt_middle_record_raises_naming_index(tmp_path):
    journal = _journal_for(_owner(), tmp_path)
    journal.append_batch(epoch=1, deletes=[0])
    journal.append_batch(epoch=2, deletes=[1])
    spans = _frame_spans(tmp_path / "updates.journal")
    assert len(spans) == 3
    _start, body_start, _end = spans[1]  # the first batch, with intact data after
    _corrupt_byte(tmp_path / "updates.journal", body_start)
    with pytest.raises(JournalError, match="record 1 fails its checksum") as excinfo:
        journal.scan()
    assert excinfo.value.context["record_index"] == 1


def test_checksum_mismatch_at_eof_is_a_torn_tail(tmp_path):
    journal = _journal_for(_owner(), tmp_path)
    journal.append_batch(epoch=1, deletes=[0])
    spans = _frame_spans(tmp_path / "updates.journal")
    _start, body_start, _end = spans[-1]
    _corrupt_byte(tmp_path / "updates.journal", body_start)
    scan = journal.scan()  # damaged *final* record: discard, don't raise
    assert scan.torn_tail
    assert scan.batches == ()


def test_scan_rejects_foreign_file(tmp_path):
    (tmp_path / "notes.txt").write_bytes(b"not a journal at all, too long to be torn")
    with pytest.raises(JournalError, match="does not start with the record magic"):
        UpdateJournal(tmp_path / "notes.txt").scan()
    assert JOURNAL_MAGIC == b"RJRN"


# ----------------------------------------------------------------- owner WAL
def test_owner_logs_batches_and_publish_markers(tmp_path):
    owner = _owner()
    journal = owner.enable_journal(tmp_path / "wal.journal", fsync=False)
    owner.insert(Record(record_id=100, values=(3.3, 1.0)))
    owner.delete(0)
    owner.publish(tmp_path / "ads.npz")
    scan = journal.scan()
    assert [batch.epoch for batch in scan.batches] == [1, 2]
    assert scan.published_epoch == 2
    # Reopening the same path attaches without re-writing the header.
    reopened = owner.enable_journal(tmp_path / "wal.journal", fsync=False)
    assert [batch.epoch for batch in reopened.scan().batches] == [1, 2]


def test_attach_rejects_foreign_lineage(tmp_path):
    owner = _owner()
    journal = UpdateJournal.create(
        tmp_path / "foreign.journal",
        lineage=lineage_fingerprint({"scheme": "other"}),
        base_epoch=0,
        fsync=False,
    )
    with pytest.raises(JournalError, match="different ADS lineage"):
        owner.attach_journal(journal)


def test_attach_rejects_stale_journal(tmp_path):
    owner = _owner()
    journal = _journal_for(owner, tmp_path)
    journal.append_batch(epoch=1, deletes=[0])
    with pytest.raises(JournalError, match="recover from the journal"):
        owner.attach_journal(journal)  # owner is still at epoch 0


# ------------------------------------------------------------------ recovery
def test_recover_is_bit_identical_to_uninterrupted_owner(tmp_path):
    owner = _owner()
    owner.publish(tmp_path / "base.npz")
    journal = owner.enable_journal(tmp_path / "wal.journal", fsync=False)
    owner.insert(Record(record_id=100, values=(3.3, 1.0)))
    owner.apply_updates(
        inserts=[Record(record_id=101, values=(2.2, 0.5))], deletes=[1]
    )
    # Crash here: the artifact still holds epoch 0, the journal holds both
    # batches.  The reference owner replays the same history uninterrupted.
    recovered = DataOwner.recover(
        journal, tmp_path / "base.npz", keypair=owner.keypair
    )
    reference = DataOwner.from_artifact(tmp_path / "base.npz", keypair=owner.keypair)
    reference.insert(Record(record_id=100, values=(3.3, 1.0)))
    reference.apply_updates(
        inserts=[Record(record_id=101, values=(2.2, 0.5))], deletes=[1]
    )
    assert recovered.epoch == 2
    assert state_fingerprint(recovered, QUERIES) == state_fingerprint(
        reference, QUERIES
    )
    report = recovered.last_recovery
    assert (report.base_epoch, report.final_epoch) == (0, 2)
    assert report.replayed_batches == 2
    assert not report.torn_tail_discarded
    # The journal is live again: the next batch chains onto epoch 3.
    recovered.delete(2)
    assert journal.scan().last_epoch == 3


def test_recover_discards_torn_tail(tmp_path):
    owner = _owner()
    owner.publish(tmp_path / "base.npz")
    journal = owner.enable_journal(tmp_path / "wal.journal", fsync=False)
    owner.delete(0)
    with open(tmp_path / "wal.journal", "ab") as stream:
        stream.write(b"RJRN\x10")  # crash mid-append of a second batch
    recovered = DataOwner.recover(
        journal, tmp_path / "base.npz", keypair=owner.keypair
    )
    assert recovered.epoch == 1
    assert recovered.last_recovery.replayed_batches == 1
    assert recovered.last_recovery.torn_tail_discarded
    assert not journal.scan().torn_tail  # the tail was cut during recovery


def test_recover_rejects_foreign_lineage(tmp_path):
    owner = _owner()
    owner.publish(tmp_path / "base.npz")
    journal = UpdateJournal.create(
        tmp_path / "foreign.journal",
        lineage=lineage_fingerprint({"scheme": "other"}),
        base_epoch=0,
        fsync=False,
    )
    with pytest.raises(JournalError, match="different ADS lineage"):
        DataOwner.recover(journal, tmp_path / "base.npz", keypair=owner.keypair)


# ------------------------------------------------------------------- pruning
def test_prune_respects_publish_markers(tmp_path):
    owner = _owner()
    owner.publish(tmp_path / "base.npz")
    journal = owner.enable_journal(tmp_path / "wal.journal", fsync=False)
    owner.delete(0)
    owner.delete(1)
    owner.publish(tmp_path / "epoch2.npz")  # marks epochs <= 2 durable
    owner.delete(2)
    with pytest.raises(JournalError, match="batches past it exist only here"):
        journal.prune(through_epoch=3)
    assert journal.prune() == 2  # drops the two published batches
    scan = journal.scan()
    assert scan.base_epoch == 2
    assert [batch.epoch for batch in scan.batches] == [3]
    # The pruned journal can no longer recover the epoch-0 artifact...
    with pytest.raises(JournalError, match="pruned past the recovery base"):
        journal.replay_batches(0)
    # ...but recovers the epoch-2 artifact it was pruned against.
    recovered = DataOwner.recover(
        journal, tmp_path / "epoch2.npz", keypair=owner.keypair
    )
    assert recovered.epoch == 3


# ----------------------------------------------------------- crash matrix
def test_crash_matrix_recovers_bit_identical_everywhere(tmp_path):
    owner = _owner()
    owner.publish(tmp_path / "base.npz")
    batches = (
        UpdateBatch(inserts=(Record(record_id=100, values=(3.3, 1.0)),)),
        UpdateBatch(deletes=(0,)),
    )
    reference, outcomes = run_crash_matrix(
        tmp_path / "base.npz",
        keypair=owner.keypair,
        batches=batches,
        queries=QUERIES,
        workdir=tmp_path / "matrix",
    )
    assert len(outcomes) == len(crash_points(len(batches))) == 7
    assert reference["epoch"] == len(batches)
    for outcome in outcomes:
        assert outcome.identical, (
            f"crash at {outcome.crash.label} diverged: {outcome.mismatched_fields}"
        )
    torn = [outcome for outcome in outcomes if outcome.torn_tail_discarded]
    assert torn, "the matrix must exercise at least one torn-tail crash"
