"""VirtualClock and RetryPolicy: deterministic timing primitives."""

import random

import pytest

from repro.resilience.policy import RetryPolicy, VirtualClock


def test_clock_starts_at_zero_and_advances():
    clock = VirtualClock()
    assert clock.now() == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.25) == 1.75
    assert clock.now() == 1.75


def test_clock_rejects_negative_advance():
    clock = VirtualClock(start=3.0)
    with pytest.raises(ValueError, match="cannot advance"):
        clock.advance(-0.1)
    assert clock.now() == 3.0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_backoff": -0.1},
        {"backoff_multiplier": 0.5},
        {"jitter_fraction": 1.5},
        {"attempt_timeout": 0.0},
        {"deadline": -1.0},
    ],
)
def test_policy_validates_fields(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_backoff=0.1,
        backoff_multiplier=2.0,
        max_backoff=0.5,
        jitter_fraction=0.0,
    )
    rng = random.Random(0)
    assert policy.backoff(1, rng) == pytest.approx(0.1)
    assert policy.backoff(2, rng) == pytest.approx(0.2)
    assert policy.backoff(3, rng) == pytest.approx(0.4)
    assert policy.backoff(4, rng) == pytest.approx(0.5)  # capped
    assert policy.backoff(9, rng) == pytest.approx(0.5)


def test_backoff_jitter_is_deterministic_under_a_seed():
    policy = RetryPolicy(jitter_fraction=0.5)
    first = [policy.backoff(i, random.Random(42)) for i in range(1, 6)]
    second = [policy.backoff(i, random.Random(42)) for i in range(1, 6)]
    assert first == second
    # Jitter only ever adds on top of the deterministic base.
    bare = RetryPolicy(jitter_fraction=0.0)
    rng = random.Random(7)
    for failures in range(1, 6):
        assert policy.backoff(failures, rng) >= bare.backoff(failures, rng)


def test_backoff_requires_at_least_one_failure():
    with pytest.raises(ValueError, match="failures"):
        RetryPolicy().backoff(0, random.Random(0))
