"""Counter consistency under concurrent fault-injected execution.

``Server.execute`` / ``execute_batch`` are documented thread-safe, and the
:class:`FaultInjector` wrapper must preserve that: injected crashes abort
*before* the wrapped server runs (so they never touch the cumulative
counters), tampering rewrites outputs only (the honest execution underneath
is still fully counted), and every query keeps its own isolated per-query
counter regardless of what runs next to it.
"""

import threading

import pytest

from repro.core.errors import QueryProcessingError
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import TopKQuery
from repro.core.server import Server
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.policy import VirtualClock

THREADS = 4
QUERIES_PER_THREAD = 12


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )


def _thread_queries(worker: int) -> list:
    return [
        TopKQuery(weights=(0.15 + 0.05 * ((worker * QUERIES_PER_THREAD + i) % 14),), k=2 + (i % 3))
        for i in range(QUERIES_PER_THREAD)
    ]


def test_concurrent_execute_keeps_cumulative_counters_consistent(system):
    clock = VirtualClock()
    injector = FaultInjector(
        system.server,
        (FaultSpec(kind="crash", rate=0.25), FaultSpec(kind="tamper", rate=0.25)),
        seed=17,
        clock=clock,
    )
    results: list = [None] * THREADS
    baseline = system.server.counters.copy()

    def worker(index: int) -> None:
        completed = []
        crashes = 0
        for query in _thread_queries(index):
            try:
                completed.append(injector.execute(query))
            except QueryProcessingError:
                crashes += 1
        results[index] = (completed, crashes)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    completed = [execution for executions, _ in results for execution in executions]
    crashes = sum(count for _, count in results)
    assert crashes > 0, "the crash fault must have fired for the test to mean anything"
    assert completed, "some executions must have completed"

    # Cumulative counters equal the merge of every completed execution's
    # isolated per-query counter: crashes contributed nothing (they abort
    # before the wrapped server runs), tampering changed outputs only.
    expected = baseline.copy()
    for execution in completed:
        expected.merge(execution.counters)
    assert system.server.counters.snapshot() == expected.snapshot()


def test_concurrent_per_query_counters_match_a_lone_execution(system):
    """Per-query counters are bit-identical to the same query run alone on a
    fresh server, no matter how many tampering threads run next to it."""
    clock = VirtualClock()
    injector = FaultInjector(
        system.server, (FaultSpec(kind="tamper", rate=0.5),), seed=23, clock=clock
    )
    reference = Server(system.owner.outsource())
    results: list = [None] * THREADS

    def worker(index: int) -> None:
        results[index] = [injector.execute(query) for query in _thread_queries(index)]

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for index in range(THREADS):
        for query, execution in zip(_thread_queries(index), results[index]):
            lone = reference.execute(query)
            assert execution.counters.snapshot() == lone.counters.snapshot(), (
                f"per-query counters of {query} leaked across threads"
            )


def test_concurrent_execute_batch_counters(system):
    injector = FaultInjector(
        system.server, (FaultSpec(kind="tamper", rate=0.3),), seed=29
    )
    baseline = system.server.counters.copy()
    results: list = [None] * THREADS

    def worker(index: int) -> None:
        results[index] = injector.execute_batch(_thread_queries(index))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    expected = baseline.copy()
    for batch in results:
        assert len(batch) == QUERIES_PER_THREAD
        for execution in batch:
            expected.merge(execution.counters)
    assert system.server.counters.snapshot() == expected.snapshot()
