"""Tests for the operation counters."""

from repro.metrics.counters import Counters


def test_counters_start_at_zero():
    counters = Counters()
    assert counters.snapshot() == {
        "nodes_traversed": 0,
        "hash_operations": 0,
        "physical_hash_operations": 0,
        "signatures_created": 0,
        "signatures_verified": 0,
        "comparisons": 0,
    }


def test_add_methods_increment():
    counters = Counters()
    counters.add_node()
    counters.add_node(3)
    counters.add_hash()
    counters.add_signature_created(2)
    counters.add_signature_verified()
    counters.add_comparison(5)
    assert counters.nodes_traversed == 4
    assert counters.hash_operations == 1
    assert counters.signatures_created == 2
    assert counters.signatures_verified == 1
    assert counters.comparisons == 5


def test_physical_hash_counter_tracks_separately():
    counters = Counters()
    counters.add_hash(5)
    counters.add_physical_hash(2)
    assert counters.hash_operations == 5
    assert counters.physical_hash_operations == 2
    assert counters.snapshot()["physical_hash_operations"] == 2
    diff = counters - Counters(physical_hash_operations=1)
    assert diff.physical_hash_operations == 1
    clone = counters.copy()
    clone.add_physical_hash()
    assert counters.physical_hash_operations == 2
    assert clone.physical_hash_operations == 3
    merged = Counters()
    merged.merge(counters)
    assert merged.physical_hash_operations == 2
    counters.reset()
    assert counters.physical_hash_operations == 0


def test_extra_counters():
    counters = Counters()
    counters.add_extra("lp_calls")
    counters.add_extra("lp_calls", 4)
    assert counters.extra == {"lp_calls": 5}
    assert counters.snapshot()["lp_calls"] == 5


def test_reset_clears_everything():
    counters = Counters()
    counters.add_node(7)
    counters.add_extra("x", 2)
    counters.reset()
    assert counters.nodes_traversed == 0
    assert counters.extra == {}


def test_merge_accumulates():
    a = Counters()
    b = Counters()
    a.add_node(2)
    a.add_extra("x", 1)
    b.add_node(3)
    b.add_hash(4)
    b.add_extra("x", 2)
    b.add_extra("y", 5)
    a.merge(b)
    assert a.nodes_traversed == 5
    assert a.hash_operations == 4
    assert a.extra == {"x": 3, "y": 5}


def test_subtraction_gives_difference():
    before = Counters()
    before.add_node(2)
    after = Counters()
    after.add_node(9)
    after.add_hash(3)
    diff = after - before
    assert diff.nodes_traversed == 7
    assert diff.hash_operations == 3


def test_copy_is_independent():
    counters = Counters()
    counters.add_node(1)
    clone = counters.copy()
    clone.add_node(10)
    assert counters.nodes_traversed == 1
    assert clone.nodes_traversed == 11
