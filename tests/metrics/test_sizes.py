"""Tests for the byte-size model."""

from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel


def test_default_model_values():
    assert DEFAULT_SIZE_MODEL.hash_size == 32
    assert DEFAULT_SIZE_MODEL.float_size == 8


def test_record_and_function_sizes_scale_with_dimension():
    model = SizeModel()
    assert model.record_size(3) == model.int_size + 3 * model.float_size
    assert model.function_size(3) == model.int_size + 4 * model.float_size
    assert model.record_size(5) > model.record_size(2)


def test_hyperplane_and_constraint_sizes():
    model = SizeModel()
    assert model.constraint_size(2) == model.hyperplane_size(2) + model.int_size
    assert model.hyperplane_size(2) == 2 * model.int_size + 3 * model.float_size


def test_with_signature_size_returns_modified_copy():
    model = SizeModel(signature_size=256)
    bigger = model.with_signature_size(640)
    assert bigger.signature_size == 640
    assert model.signature_size == 256
    assert bigger.hash_size == model.hash_size
