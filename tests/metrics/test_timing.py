"""Tests for the timing helpers."""

import contextlib
import time

from repro.metrics.timing import Stopwatch, timed


def test_stopwatch_accumulates_named_durations():
    watch = Stopwatch()
    with watch.measure("hashing"):
        time.sleep(0.001)
    with watch.measure("hashing"):
        time.sleep(0.001)
    with watch.measure("signature"):
        pass
    assert watch.get("hashing") >= 0.002
    assert watch.get("signature") >= 0.0
    assert watch.get("missing") == 0.0
    assert watch.total() >= watch.get("hashing")


def test_stopwatch_reset():
    watch = Stopwatch()
    with watch.measure("x"):
        pass
    watch.reset()
    assert watch.durations == {}


def test_timed_records_elapsed_time():
    with timed() as elapsed:
        time.sleep(0.001)
    assert elapsed[0] >= 0.001


def test_timed_records_even_on_exception():
    with contextlib.suppress(RuntimeError), timed() as elapsed:
        raise RuntimeError("boom")
    assert elapsed[0] >= 0.0
