"""Tests for the synthetic workload generators."""

import random

import pytest

from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_queries,
    make_query,
    make_template,
    make_weight_vector,
)


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(n_records=0)
    with pytest.raises(ValueError):
        WorkloadConfig(dimension=0)
    with pytest.raises(ValueError):
        WorkloadConfig(distribution="zipf")
    with pytest.raises(ValueError):
        WorkloadConfig(value_range=(5.0, 1.0))


def test_attribute_names_include_baseline():
    config = WorkloadConfig(dimension=2)
    assert config.attribute_names[-1] == "baseline"
    assert len(config.attribute_names) == 3


@pytest.mark.parametrize("distribution", ["uniform", "correlated", "clustered"])
def test_dataset_has_requested_shape(distribution):
    config = WorkloadConfig(n_records=25, dimension=2, distribution=distribution, seed=4)
    dataset = make_dataset(config)
    assert len(dataset) == 25
    assert dataset.attribute_names == config.attribute_names
    low, high = config.value_range
    for record in dataset:
        assert len(record.values) == 3
        assert all(low <= value <= high for value in record.values)


def test_dataset_is_deterministic_per_seed():
    config = WorkloadConfig(n_records=10, dimension=1, seed=7)
    a = make_dataset(config)
    b = make_dataset(config)
    assert [r.values for r in a] == [r.values for r in b]
    different = make_dataset(WorkloadConfig(n_records=10, dimension=1, seed=8))
    assert [r.values for r in a] != [r.values for r in different]


def test_univariate_template_uses_constant_attribute():
    config = WorkloadConfig(n_records=5, dimension=1)
    template = make_template(config)
    assert template.dimension == 1
    assert template.constant_attribute == "baseline"


def test_multivariate_template_has_no_constant():
    config = WorkloadConfig(n_records=5, dimension=3)
    template = make_template(config)
    assert template.dimension == 3
    assert template.constant_attribute is None


def test_template_matches_generated_dataset():
    config = WorkloadConfig(n_records=8, dimension=2, seed=1)
    dataset = make_dataset(config)
    template = make_template(config)
    functions = template.functions_for(dataset)
    assert len(functions) == 8
    assert all(f.dimension == 2 for f in functions)


def test_weight_vector_stays_inside_domain():
    config = WorkloadConfig(n_records=5, dimension=2)
    template = make_template(config)
    rng = random.Random(3)
    for _ in range(20):
        weights = make_weight_vector(template, rng)
        assert template.domain.contains(weights)


def test_make_queries_mixes_kinds():
    config = WorkloadConfig(n_records=12, dimension=1, seed=2)
    dataset = make_dataset(config)
    template = make_template(config)
    queries = make_queries(dataset, template, count=9, seed=5)
    assert len(queries) == 9
    kinds = {type(q) for q in queries}
    assert kinds == {TopKQuery, RangeQuery, KNNQuery}


def test_make_queries_single_kind_and_result_size():
    config = WorkloadConfig(n_records=12, dimension=1, seed=2)
    dataset = make_dataset(config)
    template = make_template(config)
    queries = make_queries(dataset, template, count=4, kinds=("topk",), result_size=5, seed=1)
    assert all(isinstance(q, TopKQuery) and q.k == 5 for q in queries)


def test_make_queries_rejects_unknown_kind():
    config = WorkloadConfig(n_records=6, dimension=1)
    dataset = make_dataset(config)
    template = make_template(config)
    with pytest.raises(ValueError):
        make_queries(dataset, template, kinds=("median",))
    with pytest.raises(ValueError):
        make_queries(dataset, template, kinds=())


def test_range_queries_target_populated_score_bands():
    config = WorkloadConfig(n_records=20, dimension=1, seed=6)
    dataset = make_dataset(config)
    template = make_template(config)
    queries = make_queries(dataset, template, count=6, kinds=("range",), result_size=4, seed=3)
    functions = template.functions_for(dataset)
    for query in queries:
        scores = [f.evaluate(query.weights) for f in functions]
        matching = [s for s in scores if query.low <= s <= query.high]
        assert len(matching) >= 1


def test_make_query_kinds_and_draw_budget():
    """The factored-out single-query path: topk draws nothing from the rng,
    range and knn draw exactly once -- the contract the serving tier's
    trace generator relies on for bit-identical replays."""
    scores = [1.0, 2.0, 3.0, 4.0, 5.0]
    weights = (0.5,)

    rng = random.Random(11)
    state = rng.getstate()
    query = make_query("topk", weights, scores, rng, result_size=2)
    assert isinstance(query, TopKQuery) and query.k == 2
    assert rng.getstate() == state, "topk must not consume randomness"

    for kind, expected in (("range", RangeQuery), ("knn", KNNQuery)):
        probe = random.Random(12)
        reference = random.Random(12)
        query = make_query(kind, weights, scores, probe, result_size=2)
        assert isinstance(query, expected)
        # Exactly one draw: replaying the single draw on a twin rng
        # resynchronises the states.
        if kind == "range":
            reference.randrange(0, len(scores) - 2)
        else:
            reference.choice(scores)
        assert probe.getstate() == reference.getstate()

    with pytest.raises(ValueError, match="unknown query kind"):
        make_query("median", weights, scores, random.Random(0))


def test_make_query_range_bounds_come_from_scores():
    scores = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6])
    query = make_query("range", (0.7,), scores, random.Random(5), result_size=3)
    assert query.low in scores and query.high in scores
    assert query.low <= query.high


def test_make_queries_unchanged_by_make_query_refactor():
    """make_queries draws through make_query now; same seed, same queries
    as the historical inline implementation (golden draw-order pin)."""
    config = WorkloadConfig(n_records=12, dimension=1, seed=2)
    dataset = make_dataset(config)
    template = make_template(config)
    first = make_queries(dataset, template, count=9, seed=5)
    second = make_queries(dataset, template, count=9, seed=5)
    assert first == second
    rng = random.Random(5)
    functions = template.functions_for(dataset)
    expected = []
    for position in range(9):
        kind = ("topk", "range", "knn")[position % 3]
        weights = make_weight_vector(template, rng)
        scores = sorted(function.evaluate(weights) for function in functions)
        if kind == "topk":
            expected.append(TopKQuery(weights=weights, k=3))
        elif kind == "range":
            anchor = rng.randrange(0, max(1, len(scores) - 3))
            expected.append(
                RangeQuery(
                    weights=weights,
                    low=scores[anchor],
                    high=scores[min(len(scores) - 1, anchor + 2)],
                )
            )
        else:
            expected.append(KNNQuery(weights=weights, k=3, target=rng.choice(scores)))
    assert first == expected
