"""Tests for the named application scenarios."""

import pytest

from repro.core.protocol import OutsourcedSystem
from repro.workloads.scenarios import (
    admissions_scenario,
    credit_risk_scenario,
    patient_risk_scenario,
)

SCENARIOS = [
    (admissions_scenario, 12),
    (credit_risk_scenario, 20),
    (patient_risk_scenario, 20),
]


@pytest.mark.parametrize("factory,size", SCENARIOS, ids=lambda value: getattr(value, "__name__", value))
def test_scenario_shapes(factory, size):
    scenario = factory(size)
    assert len(scenario.dataset) == size
    assert scenario.template.dimension >= 1
    assert scenario.example_queries
    assert scenario.name and scenario.description
    # Template attributes must exist in the dataset schema.
    for attribute in scenario.template.attributes:
        assert attribute in scenario.dataset.attribute_names


@pytest.mark.parametrize("factory,size", SCENARIOS, ids=lambda value: getattr(value, "__name__", value))
def test_scenario_is_deterministic(factory, size):
    a = factory(size, seed=5)
    b = factory(size, seed=5)
    assert [r.values for r in a.dataset] == [r.values for r in b.dataset]


@pytest.mark.parametrize("factory,size", [(credit_risk_scenario, 15), (patient_risk_scenario, 15)])
def test_univariate_scenarios_run_end_to_end(factory, size):
    scenario = factory(size)
    system = OutsourcedSystem.setup(
        scenario.dataset, scenario.template, scheme="one-signature", signature_algorithm="hmac"
    )
    for query in scenario.example_queries:
        execution, report = system.query_and_verify(query)
        assert report.is_valid, (scenario.name, query, report.failures)


def test_admissions_scenario_runs_end_to_end():
    scenario = admissions_scenario(10)
    system = OutsourcedSystem.setup(
        scenario.dataset, scenario.template, scheme="multi-signature", signature_algorithm="hmac"
    )
    query = scenario.example_queries[0]
    execution, report = system.query_and_verify(query)
    assert report.is_valid, report.failures
    assert len(execution.result) >= 1


def test_example_queries_match_template_dimension():
    for factory, size in SCENARIOS:
        scenario = factory(size)
        for query in scenario.example_queries:
            assert query.dimension == scenario.template.dimension
