"""Multiprocess forest build: worker count is a wall-clock knob, nothing else.

The sharded build (:mod:`repro.merkle.parallel`) splits the forest's tree
rows across forked workers and merges their shards back into one flat
arena.  These tests pin the two halves of its contract:

* **determinism** -- subdomain root digests, arena digest rows, node
  counts and *both* hash counters are identical to the single-process
  build at every worker count; when the shard bounds land on the serial
  chunk grid the whole arena (node numbering included) is byte-identical;

* **failure containment** -- a worker that dies mid-build surfaces as a
  :class:`~repro.core.errors.ConstructionError` naming the shard (never a
  hang), and no shared-memory segment outlives the failed build.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ConstructionError
from repro.crypto.hashing import HashFunction
from repro.merkle import arena as arena_module
from repro.merkle import parallel as parallel_module
from repro.merkle.arena import ForestHasher
from repro.merkle.parallel import fork_available, internal_pair_slots, shard_bounds

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)


def _shm_segments():
    """Names of the live POSIX shared-memory segments (Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _build(payloads, rows, workers):
    """One forest build from scratch: fresh hasher, fresh counters."""
    hashes = HashFunction()
    hasher = ForestHasher(workers=workers)
    indices = hasher.intern_leaves(payloads, hashes)
    index_of = dict(zip(payloads, indices.tolist()))
    matrix = np.array([[index_of[p] for p in row] for row in rows], dtype=np.int64)
    roots = hasher.build_forest(matrix, hashes)
    return roots, hasher, hashes


def _transposition_rows(payloads, tree_count):
    """Adjacent-transposition forest: the IFMH step-2 row relation."""
    rows = [list(payloads)]
    for tree in range(1, tree_count):
        row = list(rows[-1])
        position = (tree * 7) % (len(payloads) - 1)
        row[position], row[position + 1] = row[position + 1], row[position]
        rows.append(row)
    return rows


# ---------------------------------------------------------------- identity
@settings(max_examples=15, deadline=None)
@given(
    leaf_count=st.integers(min_value=2, max_value=17),
    tree_count=st.integers(min_value=2, max_value=6),
    workers=st.sampled_from([2, 4]),
    data=st.data(),
)
def test_property_parallel_forest_is_bit_identical(
    leaf_count, tree_count, workers, data
):
    """Random forests at every odd-carry shape: parallel == serial.

    Root digests, arena digest rows as values, node counts and both hash
    counters must match the single-process build exactly; these tiny
    forests take the row-split path, where only the node *numbering* may
    differ (see ``docs/scaling.md``).
    """
    payloads = [b"record-%d" % i for i in range(leaf_count)]
    rows = [
        data.draw(st.permutations(payloads), label=f"row-{t}")
        for t in range(tree_count)
    ]
    serial_roots, serial_hasher, serial_hashes = _build(payloads, rows, 1)
    parallel_roots, parallel_hasher, parallel_hashes = _build(payloads, rows, workers)

    serial_arena = serial_hasher.finalize()
    parallel_arena = parallel_hasher.finalize()
    assert np.array_equal(
        serial_arena.digests[serial_roots], parallel_arena.digests[parallel_roots]
    )
    assert len(parallel_arena) == len(serial_arena)
    assert sorted(map(bytes, parallel_arena.digests)) == sorted(
        map(bytes, serial_arena.digests)
    )
    assert parallel_hashes.call_count == serial_hashes.call_count
    assert parallel_hashes.physical_count == serial_hashes.physical_count
    assert parallel_hasher.stats() == serial_hasher.stats()


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_chunk_aligned_shards_are_byte_identical(monkeypatch, workers):
    """With shard bounds on the serial chunk grid, even the node numbering
    (hence every artifact byte) matches the single-process build."""
    leaf_count, tree_count = 9, 24
    monkeypatch.setattr(arena_module, "_CHUNK_ELEMENTS", leaf_count * 3)
    payloads = [b"leaf-%d" % i for i in range(leaf_count)]
    rows = _transposition_rows(payloads, tree_count)
    serial_roots, serial_hasher, serial_hashes = _build(payloads, rows, 1)
    parallel_roots, parallel_hasher, parallel_hashes = _build(payloads, rows, workers)

    assert np.array_equal(parallel_roots, serial_roots)
    serial_arena = serial_hasher.finalize()
    parallel_arena = parallel_hasher.finalize()
    assert np.array_equal(parallel_arena.digests, serial_arena.digests)
    assert np.array_equal(parallel_arena.left, serial_arena.left)
    assert np.array_equal(parallel_arena.right, serial_arena.right)
    assert parallel_hashes.call_count == serial_hashes.call_count
    assert parallel_hashes.physical_count == serial_hashes.physical_count


def test_parallel_build_leaves_no_shared_memory_behind(monkeypatch):
    monkeypatch.setattr(arena_module, "_CHUNK_ELEMENTS", 9 * 2)
    payloads = [b"leaf-%d" % i for i in range(9)]
    rows = _transposition_rows(payloads, 16)
    before = _shm_segments()
    _build(payloads, rows, 4)
    assert _shm_segments() <= before


def test_parallel_hasher_is_sealed_after_build():
    """A second build on a shard-merged hasher must refuse, not corrupt:
    the pair cache no longer mirrors the store after a parallel merge."""
    payloads = [b"leaf-%d" % i for i in range(4)]
    rows = _transposition_rows(payloads, 8)
    _, hasher, hashes = _build(payloads, rows, 2)
    matrix = np.tile(np.arange(4, dtype=np.int64), (2, 1))
    with pytest.raises(RuntimeError, match="new instance"):
        hasher.build_forest(matrix, hashes)


# ------------------------------------------------------------- shard bounds
def test_shard_bounds_cover_rows_contiguously():
    for tree_count, leaf_count, workers in [
        (100, 5, 4),
        (7, 3, 16),
        (1, 9, 4),
        (5000, 10002, 3),
    ]:
        bounds = shard_bounds(tree_count, leaf_count, workers)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == tree_count
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert start == stop
        assert all(stop > start for start, stop in bounds)
        assert len(bounds) <= min(workers, tree_count)


def test_shard_bounds_prefer_whole_chunks(monkeypatch):
    """With enough chunks, every boundary sits on the serial chunk grid."""
    monkeypatch.setattr(arena_module, "_CHUNK_ELEMENTS", 40)
    chunk_rows = 40 // 10
    bounds = shard_bounds(33, 10, 3)
    for start, _ in bounds:
        assert start % chunk_rows == 0


def test_internal_pair_slots_matches_level_walk():
    for leaf_count in range(2, 40):
        width, total = leaf_count, 0
        while width > 1:
            total += width // 2
            width = width // 2 + width % 2
        assert internal_pair_slots(leaf_count) == total


# ------------------------------------------------------ failure containment
def test_poisoned_shard_raises_construction_error_not_hang(monkeypatch):
    """A worker that dies mid-shard must surface as a ConstructionError
    naming the shard, and must not leak its shared-memory segment."""
    monkeypatch.setattr(arena_module, "_CHUNK_ELEMENTS", 9 * 2)
    inner = parallel_module._build_shard

    def poisoned(shard_index, *args, **kwargs):
        if shard_index == 1:
            raise RuntimeError("poisoned shard for the fault test")
        return inner(shard_index, *args, **kwargs)

    # The fork start method inherits the patched module, so the poison
    # fires inside the worker process.
    monkeypatch.setattr(parallel_module, "_build_shard", poisoned)
    payloads = [b"leaf-%d" % i for i in range(9)]
    rows = _transposition_rows(payloads, 16)
    before = _shm_segments()
    with pytest.raises(ConstructionError, match=r"shard 1"):
        _build(payloads, rows, 4)
    assert _shm_segments() <= before
