"""The hash-consed node cache must never change what a MerkleTree computes.

The shared-structure engine serves internal nodes from a ``(left, right)``
-> parent table shared across trees.  These tests pin the contract: for any
leaf multiset -- including every odd-carry shape from 1 to 17 leaves --
cached and uncached builds produce identical roots, levels, membership
proofs and range proofs, identical *logical* hash counts, and strictly
fewer physical SHA-256 invocations once the cache is warm.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import HashFunction
from repro.merkle.mh_tree import MerkleTree
from repro.metrics.counters import Counters


def _leaves(count):
    return [hashlib.sha256(bytes([i])).digest() for i in range(count)]


@pytest.mark.parametrize("count", list(range(1, 18)))
def test_cached_build_is_bit_identical(count):
    """Roots, levels and all proofs match the uncached build for 1..17 leaves."""
    leaves = _leaves(count)
    plain = MerkleTree(leaves)
    cached = MerkleTree(leaves, node_cache={})
    assert cached.root == plain.root
    assert cached.levels == plain.levels
    for index in range(count):
        assert cached.membership_proof(index) == plain.membership_proof(index)
    for start in range(count):
        for end in range(start, count):
            assert cached.range_proof(start, end) == plain.range_proof(start, end)


@pytest.mark.parametrize("count", list(range(1, 18)))
def test_cached_build_logical_count_unchanged(count):
    """Cache hits still count as logical operations (figure counters stable)."""
    plain_counters, warm_counters = Counters(), Counters()
    leaves = _leaves(count)
    MerkleTree(leaves, hash_function=HashFunction(plain_counters))
    cache = {}
    MerkleTree(leaves, hash_function=HashFunction(Counters()), node_cache=cache)
    MerkleTree(leaves, hash_function=HashFunction(warm_counters), node_cache=cache)
    assert warm_counters.hash_operations == plain_counters.hash_operations
    # A warm cache answers every internal node without hashing.
    assert warm_counters.physical_hash_operations == 0


def test_warm_cache_skips_physical_hashing_for_shared_structure():
    """Two trees differing in one leaf share all but one path's nodes."""
    leaves = _leaves(16)
    cache = {}
    first = HashFunction()
    MerkleTree(leaves, hash_function=first, node_cache=cache)
    assert first.physical_count == 15  # cold cache computes every internal node

    changed = list(leaves)
    changed[7] = hashlib.sha256(b"changed").digest()
    second = HashFunction()
    tree = MerkleTree(changed, hash_function=second, node_cache=cache)
    # Only the log2(16) = 4 nodes on the changed leaf's path are new.
    assert second.physical_count == 4
    assert second.call_count == 15
    assert tree.root == MerkleTree(changed).root


def test_carried_nodes_never_enter_the_cache():
    """Odd-carry nodes are not hashed, so they must not be hash-consed."""
    cache = {}
    leaves = _leaves(5)
    tree = MerkleTree(leaves, node_cache=cache)
    # 5 leaves: levels 5-3-2-1 with carries at levels 0 and 1 -> 4 combines.
    assert len(cache) == 4
    assert tree.root == MerkleTree(leaves).root


leaf_sets = st.lists(st.binary(min_size=0, max_size=8), min_size=1, max_size=40).map(
    lambda blobs: [hashlib.sha256(blob).digest() for blob in blobs]
)


@given(leaves=leaf_sets, other=leaf_sets)
@settings(max_examples=80, deadline=None)
def test_property_shared_cache_never_changes_roots_or_counts(leaves, other):
    """A cache shared across arbitrary trees is invisible to results.

    Builds two unrelated trees through one cache (duplicated leaves,
    adversarial sizes, shared subtrees between the two) and checks both
    against fresh uncached builds, including the logical-count invariant.
    """
    cache = {}
    for leaf_hashes in (leaves, other, leaves):
        cached_hash = HashFunction()
        cached = MerkleTree(leaf_hashes, hash_function=cached_hash, node_cache=cache)
        plain_hash = HashFunction()
        plain = MerkleTree(leaf_hashes, hash_function=plain_hash)
        assert cached.root == plain.root
        assert cached.levels == plain.levels
        assert cached_hash.call_count == plain_hash.call_count
        assert cached_hash.physical_count <= plain_hash.physical_count
