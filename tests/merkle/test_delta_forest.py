"""DeltaForestHasher must equal a fresh ForestHasher, node for node.

Randomized differential test: build an arbitrary "old" forest, then an
arbitrary "new" forest expressed as change points against a seed arena,
and require every root digest and every materialized level to be
bit-identical to a from-scratch :class:`repro.merkle.arena.ForestHasher`
build of the new forest -- while the delta build only ever *appends* to
the seed arena.
"""

import hashlib
import random

import numpy as np

from repro.crypto.hashing import HashFunction
from repro.merkle.arena import ArenaMerkleTree, DeltaForestHasher, ForestHasher


def _forest_rows(rng, n_trees, n_leaves, n_payloads):
    rows = []
    for tree in range(n_trees):
        if tree and rng.random() < 0.6:
            row = rows[-1].copy()
            for _ in range(rng.randrange(0, 3)):
                row[rng.randrange(n_leaves)] = rng.randrange(n_payloads)
        else:
            row = np.array([rng.randrange(n_payloads) for _ in range(n_leaves)])
        rows.append(row)
    return np.array(rows)


def test_delta_forest_matches_fresh_forest_hasher():
    rng = random.Random(0)
    for trial in range(150):
        n_leaves = rng.randrange(1, 12)
        n_trees_old = rng.randrange(1, 8)
        n_trees_new = rng.randrange(1, 8)
        n_payloads = rng.randrange(1, 9)
        payloads = [b"payload-%d" % index for index in range(n_payloads)]

        old_hasher = ForestHasher()
        old_hash = HashFunction()
        old_leaves = old_hasher.intern_leaves(payloads, old_hash)
        old_hasher.build_forest(
            old_leaves[_forest_rows(rng, n_trees_old, n_leaves, n_payloads)], old_hash
        )
        seed = old_hasher.finalize()
        seed_size = len(seed)

        new_matrix = _forest_rows(rng, n_trees_new, n_leaves, n_payloads)
        fresh_hasher = ForestHasher()
        fresh_hash = HashFunction()
        fresh_leaves = fresh_hasher.intern_leaves(payloads, fresh_hash)
        fresh_roots = fresh_hasher.build_forest(fresh_leaves[new_matrix], fresh_hash)
        fresh_arena = fresh_hasher.finalize()

        delta = DeltaForestHasher(seed)
        delta_hash = HashFunction()
        payload_index = np.array(
            [
                delta.leaf_index_of(hashlib.sha256(payload).digest())
                if delta.leaf_index_of(hashlib.sha256(payload).digest()) is not None
                else delta.intern_leaf(payload, delta_hash)
                for payload in payloads
            ],
            dtype=np.int64,
        )
        leaf_matrix = payload_index[new_matrix]
        changed = leaf_matrix[1:] != leaf_matrix[:-1]
        change_tree, change_col = np.nonzero(changed)
        roots = delta.build(
            leaf_matrix[0],
            (change_tree + 1).astype(np.int64),
            change_col.astype(np.int64),
            leaf_matrix[1:][changed].astype(np.int64),
            n_trees_new,
            delta_hash,
        )
        arena = delta.finalize()

        # Seed nodes are untouched (append-only growth).
        assert np.array_equal(arena.digests[:seed_size], seed.digests)
        assert np.array_equal(arena.left[:seed_size], seed.left)
        assert np.array_equal(arena.right[:seed_size], seed.right)

        for tree in range(n_trees_new):
            delta_view = ArenaMerkleTree(arena, int(roots[tree]), n_leaves)
            fresh_view = ArenaMerkleTree(fresh_arena, int(fresh_roots[tree]), n_leaves)
            assert delta_view.root == fresh_view.root, trial
            assert delta_view.levels == fresh_view.levels, trial


def test_delta_forest_redundant_entries_are_harmless():
    """Listed cells whose value does not change must not alter the forest."""
    payloads = [b"a", b"b", b"c"]
    hasher = ForestHasher()
    counting = HashFunction()
    leaves = hasher.intern_leaves(payloads, counting)
    matrix = leaves[np.array([[0, 1, 2, 0], [0, 1, 0, 0]])]
    hasher.build_forest(matrix, counting)
    seed = hasher.finalize()

    reference = DeltaForestHasher(seed)
    reference_roots = reference.build(
        matrix[0],
        np.array([1], dtype=np.int64),
        np.array([2], dtype=np.int64),
        np.array([matrix[1, 2]], dtype=np.int64),
        2,
        HashFunction(),
    )
    noisy = DeltaForestHasher(seed)
    noisy_roots = noisy.build(
        matrix[0],
        np.array([1, 1, 1], dtype=np.int64),
        np.array([0, 2, 3], dtype=np.int64),
        np.array([matrix[1, 0], matrix[1, 2], matrix[1, 3]], dtype=np.int64),
        2,
        HashFunction(),
    )
    reference_arena = reference.finalize()
    noisy_arena = noisy.finalize()
    assert [reference_arena.digest_bytes(int(r)) for r in reference_roots] == [
        noisy_arena.digest_bytes(int(r)) for r in noisy_roots
    ]


def test_delta_forest_reuses_pair_tables():
    """Carried sorted pair tables must behave exactly like derived ones."""
    payloads = [b"x", b"y"]
    hasher = ForestHasher()
    counting = HashFunction()
    leaves = hasher.intern_leaves(payloads, counting)
    matrix = leaves[np.array([[0, 1, 0], [1, 1, 0]])]
    hasher.build_forest(matrix, counting)
    seed = hasher.finalize()

    first = DeltaForestHasher(seed)
    first_roots = first.build(
        matrix[1], np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64),
        1, HashFunction(),
    )
    tables = first.sorted_pair_tables()
    arena = first.finalize()

    second = DeltaForestHasher(arena, pair_tables=tables)
    second_roots = second.build(
        matrix[0], np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64),
        1, HashFunction(),
    )
    second_arena = second.finalize()
    # The second build found everything in the carried tables: no growth,
    # and tree 0's root is the one the original forest already holds.
    assert len(second_arena) == len(arena)
    fresh = ForestHasher()
    fresh_hash = HashFunction()
    fresh_leaves = fresh.intern_leaves(payloads, fresh_hash)
    fresh_roots = fresh.build_forest(
        fresh_leaves[np.array([[0, 1, 0]])], fresh_hash
    )
    assert second_arena.digest_bytes(int(second_roots[0])) == fresh.finalize().digest_bytes(
        int(fresh_roots[0])
    )
    assert first_roots.shape == (1,)
