"""Tests for the FMH-tree (boundary tokens, window proofs)."""

import pytest

from repro.core.records import Record
from repro.crypto.hashing import HashFunction
from repro.merkle.fmh_tree import MAX_TOKEN, MIN_TOKEN, BoundaryEntry, FMHTree
from repro.queryproc.window import ResultWindow


@pytest.fixture()
def records():
    return [Record(record_id=i, values=(float(i), float(10 - i))) for i in range(8)]


@pytest.fixture()
def tree(records):
    return FMHTree(records)


def test_leaf_count_includes_tokens(tree, records):
    assert tree.item_count == len(records)
    assert tree.leaf_count == len(records) + 2


def test_leaf_index_offset(tree):
    assert tree.leaf_index_of_position(0) == 1
    assert tree.leaf_index_of_position(7) == 8


def test_root_is_deterministic(records):
    assert FMHTree(records).root == FMHTree(records).root


def test_root_changes_with_record_order(records):
    reordered = list(records)
    reordered[0], reordered[1] = reordered[1], reordered[0]
    assert FMHTree(reordered).root != FMHTree(records).root


def test_root_changes_with_record_contents(records):
    modified = list(records)
    modified[3] = Record(record_id=3, values=(3.0, 999.0))
    assert FMHTree(modified).root != FMHTree(records).root


def test_boundary_entry_validation(records):
    with pytest.raises(ValueError):
        BoundaryEntry(leaf_index=0)  # neither item nor token
    with pytest.raises(ValueError):
        BoundaryEntry(leaf_index=0, item=records[0], token="min")  # both
    with pytest.raises(ValueError):
        BoundaryEntry(leaf_index=0, token="middle")  # unknown token


def test_boundary_entry_bytes(records):
    assert BoundaryEntry(leaf_index=0, token="min").leaf_bytes() == MIN_TOKEN
    assert BoundaryEntry(leaf_index=9, token="max").leaf_bytes() == MAX_TOKEN
    entry = BoundaryEntry(leaf_index=1, item=records[0])
    assert entry.leaf_bytes() == records[0].to_bytes()
    assert not entry.is_token


@pytest.mark.parametrize("start,end", [(0, 7), (0, 0), (7, 7), (2, 5), (3, 2)])
def test_window_proofs_reconstruct_root(tree, records, start, end):
    window = ResultWindow(start=start, end=end, size=len(records))
    left, right, proof = tree.window_proof(window)
    result = records[start : end + 1] if start <= end else []
    assert FMHTree.root_from_window(result, left, right, proof) == tree.root


def test_window_at_extremes_uses_tokens(tree, records):
    window = ResultWindow(start=0, end=len(records) - 1, size=len(records))
    left, right, _proof = tree.window_proof(window)
    assert left.token == "min"
    assert right.token == "max"


def test_interior_window_uses_real_boundaries(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, _proof = tree.window_proof(window)
    assert left.item == records[1]
    assert right.item == records[5]


def test_window_proof_rejects_mismatched_size(tree, records):
    window = ResultWindow(start=0, end=1, size=len(records) + 3)
    with pytest.raises(ValueError):
        tree.window_proof(window)


def test_root_from_window_detects_forged_record(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, proof = tree.window_proof(window)
    forged = [Record(record_id=r.record_id, values=(r.values[0] + 1.0, r.values[1]))
              for r in records[2:5]]
    assert FMHTree.root_from_window(forged, left, right, proof) != tree.root


def test_root_from_window_detects_dropped_record(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, proof = tree.window_proof(window)
    with pytest.raises(ValueError):
        FMHTree.root_from_window(records[2:4], left, right, proof)


def test_root_from_window_detects_substituted_boundary(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, proof = tree.window_proof(window)
    fake_left = BoundaryEntry(leaf_index=left.leaf_index, item=records[0])
    assert FMHTree.root_from_window(records[2:5], fake_left, right, proof) != tree.root


def test_token_cannot_impersonate_record(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, proof = tree.window_proof(window)
    fake_left = BoundaryEntry(leaf_index=left.leaf_index, token="min")
    assert FMHTree.root_from_window(records[2:5], fake_left, right, proof) != tree.root


def test_hash_counter_used(records):
    from repro.metrics.counters import Counters

    counters = Counters()
    FMHTree(records, hash_function=HashFunction(counters))
    # 10 leaf hashes (8 records + 2 tokens) plus the internal combinations.
    assert counters.hash_operations >= 10


def test_single_record_tree(records):
    tree = FMHTree(records[:1])
    window = ResultWindow(start=0, end=0, size=1)
    left, right, proof = tree.window_proof(window)
    assert left.token == "min" and right.token == "max"
    assert FMHTree.root_from_window(records[:1], left, right, proof) == tree.root


def test_root_from_window_rejects_misanchored_proof(tree, records):
    """A proof for a different range than the boundaries claim is rejected."""
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, _proof = tree.window_proof(window)
    shifted = ResultWindow(start=3, end=5, size=len(records))
    _sl, _sr, shifted_proof = tree.window_proof(shifted)
    with pytest.raises(ValueError, match="does not anchor"):
        FMHTree.root_from_window(records[2:5], left, right, shifted_proof)


def test_root_from_window_rejects_single_shifted_boundary(tree, records):
    window = ResultWindow(start=2, end=4, size=len(records))
    left, right, proof = tree.window_proof(window)
    drifted = BoundaryEntry(leaf_index=right.leaf_index + 1, item=records[6])
    with pytest.raises(ValueError, match="does not anchor"):
        FMHTree.root_from_window(records[2:5], left, drifted, proof)


def test_engine_built_tree_is_bit_identical(records):
    from repro.merkle.engine import MerkleBuildEngine

    engine = MerkleBuildEngine()
    plain = FMHTree(records)
    consed = FMHTree(records, engine=engine)
    rebuilt = FMHTree(records, engine=engine)  # warm tables
    assert consed.root == plain.root
    assert consed.tree.levels == plain.tree.levels
    assert rebuilt.tree.levels == plain.tree.levels
    window = ResultWindow(start=2, end=4, size=len(records))
    assert consed.window_proof(window) == plain.window_proof(window)


def test_engine_skips_physical_hashing_on_rebuild(records):
    from repro.merkle.engine import MerkleBuildEngine
    from repro.metrics.counters import Counters

    engine = MerkleBuildEngine()
    cold, warm = Counters(), Counters()
    FMHTree(records, hash_function=HashFunction(cold), engine=engine)
    FMHTree(records, hash_function=HashFunction(warm), engine=engine)
    assert warm.hash_operations == cold.hash_operations
    assert cold.physical_hash_operations == cold.hash_operations
    assert warm.physical_hash_operations == 0  # everything served from the tables
