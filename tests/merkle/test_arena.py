"""The array-backed forest arena must be observationally a MerkleTree.

The level-order batched builder (:class:`repro.merkle.arena.ForestHasher`)
and its lazy per-tree views must reproduce, bit for bit, the levels, roots,
proofs and counters of trees built leaf-up by :class:`MerkleTree` --
including the paper's odd-node carry rule at every awkward leaf count.
"""

import numpy as np
import pytest

from repro.crypto.hashing import HashFunction, sha256, sha256_many
from repro.merkle.arena import ArenaMerkleTree, ForestHasher
from repro.merkle.mh_tree import MerkleTree, level_sizes


def _payloads(count, tag=b"leaf"):
    return [b"%s-%d" % (tag, i) for i in range(count)]


def _forest_views(payload_rows, hash_function=None):
    """Build a forest over rows of payloads; return the lazy tree views."""
    hash_function = hash_function or HashFunction()
    hasher = ForestHasher()
    distinct = sorted({p for row in payload_rows for p in row})
    indices = hasher.intern_leaves(distinct, hash_function)
    index_of = {payload: int(index) for payload, index in zip(distinct, indices)}
    matrix = np.array([[index_of[p] for p in row] for row in payload_rows], dtype=np.int64)
    roots = hasher.build_forest(matrix, hash_function)
    arena = hasher.finalize()
    return [
        ArenaMerkleTree(arena, int(root), matrix.shape[1], hash_function=hash_function)
        for root in roots
    ]


def test_sha256_many_matches_sha256():
    payloads = _payloads(7)
    assert sha256_many(payloads) == [sha256(p) for p in payloads]


def test_digest_batch_counts_logical_and_physical():
    hashes = HashFunction()
    hashes.digest_batch(_payloads(5))
    assert hashes.call_count == 5
    assert hashes.physical_count == 5


@pytest.mark.parametrize("leaf_count", list(range(1, 18)))
def test_single_tree_matches_merkle_tree_at_every_carry_shape(leaf_count):
    """Leaf counts 1..17 cover every odd-carry pattern up to depth 5."""
    payloads = _payloads(leaf_count)
    plain = MerkleTree([sha256(p) for p in payloads])
    (view,) = _forest_views([payloads])
    assert view.root == plain.root
    assert view.levels == plain.levels
    assert view.leaf_count == plain.leaf_count
    assert view.height == plain.height
    assert view.node_count == plain.node_count
    assert [len(level) for level in view.levels] == level_sizes(leaf_count)


@pytest.mark.parametrize("leaf_count", [2, 5, 9, 12])
def test_forest_of_permuted_rows_matches_per_tree_builds(leaf_count):
    """Adjacent-transposition rows (the IFMH shape) and full reversals."""
    base = _payloads(leaf_count)
    rows = [list(base)]
    for position in range(leaf_count - 1):
        row = list(rows[-1])
        row[position], row[position + 1] = row[position + 1], row[position]
        rows.append(row)
    rows.append(list(reversed(base)))
    views = _forest_views(rows)
    for row, view in zip(rows, views):
        plain = MerkleTree([sha256(p) for p in row])
        assert view.root == plain.root
        assert view.levels == plain.levels


@pytest.mark.parametrize("leaf_count", [3, 8, 11])
def test_view_proofs_match_merkle_tree_proofs(leaf_count):
    payloads = _payloads(leaf_count)
    plain = MerkleTree([sha256(p) for p in payloads])
    (view,) = _forest_views([payloads])
    for index in range(leaf_count):
        assert view.membership_proof(index) == plain.membership_proof(index)
    for start in range(leaf_count):
        for end in range(start, leaf_count):
            assert view.range_proof(start, end) == plain.range_proof(start, end)


def test_view_levels_are_lazy_and_cached():
    (view,) = _forest_views([_payloads(6)])
    assert view._materialized is None
    first = view.levels
    assert view._materialized is first
    assert view.levels is first


def test_forest_counts_one_logical_op_per_pair_slot():
    """Logical = what a per-tree build would count; physical = distinct work."""
    rows = [_payloads(5), _payloads(5)]  # identical trees: full structural sharing
    hashes = HashFunction()
    _forest_views(rows, hash_function=hashes)
    # Per tree: 5 leaf digests + pairs per level (2 + 1 + 1) = 9 logical ops.
    assert hashes.call_count == 2 * 9
    # Physically: 5 distinct leaves + 4 distinct internal nodes.
    assert hashes.physical_count == 5 + 4
    reference = HashFunction()
    MerkleTree([sha256(p) for p in _payloads(5)], hash_function=reference)
    assert reference.call_count == 4  # internal combines of one tree


def test_equal_valued_leaves_share_arena_nodes():
    """Duplicate payloads hash physically per payload but cons by value."""
    hashes = HashFunction()
    hasher = ForestHasher()
    indices = hasher.intern_leaves([b"dup", b"dup", b"other"], hashes)
    assert indices[0] == indices[1] != indices[2]
    assert hashes.physical_count == 3  # every payload is hashed once


def test_finalize_freezes_the_store():
    hashes = HashFunction()
    hasher = ForestHasher()
    hasher.intern_leaves(_payloads(3), hashes)
    hasher.finalize()
    with pytest.raises(RuntimeError, match="finalized"):
        hasher.intern_leaves(_payloads(1, tag=b"late"), hashes)
    with pytest.raises(RuntimeError, match="finalized"):
        hasher.build_forest(np.zeros((1, 3), dtype=np.int64), hashes)


def test_build_forest_rejects_bad_shapes():
    hashes = HashFunction()
    hasher = ForestHasher()
    hasher.intern_leaves(_payloads(2), hashes)
    with pytest.raises(ValueError, match="2-D"):
        hasher.build_forest(np.zeros(3, dtype=np.int64), hashes)
    with pytest.raises(ValueError, match="at least one leaf"):
        hasher.build_forest(np.zeros((2, 0), dtype=np.int64), hashes)


def test_stats_shape_matches_node_engine():
    hashes = HashFunction()
    hasher = ForestHasher()
    indices = hasher.intern_leaves(_payloads(4), hashes)
    matrix = np.array([[int(i) for i in indices]] * 2, dtype=np.int64)
    hasher.build_forest(matrix, hashes)
    stats = hasher.stats()
    assert stats["leaf_pool_entries"] == 4
    assert stats["leaf_pool_misses"] == 4
    assert stats["leaf_pool_hits"] == 2 * 4 - 4
    assert stats["distinct_internal_nodes"] == 3
