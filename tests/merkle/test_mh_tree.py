"""Tests for the generic Merkle hash tree (odd-node carry, proofs)."""

import pytest

from repro.crypto.hashing import HashFunction, sha256
from repro.merkle.mh_tree import MerkleTree, level_sizes
from repro.metrics.counters import Counters


def _leaves(count):
    return [sha256(bytes([i])) for i in range(count)]


def test_level_sizes():
    assert level_sizes(1) == [1]
    assert level_sizes(2) == [2, 1]
    assert level_sizes(5) == [5, 3, 2, 1]
    assert level_sizes(8) == [8, 4, 2, 1]


def test_level_sizes_rejects_zero():
    with pytest.raises(ValueError):
        level_sizes(0)


def test_empty_tree_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_single_leaf_is_its_own_root():
    leaves = _leaves(1)
    tree = MerkleTree(leaves)
    assert tree.root == leaves[0]
    assert tree.height == 1
    assert tree.node_count == 1


def test_two_leaves_root_is_combined_hash():
    leaves = _leaves(2)
    tree = MerkleTree(leaves)
    assert tree.root == HashFunction().combine(leaves[0], leaves[1])


def test_odd_carry_shape():
    """With 3 leaves the last leaf is carried, so root = H(H(l0|l1) | l2)."""
    leaves = _leaves(3)
    tree = MerkleTree(leaves)
    h = HashFunction()
    assert tree.root == h.combine(h.combine(leaves[0], leaves[1]), leaves[2])


def test_levels_follow_level_sizes():
    for count in (1, 2, 3, 5, 9, 16, 33):
        tree = MerkleTree(_leaves(count))
        assert [len(level) for level in tree.levels] == level_sizes(count)


def test_root_changes_when_any_leaf_changes():
    leaves = _leaves(9)
    baseline = MerkleTree(leaves).root
    for position in range(9):
        tampered = list(leaves)
        tampered[position] = sha256(b"tampered")
        assert MerkleTree(tampered).root != baseline


def test_root_changes_when_leaves_swap():
    leaves = _leaves(6)
    swapped = list(leaves)
    swapped[1], swapped[4] = swapped[4], swapped[1]
    assert MerkleTree(swapped).root != MerkleTree(leaves).root


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 7, 8, 13])
def test_membership_proofs_verify_for_every_leaf(count):
    leaves = _leaves(count)
    tree = MerkleTree(leaves)
    for index in range(count):
        proof = tree.membership_proof(index)
        assert MerkleTree.root_from_membership(leaves[index], proof) == tree.root


def test_membership_proof_rejects_wrong_leaf():
    leaves = _leaves(8)
    tree = MerkleTree(leaves)
    proof = tree.membership_proof(3)
    assert MerkleTree.root_from_membership(sha256(b"imposter"), proof) != tree.root


def test_membership_proof_out_of_range():
    tree = MerkleTree(_leaves(4))
    with pytest.raises(IndexError):
        tree.membership_proof(4)


@pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 13])
def test_range_proofs_verify_for_every_range(count):
    leaves = _leaves(count)
    tree = MerkleTree(leaves)
    for start in range(count):
        for end in range(start, count):
            proof = tree.range_proof(start, end)
            root = MerkleTree.root_from_range(leaves[start : end + 1], proof)
            assert root == tree.root


def test_range_proof_rejects_modified_leaf():
    leaves = _leaves(10)
    tree = MerkleTree(leaves)
    proof = tree.range_proof(2, 6)
    window = leaves[2:7]
    window[2] = sha256(b"forged")
    assert MerkleTree.root_from_range(window, proof) != tree.root


def test_range_proof_rejects_wrong_leaf_count():
    leaves = _leaves(10)
    tree = MerkleTree(leaves)
    proof = tree.range_proof(2, 6)
    with pytest.raises(ValueError):
        MerkleTree.root_from_range(leaves[2:6], proof)


def test_range_proof_out_of_bounds():
    tree = MerkleTree(_leaves(4))
    with pytest.raises(IndexError):
        tree.range_proof(2, 4)


def test_range_proof_node_count_is_logarithmic():
    leaves = _leaves(64)
    tree = MerkleTree(leaves)
    proof = tree.range_proof(30, 33)
    # Two boundary paths: far fewer hashes than the 60 off-range leaves.
    assert proof.node_count() <= 12


def test_hash_counter_is_used_during_build():
    counters = Counters()
    MerkleTree(_leaves(8), hash_function=HashFunction(counters))
    assert counters.hash_operations == 7  # 4 + 2 + 1 parent combinations
