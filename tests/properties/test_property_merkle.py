"""Property-based tests for the Merkle tree (hypothesis)."""

import hashlib

from hypothesis import given, settings, strategies as st

from repro.merkle.mh_tree import MerkleTree, level_sizes

leaf_sets = st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=40).map(
    lambda blobs: [hashlib.sha256(blob + bytes([i])).digest() for i, blob in enumerate(blobs)]
)


@given(leaves=leaf_sets)
@settings(max_examples=60, deadline=None)
def test_membership_proof_roundtrip(leaves):
    """Every leaf's membership proof reconstructs the root."""
    tree = MerkleTree(leaves)
    for index in range(len(leaves)):
        proof = tree.membership_proof(index)
        assert MerkleTree.root_from_membership(leaves[index], proof) == tree.root


@given(leaves=leaf_sets, data=st.data())
@settings(max_examples=80, deadline=None)
def test_range_proof_roundtrip(leaves, data):
    """Every contiguous range's proof reconstructs the root."""
    tree = MerkleTree(leaves)
    start = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    end = data.draw(st.integers(min_value=start, max_value=len(leaves) - 1))
    proof = tree.range_proof(start, end)
    assert MerkleTree.root_from_range(leaves[start : end + 1], proof) == tree.root


@given(leaves=leaf_sets, data=st.data())
@settings(max_examples=60, deadline=None)
def test_range_proof_rejects_any_single_leaf_substitution(leaves, data):
    """Substituting any in-range leaf changes the reconstructed root."""
    tree = MerkleTree(leaves)
    start = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    end = data.draw(st.integers(min_value=start, max_value=len(leaves) - 1))
    position = data.draw(st.integers(min_value=start, max_value=end))
    proof = tree.range_proof(start, end)
    window = list(leaves[start : end + 1])
    window[position - start] = hashlib.sha256(b"forged" + window[position - start]).digest()
    assert MerkleTree.root_from_range(window, proof) != tree.root


@given(leaves=leaf_sets)
@settings(max_examples=60, deadline=None)
def test_level_sizes_match_actual_levels(leaves):
    tree = MerkleTree(leaves)
    assert [len(level) for level in tree.levels] == level_sizes(len(leaves))
    assert len(tree.levels[-1]) == 1


@given(leaves=leaf_sets, data=st.data())
@settings(max_examples=40, deadline=None)
def test_swapping_two_leaves_changes_the_root(leaves, data):
    if len(leaves) < 2:
        return
    i = data.draw(st.integers(min_value=0, max_value=len(leaves) - 2))
    j = data.draw(st.integers(min_value=i + 1, max_value=len(leaves) - 1))
    if leaves[i] == leaves[j]:
        return
    swapped = list(leaves)
    swapped[i], swapped[j] = swapped[j], swapped[i]
    assert MerkleTree(swapped).root != MerkleTree(leaves).root
