"""The level-order batched engine must be observationally invisible.

These tests compare full IFMH builds with batching on vs off (both through
the shared-structure engine, PR 2's node-at-a-time path as the reference):
roots, per-subdomain FMH roots and levels, subdomain digests, verification
objects and client verdicts must be bit-identical, and *both* hash counters
-- logical (what Fig. 5a/7a report) and physical (what actually ran) --
must be equal: batching changes how the hashes are scheduled, not which
hashes exist.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.client import Client
from repro.core.owner import DataOwner
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.core.server import Server
from repro.crypto.hashing import HashFunction, sha256
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.merkle.arena import ArenaMerkleTree, ForestHasher
from repro.merkle.mh_tree import MerkleTree
from repro.metrics.counters import Counters
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template


def _build_pair(dataset, template, mode=ONE_SIGNATURE, **kwargs):
    """The same IFMH built node-at-a-time and through the batched engine."""
    trees, counters = {}, {}
    for batch_hashing in (False, True):
        counter = Counters()
        trees[batch_hashing] = IFMHTree(
            dataset,
            template,
            mode=mode,
            counters=counter,
            hash_consing=True,
            batch_hashing=batch_hashing,
            **kwargs,
        )
        counters[batch_hashing] = counter
    return trees, counters


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_roots_digests_levels_and_counters_identical(
    univariate_dataset, univariate_template, mode
):
    trees, counters = _build_pair(univariate_dataset, univariate_template, mode=mode)
    node, batched = trees[False], trees[True]
    assert batched.root_hash == node.root_hash
    for a, b in zip(batched.itree.leaves(), node.itree.leaves()):
        assert a.hash_value == b.hash_value
        assert a.fmh_tree.tree.levels == b.fmh_tree.tree.levels
    # Digest the subdomains only after snapshotting the build counters.
    assert counters[True].hash_operations == counters[False].hash_operations
    assert (
        counters[True].physical_hash_operations == counters[False].physical_hash_operations
    ), "batching must not change which hashes physically run"
    for a, b in zip(batched.itree.leaves(), node.itree.leaves()):
        assert batched.subdomain_digest(a) == node.subdomain_digest(b)
    assert batched.merkle_engine_stats == node.merkle_engine_stats


def test_incremental_builder_also_batches(univariate_dataset, univariate_template):
    """The batched path covers the paper's incremental I-tree too."""
    trees, counters = _build_pair(
        univariate_dataset, univariate_template, build_mode="incremental"
    )
    assert trees[True].root_hash == trees[False].root_hash
    assert counters[True].hash_operations == counters[False].hash_operations
    assert counters[True].physical_hash_operations == counters[False].physical_hash_operations


def test_multivariate_lp_path_also_batches(applicant_dataset, bivariate_template):
    """d >= 2 (LP engine, incremental insertion): still bit-identical."""
    trees, counters = _build_pair(applicant_dataset, bivariate_template)
    assert trees[True].root_hash == trees[False].root_hash
    assert counters[True].hash_operations == counters[False].hash_operations
    assert counters[True].physical_hash_operations == counters[False].physical_hash_operations


@pytest.mark.parametrize("scheme", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_vos_and_client_verdicts_identical_end_to_end(scheme):
    """Same queries against both builds: identical VOs, both verify."""
    workload = WorkloadConfig(n_records=25, dimension=1, seed=2)
    dataset, template = make_dataset(workload), make_template(workload)
    queries = [
        TopKQuery(weights=(0.4,), k=5),
        RangeQuery(weights=(0.6,), low=1.0, high=7.0),
        KNNQuery(weights=(0.2,), k=3, target=4.0),
    ]
    executions = {}
    for batch_hashing in (False, True):
        owner = DataOwner(
            dataset,
            template,
            scheme=scheme,
            signature_algorithm="hmac",
            hash_consing=True,
            batch_hashing=batch_hashing,
            rng=random.Random(17),
        )
        server = Server(owner.outsource())
        client = Client(owner.public_parameters())
        executions[batch_hashing] = []
        for query in queries:
            execution = server.execute(query)
            report = client.verify(query, execution.result, execution.verification_object)
            assert report.is_valid, report.failures
            executions[batch_hashing].append(execution)
    for node, batched in zip(executions[False], executions[True]):
        assert batched.result.records == node.result.records
        assert batched.verification_object == node.verification_object


@given(
    rows=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(
                lambda v: round(v, 2)
            ),
            st.floats(min_value=0.0, max_value=6.0, allow_nan=False).map(
                lambda v: round(v, 2)
            ),
        ),
        min_size=1,
        max_size=14,
    )
)
@settings(max_examples=25, deadline=None)
def test_property_batched_and_node_builds_agree(rows):
    """Adversarial leaf counts and tied slopes: batching stays invisible.

    The leaf counts ``len(rows) + 2`` sweep through every odd-carry shape
    from 3 to 16 leaves, and duplicate rows exercise equal-scoring records
    (distinct leaf digests -- the record id is part of the encoding -- but
    tied sort positions).
    """
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
    trees, counters = _build_pair(dataset, template)
    assert trees[True].root_hash == trees[False].root_hash
    for a, b in zip(trees[True].itree.leaves(), trees[False].itree.leaves()):
        assert a.hash_value == b.hash_value
        assert a.fmh_tree.tree.levels == b.fmh_tree.tree.levels
    assert counters[True].hash_operations == counters[False].hash_operations
    assert counters[True].physical_hash_operations == counters[False].physical_hash_operations


@given(
    leaf_count=st.integers(min_value=1, max_value=17),
    tree_count=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_forest_matches_per_tree_merkle_builds(leaf_count, tree_count, data):
    """Random permuted forests at every carry shape match MerkleTree."""
    payloads = [b"record-%d" % i for i in range(leaf_count)]
    rows = [
        data.draw(st.permutations(payloads), label=f"row-{t}") for t in range(tree_count)
    ]
    hashes = HashFunction()
    hasher = ForestHasher()
    indices = hasher.intern_leaves(payloads, hashes)
    index_of = {payload: int(index) for payload, index in zip(payloads, indices)}
    matrix = np.array([[index_of[p] for p in row] for row in rows], dtype=np.int64)
    roots = hasher.build_forest(matrix, hashes)
    arena = hasher.finalize()
    for row, root in zip(rows, roots.tolist()):
        plain = MerkleTree([sha256(p) for p in row])
        view = ArenaMerkleTree(arena, root, leaf_count)
        assert view.root == plain.root
        assert view.levels == plain.levels


@pytest.mark.slow
def test_thousand_record_end_to_end_smoke():
    """n = 1000: batched construction, query processing and verification.

    The full node-at-a-time comparison at this scale lives in
    ``python -m repro.bench --scale``; this smoke proves the batched ADS
    itself serves verifiable queries at thousand-record scale.
    """
    workload = WorkloadConfig(n_records=1000, dimension=1, seed=0)
    dataset, template = make_dataset(workload), make_template(workload)
    owner = DataOwner(
        dataset,
        template,
        scheme=ONE_SIGNATURE,
        signature_algorithm="hmac",
        rng=random.Random(3),
    )
    assert owner.ads.batch_hashing
    server = Server(owner.outsource())
    client = Client(owner.public_parameters())
    queries = [
        TopKQuery(weights=(0.31,), k=10),
        RangeQuery(weights=(0.62,), low=2.0, high=2.2),
        KNNQuery(weights=(0.93,), k=5, target=5.0),
    ]
    for query in queries:
        execution = server.execute(query)
        report = client.verify(query, execution.result, execution.verification_object)
        assert report.is_valid, report.failures
    assert owner.ads.subdomain_count > 100_000