"""Property-based tests: window selectors agree with brute-force references."""

from hypothesis import given, settings, strategies as st

from repro.queryproc.knn import knn_window
from repro.queryproc.range_query import range_window
from repro.queryproc.topk import topk_window

sorted_scores = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=50,
).map(sorted)


@given(scores=sorted_scores, k=st.integers(min_value=1, max_value=60))
@settings(max_examples=100, deadline=None)
def test_topk_is_suffix_of_length_min_k_n(scores, k):
    window = topk_window(scores, k)
    expected_length = min(k, len(scores))
    assert window.length == expected_length
    if expected_length:
        assert window.end == len(scores) - 1
        assert window.start == len(scores) - expected_length


@given(scores=sorted_scores, data=st.data())
@settings(max_examples=100, deadline=None)
def test_range_window_matches_filter(scores, data):
    low = data.draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    high = data.draw(st.floats(min_value=low, max_value=1e6, allow_nan=False))
    window = range_window(scores, low, high)
    expected = [i for i, score in enumerate(scores) if low <= score <= high]
    assert list(window.indices()) == expected


@given(scores=sorted_scores, data=st.data())
@settings(max_examples=100, deadline=None)
def test_knn_window_is_optimal(scores, data):
    if not scores:
        return
    k = data.draw(st.integers(min_value=1, max_value=len(scores)))
    target = data.draw(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    window = knn_window(scores, k, target)
    assert window.length == k
    chosen = [scores[i] for i in window.indices()]
    # The multiset of distances must equal the k smallest distances overall.
    chosen_distances = sorted(abs(score - target) for score in chosen)
    best_distances = sorted(abs(score - target) for score in scores)[:k]
    assert chosen_distances == best_distances


@given(scores=sorted_scores, data=st.data())
@settings(max_examples=60, deadline=None)
def test_knn_window_is_contiguous(scores, data):
    if not scores:
        return
    k = data.draw(st.integers(min_value=1, max_value=len(scores)))
    target = data.draw(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    window = knn_window(scores, k, target)
    indices = list(window.indices())
    assert indices == list(range(indices[0], indices[-1] + 1))
