"""Property tests: the bulk-built IFMH-tree is bit-identical to the reference.

Two properties back the bulk fast path:

* the *partition* (interval bounds and per-subdomain sorted record order) is
  identical to the paper's incremental insertion in its default pairwise
  order, and
* the assembled tree -- and therefore the IFMH **root hash** and every
  multi-signature subdomain digest -- is bit-identical to what the
  incremental BFS builder produces when fed the same hyperplanes in the
  bulk path's balanced (median-first) order.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.records import Dataset, UtilityTemplate
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE

DOMAIN = Domain(lower=(0.0,), upper=(1.0,))

datasets = st.lists(
    st.tuples(
        st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    ),
    min_size=1,
    max_size=14,
).map(lambda rows: Dataset.from_rows(("factor", "baseline"), rows))

TEMPLATE = UtilityTemplate(
    attributes=("factor",), domain=DOMAIN, constant_attribute="baseline"
)


@given(dataset=datasets)
@settings(max_examples=30, deadline=None)
def test_bulk_root_hash_bit_identical_to_incremental_reference(dataset):
    bulk = IFMHTree(dataset, TEMPLATE, build_mode="bulk")
    reference = IFMHTree(dataset, TEMPLATE, build_mode="balanced-incremental")
    assert bulk.root_hash == reference.root_hash


@given(dataset=datasets)
@settings(max_examples=30, deadline=None)
def test_bulk_partition_matches_default_incremental(dataset):
    bulk = IFMHTree(dataset, TEMPLATE, build_mode="bulk")
    incremental = IFMHTree(dataset, TEMPLATE, build_mode="incremental")

    def partition(tree):
        return sorted(
            (
                leaf.region.interval_low,
                leaf.region.interval_high,
                tuple(f.index for f in leaf.sorted_functions),
            )
            for leaf in tree.itree.leaves()
        )

    assert partition(bulk) == partition(incremental)


@given(dataset=datasets)
@settings(max_examples=15, deadline=None)
def test_bulk_multi_signature_digests_bit_identical(dataset):
    bulk = IFMHTree(dataset, TEMPLATE, mode=MULTI_SIGNATURE, build_mode="bulk")
    reference = IFMHTree(
        dataset, TEMPLATE, mode=MULTI_SIGNATURE, build_mode="balanced-incremental"
    )
    bulk_digests = sorted(bulk.subdomain_digest(leaf) for leaf in bulk.itree.leaves())
    ref_digests = sorted(
        reference.subdomain_digest(leaf) for leaf in reference.itree.leaves()
    )
    assert bulk_digests == ref_digests


def test_bulk_root_hash_on_randomized_datasets():
    """Non-hypothesis sweep at larger scales (seeded, deterministic)."""
    for seed, n_records in ((0, 30), (1, 50), (2, 75)):
        rng = random.Random(seed)
        rows = [(rng.uniform(-4, 4), rng.uniform(0, 9)) for _ in range(n_records)]
        dataset = Dataset.from_rows(("factor", "baseline"), rows)
        bulk = IFMHTree(dataset, TEMPLATE, build_mode="bulk")
        reference = IFMHTree(dataset, TEMPLATE, build_mode="balanced-incremental")
        assert bulk.root_hash == reference.root_hash
        incremental = IFMHTree(dataset, TEMPLATE, build_mode="incremental")
        assert bulk.subdomain_count == incremental.subdomain_count
