"""Publish -> load must be observationally invisible.

Property test for the versioned ADS artifact (:mod:`repro.core.artifact`):
for adversarial datasets -- every odd-carry FMH leaf shape from 3 to 16
leaves, duplicate rows, tied slopes -- a server and client cold-started
from the published file must reproduce the in-process build bit for bit:
roots, per-subdomain digests, verification objects, verdicts, and both
hash counters (logical and physical), with zero ADS hashing on load.
"""

import io
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.artifact import load_artifact, save_artifact_bytes
from repro.core.client import Client
from repro.core.config import SCHEMES, SystemConfig
from repro.core.owner import DataOwner
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.core.server import Server
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE

from tests.helpers import assert_queries_bit_identical

_ROWS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(
            lambda v: round(v, 2)
        ),
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False).map(
            lambda v: round(v, 2)
        ),
    ),
    min_size=1,
    max_size=14,
)


def _system(rows, scheme):
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
    owner = DataOwner(
        dataset,
        template,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac"),
        rng=random.Random(11),
    )
    return owner, Server(owner.outsource()), Client(owner.public_parameters())


def _queries(count):
    return [
        TopKQuery(weights=(0.41,), k=min(3, count)),
        RangeQuery(weights=(0.73,), low=0.5, high=7.5),
        KNNQuery(weights=(0.27,), k=min(2, count), target=3.0),
        RangeQuery(weights=(0.5,), low=90.0, high=95.0),  # empty window
    ]


@given(rows=_ROWS, scheme=st.sampled_from(SCHEMES))
@settings(max_examples=30, deadline=None)
def test_property_round_trip_is_bit_identical(rows, scheme):
    """Leaf counts ``len(rows) + 2`` sweep every odd-carry shape 3..16."""
    owner, warm_server, warm_client = _system(rows, scheme)
    loaded = load_artifact(io.BytesIO(save_artifact_bytes(owner)))
    assert loaded.ads.counters.hash_operations == 0
    assert loaded.ads.counters.physical_hash_operations == 0
    cold_server = Server(loaded.package)
    cold_client = Client(loaded.public_parameters)

    if scheme in (ONE_SIGNATURE, MULTI_SIGNATURE):
        assert loaded.ads.root_hash == owner.ads.root_hash
        for warm_leaf, cold_leaf in zip(
            owner.ads.itree.leaves(), loaded.ads.itree.leaves()
        ):
            assert cold_leaf.hash_value == warm_leaf.hash_value
        if scheme == MULTI_SIGNATURE:
            for warm_leaf, cold_leaf in zip(
                owner.ads.itree.leaves(), loaded.ads.itree.leaves()
            ):
                assert loaded.ads.subdomain_digest(cold_leaf) == owner.ads.subdomain_digest(
                    warm_leaf
                )

    assert_queries_bit_identical(
        (warm_server, warm_client),
        (cold_server, cold_client),
        _queries(len(rows)),
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_single_record_every_scheme_round_trips(scheme):
    owner, warm_server, _ = _system([(2.0, 1.0)], scheme)
    loaded = load_artifact(io.BytesIO(save_artifact_bytes(owner)))
    cold_server = Server(loaded.package)
    query = TopKQuery(weights=(0.5,), k=1)
    assert cold_server.execute(query).verification_object == warm_server.execute(
        query
    ).verification_object
