"""Incremental updates must be observationally invisible.

The differential property harness for the update subsystem
(:mod:`repro.ifmh.updates` behind
:meth:`repro.core.owner.DataOwner.apply_updates`): after **any** sequence
of single-record inserts and deletes, the live ADS must be bit-identical
to a from-scratch build of the final dataset at the same epoch -- roots,
per-subdomain hashes and signatures, verification objects, verdicts and
both hash counters of every query round trip.  The oracle is shared with
the artifact suite (:mod:`tests.helpers`).

Coverage: Hypothesis-generated datasets (duplicate rows, tied slopes,
adversarial two-decimal values) and update sequences across all three
schemes; every odd-carry FMH leaf shape from 3 to 17 leaves; the d >= 2
LP configuration (which exercises the documented full-rebuild fallback
through the same API); and a slow-marked thousand-record end-to-end smoke.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SCHEMES, SystemConfig
from repro.core.owner import DataOwner
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.geometry.domain import Domain

from tests.helpers import assert_matches_fresh_rebuild

_VALUE = st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(
    lambda v: round(v, 2)
)
_ROWS = st.lists(st.tuples(_VALUE, _VALUE), min_size=1, max_size=10)

#: One update step: insert a fresh record (values) or delete (index key).
_STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _VALUE, _VALUE),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=10**6)),
    ),
    min_size=1,
    max_size=4,
)

_TEMPLATE = UtilityTemplate(
    attributes=("factor",),
    domain=Domain(lower=(0.0,), upper=(1.0,)),
    constant_attribute="baseline",
)


def _queries(count):
    return [
        TopKQuery(weights=(0.41,), k=min(3, count)),
        RangeQuery(weights=(0.73,), low=0.5, high=9.5),
        KNNQuery(weights=(0.27,), k=min(2, count), target=3.0),
        RangeQuery(weights=(0.5,), low=90.0, high=95.0),  # empty window
    ]


def _owner(rows, scheme):
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    return DataOwner(
        dataset,
        _TEMPLATE,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac"),
        rng=random.Random(11),
    )


@given(rows=_ROWS, steps=_STEPS, scheme=st.sampled_from(SCHEMES))
@settings(max_examples=25, deadline=None)
def test_property_update_sequences_match_fresh_rebuild(rows, steps, scheme):
    """Random insert/delete sequences == from-scratch builds, bit for bit."""
    owner = _owner(rows, scheme)
    next_id = len(rows)
    applied = 0
    for step in steps:
        if step[0] == "insert":
            owner.insert(Record(record_id=next_id, values=(step[1], step[2])))
            next_id += 1
        else:
            ids = sorted(record.record_id for record in owner.dataset.records)
            if len(ids) <= 1:
                continue  # deleting the last record is a documented error
            owner.delete(ids[step[1] % len(ids)])
        applied += 1
    assert owner.epoch == applied
    assert_matches_fresh_rebuild(owner, _queries(len(owner.dataset)))


@pytest.mark.parametrize("size", range(1, 16))
@pytest.mark.parametrize("scheme", ["one-signature", "multi-signature"])
def test_every_odd_carry_leaf_shape_updates_cleanly(size, scheme):
    """Leaf shapes ``size + 2`` = 3..17 before, 4..18 after the insert.

    Together with the delete step this walks every odd-carry FMH shape the
    forest can take at these scales, on the exact boundary the batched
    level-order hashing carries odd nodes.
    """
    rng = random.Random(size)
    rows = [
        (round(rng.uniform(0.0, 8.0), 2), round(rng.uniform(0.0, 6.0), 2))
        for _ in range(size)
    ]
    owner = _owner(rows, scheme)
    owner.insert(Record(record_id=size, values=(3.14, 2.71)))
    assert_matches_fresh_rebuild(owner, _queries(len(owner.dataset)))
    owner.delete(size // 2)
    assert_matches_fresh_rebuild(owner, _queries(len(owner.dataset)))


def test_tolerance_cluster_boundary_uses_replay_float_predicates():
    """Regression: ``b - a > tol`` is not float-equivalent to the replay's
    ``a + tol < b``.  With tolerance 0.1, fl(1.1) - fl(1.0) > 0.1 yet
    fl(1.0 + 0.1) == fl(1.1): the inserted breakpoint at 1.1 must be
    dropped exactly like a fresh build drops it, not kept as an
    "independent" singleton."""
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(2.0,)),
        constant_attribute="baseline",
    )
    records = [
        Record(record_id=0, values=(1.0, 0.0)),
        Record(record_id=1, values=(-1.0, 2.0)),
    ]
    config = SystemConfig(
        scheme="one-signature", signature_algorithm="hmac", tolerance=0.1
    )
    owner = DataOwner(
        Dataset(("factor", "baseline"), list(records)),
        template,
        config=config,
        rng=random.Random(1),
    )
    report = owner.insert(Record(record_id=2, values=(0.0, 1.1)))
    assert report.strategy == "incremental"
    fresh = DataOwner(
        owner.dataset, template, config=config, keypair=owner.keypair, epoch=1
    )
    assert owner.ads.subdomain_count == fresh.ads.subdomain_count
    assert owner.ads.root_hash == fresh.ads.root_hash


@given(
    rows=st.lists(
        st.tuples(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False).map(
                lambda v: round(v, 1)
            ),
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False).map(
                lambda v: round(v, 1)
            ),
        ),
        min_size=1,
        max_size=6,
    ),
    steps=_STEPS,
    tolerance=st.sampled_from([0.0, 0.05, 0.1, 0.25]),
)
@settings(max_examples=25, deadline=None)
def test_property_coarse_tolerance_updates_match_fresh_rebuild(rows, steps, tolerance):
    """Coarse tolerances make tolerance clusters (and their float-predicate
    edge cases) the norm rather than the exception."""
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(2.0,)),
        constant_attribute="baseline",
    )
    config = SystemConfig(
        scheme="one-signature", signature_algorithm="hmac", tolerance=tolerance
    )
    owner = DataOwner(
        Dataset.from_rows(("factor", "baseline"), rows),
        template,
        config=config,
        rng=random.Random(11),
    )
    next_id = len(rows)
    for step in steps:
        if step[0] == "insert":
            owner.insert(
                Record(record_id=next_id, values=(round(step[1] - 4.0, 1), step[2]))
            )
            next_id += 1
        else:
            ids = sorted(record.record_id for record in owner.dataset.records)
            if len(ids) <= 1:
                continue
            owner.delete(ids[step[1] % len(ids)])
    # require_valid=False: a 0.25 tolerance legitimately merges subdomains
    # whose records genuinely cross, so the scheme rejects some honest
    # answers -- identically on both sides, which is what matters here.
    assert_matches_fresh_rebuild(
        owner, _queries(len(owner.dataset)), require_valid=False
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_multivariate_updates_fall_back_to_rebuild(scheme):
    """d >= 2 runs the LP engine: updates rebuild, same API, same oracle."""
    rng = random.Random(5)
    rows = [
        tuple(round(rng.uniform(0.0, 5.0), 2) for _ in range(2)) for _ in range(4)
    ]
    dataset = Dataset.from_rows(("gpa", "award"), rows)
    template = UtilityTemplate(attributes=("gpa", "award"), domain=Domain.unit_box(2))
    owner = DataOwner(
        dataset,
        template,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac"),
        rng=random.Random(2),
    )
    report = owner.insert(Record(record_id=4, values=(1.5, 2.5)))
    assert report.strategy == "rebuild"
    report = owner.delete(1)
    assert report.strategy == "rebuild"
    fresh = DataOwner(
        owner.dataset,
        template,
        config=owner.config,
        keypair=owner.keypair,
        epoch=owner.epoch,
    )
    assert fresh.ads.signature_count == owner.ads.signature_count
    if scheme != "signature-mesh":
        assert fresh.ads.root_hash == owner.ads.root_hash
    queries = [TopKQuery(weights=(0.4, 0.3), k=2)]
    from tests.helpers import assert_queries_bit_identical
    from repro.core.client import Client
    from repro.core.server import Server

    assert_queries_bit_identical(
        (Server(fresh.outsource()), Client(fresh.public_parameters())),
        (Server(owner.outsource()), Client(owner.public_parameters())),
        queries,
    )


def test_update_sequence_through_published_artifacts(tmp_path):
    """Load -> update -> publish -> load chains stay bit-identical."""
    rng = random.Random(17)
    rows = [
        (round(rng.uniform(0.0, 8.0), 2), round(rng.uniform(0.0, 6.0), 2))
        for _ in range(9)
    ]
    owner = _owner(rows, "one-signature")
    base = tmp_path / "epoch0.npz"
    owner.publish(base)
    restarted = DataOwner.from_artifact(base, keypair=owner.keypair)
    restarted.insert(Record(record_id=9, values=(4.5, 1.25)))
    restarted.delete(3)
    assert restarted.epoch == 2
    assert_matches_fresh_rebuild(restarted, _queries(len(restarted.dataset)))


@pytest.mark.slow
def test_thousand_record_update_smoke():
    """n = 1000: one insert and one delete against the persisted arena.

    The full timing gate lives in ``python -m repro.bench --update``; this
    smoke proves the changed-path rebuild itself is exact at paper scale.
    """
    from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

    workload = WorkloadConfig(n_records=1000, dimension=1, seed=0)
    dataset, template = make_dataset(workload), make_template(workload)
    owner = DataOwner(
        dataset,
        template,
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        rng=random.Random(3),
    )
    rng = random.Random(4)
    report = owner.insert(
        Record(record_id=1000, values=(rng.uniform(0, 10), rng.uniform(0, 10)))
    )
    assert report.strategy == "incremental"
    report = owner.delete(123)
    assert report.strategy == "incremental"
    fresh = DataOwner(
        owner.dataset, template, config=owner.config, keypair=owner.keypair, epoch=2
    )
    assert fresh.ads.root_hash == owner.ads.root_hash
    assert fresh.ads.root_signature == owner.ads.root_signature
    from repro.core.client import Client
    from repro.core.server import Server
    from tests.helpers import assert_queries_bit_identical

    queries = [
        TopKQuery(weights=(0.31,), k=10),
        RangeQuery(weights=(0.62,), low=2.0, high=2.2),
        KNNQuery(weights=(0.93,), k=5, target=5.0),
    ]
    assert_queries_bit_identical(
        (Server(fresh.outsource()), Client(fresh.public_parameters())),
        (Server(owner.outsource()), Client(owner.public_parameters())),
        queries,
    )
    assert owner.ads.subdomain_count > 100_000
