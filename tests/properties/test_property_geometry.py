"""Property-based tests for the arrangement and I-tree (function sortability)."""

from hypothesis import given, settings, strategies as st

from repro.geometry.arrangement import build_arrangement
from repro.geometry.domain import Domain
from repro.geometry.functions import LinearFunction
from repro.itree.itree import ITree

function_sets = st.lists(
    st.tuples(
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
        st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
).map(
    lambda pairs: [
        LinearFunction(index=i, coefficients=(slope,), constant=intercept)
        for i, (slope, intercept) in enumerate(pairs)
    ]
)

DOMAIN = Domain(lower=(0.0,), upper=(1.0,))


@given(functions=function_sets)
@settings(max_examples=40, deadline=None)
def test_cells_tile_the_domain(functions):
    arrangement = build_arrangement(functions, DOMAIN)
    previous = DOMAIN.lower[0]
    for cell in arrangement.subdomains:
        assert abs(cell.region.interval_low - previous) < 1e-9
        previous = cell.region.interval_high
    assert abs(previous - DOMAIN.upper[0]) < 1e-9


@given(functions=function_sets, data=st.data())
@settings(max_examples=40, deadline=None)
def test_function_sortability_inside_each_cell(functions, data):
    """The sorted order fixed at the witness holds throughout the cell."""
    arrangement = build_arrangement(functions, DOMAIN)
    for cell in arrangement.subdomains:
        x = data.draw(
            st.floats(
                min_value=cell.region.interval_low,
                max_value=cell.region.interval_high,
                allow_nan=False,
            )
        )
        scores = [f.evaluate((x,)) for f in cell.sorted_functions]
        assert all(a <= b + 1e-7 for a, b in zip(scores, scores[1:]))


@given(functions=function_sets, data=st.data())
@settings(max_examples=40, deadline=None)
def test_itree_search_agrees_with_linear_scan(functions, data):
    arrangement = build_arrangement(functions, DOMAIN)
    tree = ITree(functions, DOMAIN)
    assert tree.subdomain_count == arrangement.size
    x = data.draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    trace = tree.search((x,))
    cell = arrangement.locate((x,))
    assert [f.index for f in trace.leaf.sorted_functions] == cell.sorted_indices()


@given(functions=function_sets)
@settings(max_examples=30, deadline=None)
def test_itree_is_a_proper_binary_tree(functions):
    tree = ITree(functions, DOMAIN)
    internal = sum(1 for _ in tree.internal_nodes())
    assert tree.subdomain_count == internal + 1
    for node in tree.internal_nodes():
        assert node.above is not None and node.below is not None
