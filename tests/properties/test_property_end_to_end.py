"""Property-based end-to-end tests: honest answers always verify, across schemes."""

from hypothesis import given, settings, strategies as st

from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.geometry.domain import Domain

TEMPLATE = UtilityTemplate(
    attributes=("factor",),
    domain=Domain(lower=(0.0,), upper=(1.0,)),
    constant_attribute="baseline",
)

datasets = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
).map(lambda rows: Dataset.from_rows(("factor", "baseline"), rows))

weights = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


def _systems(dataset):
    return [
        OutsourcedSystem.setup(dataset, TEMPLATE, scheme=scheme, signature_algorithm="hmac")
        for scheme in ("one-signature", "multi-signature", "signature-mesh")
    ]


@given(dataset=datasets, x=weights, k=st.integers(min_value=1, max_value=12))
@settings(max_examples=25, deadline=None)
def test_topk_results_verify_and_agree(dataset, x, k):
    query = TopKQuery(weights=(x,), k=k)
    reference = None
    for system in _systems(dataset):
        execution, report = system.query_and_verify(query)
        assert report.is_valid, (system.scheme, report.failures)
        ids = execution.result.record_ids()
        assert len(ids) == min(k, len(dataset))
        if reference is None:
            reference = ids
        else:
            assert ids == reference


@given(dataset=datasets, x=weights, data=st.data())
@settings(max_examples=25, deadline=None)
def test_range_results_verify_and_match_filter(dataset, x, data):
    low = data.draw(st.floats(min_value=-1.0, max_value=9.0, allow_nan=False))
    high = data.draw(st.floats(min_value=low, max_value=9.0, allow_nan=False))
    query = RangeQuery(weights=(x,), low=low, high=high)
    expected = sorted(
        record.record_id
        for record in dataset
        if low <= TEMPLATE.function_from_schema(record, dataset.attribute_names).evaluate((x,)) <= high
    )
    for system in _systems(dataset):
        execution, report = system.query_and_verify(query)
        assert report.is_valid, (system.scheme, report.failures)
        assert sorted(execution.result.record_ids()) == expected


@given(dataset=datasets, x=weights, data=st.data())
@settings(max_examples=25, deadline=None)
def test_knn_results_verify_and_are_nearest(dataset, x, data):
    k = data.draw(st.integers(min_value=1, max_value=len(dataset)))
    target = data.draw(st.floats(min_value=-2.0, max_value=12.0, allow_nan=False))
    query = KNNQuery(weights=(x,), k=k, target=target)
    scores = {
        record.record_id: TEMPLATE.function_from_schema(
            record, dataset.attribute_names
        ).evaluate((x,))
        for record in dataset
    }
    best = sorted(sorted(abs(s - target) for s in scores.values())[:k])
    for system in _systems(dataset):
        execution, report = system.query_and_verify(query)
        assert report.is_valid, (system.scheme, report.failures)
        got = sorted(abs(scores[i] - target) for i in execution.result.record_ids())
        assert len(got) == k
        for got_distance, best_distance in zip(got, best):
            assert abs(got_distance - best_distance) < 1e-7
