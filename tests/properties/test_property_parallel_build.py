"""Parallel construction must be observationally invisible.

``construction_workers`` shards the IFMH forest build across forked
processes.  For adversarial datasets -- every odd-carry FMH leaf shape,
duplicate rows, tied slopes -- the parallel build must reproduce the
single-process build bit for bit: the full owner-side ADS state (root
hash, root signature, per-subdomain hashes and digests), every query's
result, verification object and verdict, and *both* hash counters --
logical (what the paper's figures report) and physical (what actually
ran; the workers' redundant shard-boundary hashing happens on throwaway
counters and is never reported).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.client import Client
from repro.core.owner import DataOwner
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.core.server import Server
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.merkle.parallel import fork_available

from tests.helpers import assert_ads_state_identical, assert_queries_bit_identical

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable on this platform"
)

_ROWS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(
            lambda v: round(v, 2)
        ),
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False).map(
            lambda v: round(v, 2)
        ),
    ),
    min_size=1,
    max_size=14,
)


def _system(rows, mode, workers):
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
    owner = DataOwner(
        dataset,
        template,
        scheme=mode,
        signature_algorithm="hmac",
        hash_consing=True,
        batch_hashing=True,
        construction_workers=workers,
        rng=random.Random(11),
    )
    return owner, Server(owner.outsource()), Client(owner.public_parameters())


def _queries(count):
    return [
        TopKQuery(weights=(0.41,), k=min(3, count)),
        RangeQuery(weights=(0.73,), low=0.5, high=7.5),
        KNNQuery(weights=(0.27,), k=min(2, count), target=3.0),
        RangeQuery(weights=(0.5,), low=90.0, high=95.0),  # empty window
    ]


@given(
    rows=_ROWS,
    mode=st.sampled_from([ONE_SIGNATURE, MULTI_SIGNATURE]),
    workers=st.sampled_from([2, 4]),
)
@settings(max_examples=20, deadline=None)
def test_property_parallel_build_is_bit_identical(rows, mode, workers):
    """Leaf counts ``len(rows) + 2`` sweep every odd-carry shape 3..16."""
    serial_owner, serial_server, serial_client = _system(rows, mode, None)
    parallel_owner, parallel_server, parallel_client = _system(rows, mode, workers)

    assert_ads_state_identical(serial_owner.ads, parallel_owner.ads)
    assert parallel_owner.counters.snapshot() == serial_owner.counters.snapshot()
    assert (
        parallel_owner.ads.merkle_engine_stats == serial_owner.ads.merkle_engine_stats
    )
    assert_queries_bit_identical(
        (serial_server, serial_client),
        (parallel_server, parallel_client),
        _queries(len(rows)),
    )
