"""Tests for the canonical byte encodings."""


from repro.crypto.serialization import (
    encode_bytes,
    encode_float,
    encode_float_vector,
    encode_int,
    encode_sequence,
    encode_str,
)


def test_int_roundtrip_distinctness():
    values = [0, 1, -1, 255, 256, -256, 2**64, -(2**64), 10**30]
    encodings = {encode_int(v) for v in values}
    assert len(encodings) == len(values)


def test_int_encoding_is_deterministic():
    assert encode_int(42) == encode_int(42)


def test_float_encoding_is_exact():
    assert encode_float(0.1) == encode_float(0.1)
    assert encode_float(0.1) != encode_float(0.2)
    # Nearby but distinct doubles encode differently (bit-pattern encoding).
    assert encode_float(0.1) != encode_float(0.1 + 1e-16)


def test_float_distinguishes_signed_zero():
    assert encode_float(0.0) != encode_float(-0.0)


def test_float_handles_special_values():
    assert encode_float(float("inf")) != encode_float(float("-inf"))
    assert encode_float(float("nan")) == encode_float(float("nan"))


def test_str_and_bytes_tags_differ():
    assert encode_str("abc") != encode_bytes(b"abc")


def test_str_unicode_roundtrip_distinctness():
    assert encode_str("héllo") != encode_str("hello")


def test_vector_differs_from_individual_floats():
    assert encode_float_vector([1.0, 2.0]) != encode_sequence([encode_float(1.0), encode_float(2.0)])


def test_vector_order_matters():
    assert encode_float_vector([1.0, 2.0]) != encode_float_vector([2.0, 1.0])


def test_sequence_is_unambiguous():
    # [ab, c] vs [a, bc] must encode differently thanks to length prefixes.
    left = encode_sequence([encode_str("ab"), encode_str("c")])
    right = encode_sequence([encode_str("a"), encode_str("bc")])
    assert left != right


def test_sequence_nesting_changes_encoding():
    flat = encode_sequence([encode_int(1), encode_int(2)])
    nested = encode_sequence([encode_sequence([encode_int(1), encode_int(2)])])
    assert flat != nested


def test_empty_containers_are_valid():
    assert isinstance(encode_sequence([]), bytes)
    assert isinstance(encode_float_vector([]), bytes)
    assert encode_sequence([]) != encode_float_vector([])
