"""Tests for the counting SHA-256 wrapper."""

import hashlib

from repro.crypto.hashing import DIGEST_SIZE, HashFunction, sha256, sha256_hex
from repro.metrics.counters import Counters


def test_sha256_matches_hashlib():
    assert sha256(b"abc") == hashlib.sha256(b"abc").digest()


def test_sha256_hex_matches_hashlib():
    assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()


def test_digest_size_constant():
    assert DIGEST_SIZE == 32
    assert len(sha256(b"x")) == DIGEST_SIZE


def test_digest_is_deterministic():
    h = HashFunction()
    assert h.digest(b"payload") == h.digest(b"payload")


def test_digest_differs_for_different_inputs():
    h = HashFunction()
    assert h.digest(b"a") != h.digest(b"b")


def test_combine_is_order_sensitive():
    h = HashFunction()
    assert h.combine(b"a", b"b") != h.combine(b"b", b"a")


def test_combine_is_unambiguous_across_boundaries():
    """H(ab | c) must differ from H(a | bc) -- length prefixes prevent splicing."""
    h = HashFunction()
    assert h.combine(b"ab", b"c") != h.combine(b"a", b"bc")


def test_combine_single_part_differs_from_plain_digest():
    h = HashFunction()
    assert h.combine(b"abc") != h.digest(b"abc")


def test_digest_many_equals_combine():
    h = HashFunction()
    assert h.digest_many([b"x", b"y", b"z"]) == h.combine(b"x", b"y", b"z")


def test_call_count_increments():
    h = HashFunction()
    h.digest(b"one")
    h.combine(b"two", b"three")
    assert h.call_count == 2


def test_reset_clears_local_count():
    h = HashFunction()
    h.digest(b"x")
    h.reset()
    assert h.call_count == 0


def test_shared_counter_receives_hash_operations():
    counters = Counters()
    h = HashFunction(counters)
    h.digest(b"x")
    h.combine(b"a", b"b")
    assert counters.hash_operations == 2


def test_counter_not_required():
    h = HashFunction(None)
    assert isinstance(h.digest(b"x"), bytes)


def test_physical_count_tracks_real_invocations():
    counters = Counters()
    h = HashFunction(counters)
    h.digest(b"x")
    h.combine(b"a", b"b")
    assert h.physical_count == 2
    assert counters.physical_hash_operations == 2


def test_note_cached_is_logical_only():
    counters = Counters()
    h = HashFunction(counters)
    h.digest(b"x")
    h.note_cached()
    h.note_cached(3)
    assert h.call_count == 5
    assert h.physical_count == 1
    assert counters.hash_operations == 5
    assert counters.physical_hash_operations == 1


def test_reset_clears_physical_count():
    h = HashFunction()
    h.digest(b"x")
    h.note_cached()
    h.reset()
    assert h.call_count == 0
    assert h.physical_count == 0


def test_counter_without_physical_method_still_works():
    class HashOnly:
        def __init__(self):
            self.hashes = 0

        def add_hash(self, count: int = 1):
            self.hashes += count

    counter = HashOnly()
    h = HashFunction(counter)
    h.digest(b"x")
    h.note_cached()
    assert counter.hashes == 2
    assert h.physical_count == 1
