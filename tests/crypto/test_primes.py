"""Tests for the Miller-Rabin primality test and prime generation."""

import random

import pytest

from repro.crypto.primes import (
    SMALL_PRIMES,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 9, 561, 1105, 1729, 2465, 104730, (1 << 61) - 2]
# Carmichael numbers (561, 1105, 1729, 2465) are classic Fermat-test traps.


def test_small_primes_table_starts_correctly():
    assert SMALL_PRIMES[:5] == (2, 3, 5, 7, 11)
    assert all(p < 1000 for p in SMALL_PRIMES)


@pytest.mark.parametrize("value", KNOWN_PRIMES)
def test_known_primes_accepted(value):
    assert is_probable_prime(value)


@pytest.mark.parametrize("value", KNOWN_COMPOSITES)
def test_known_composites_rejected(value):
    assert not is_probable_prime(value)


def test_generate_prime_has_requested_bit_length():
    rng = random.Random(1)
    for bits in (8, 16, 32, 64, 128):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_bit_length():
    with pytest.raises(ValueError):
        generate_prime(4)


def test_generate_prime_is_odd():
    rng = random.Random(2)
    assert generate_prime(32, rng) % 2 == 1


def test_generate_prime_respects_congruence():
    rng = random.Random(3)
    q = generate_prime(16, rng)
    p = generate_prime(48, rng, congruent_to=(1, q))
    assert p % q == 1
    assert is_probable_prime(p)


def test_generate_prime_deterministic_with_seeded_rng():
    assert generate_prime(64, random.Random(42)) == generate_prime(64, random.Random(42))


def test_generate_safe_prime():
    rng = random.Random(4)
    p = generate_safe_prime(32, rng)
    assert is_probable_prime(p)
    assert is_probable_prime((p - 1) // 2)
    assert p.bit_length() == 32
