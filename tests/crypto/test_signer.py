"""Tests for the pluggable signature-scheme registry."""

import random

import pytest

from repro.crypto.signer import KeyPair, available_schemes, make_signer, register_scheme


def test_available_schemes_contains_builtins():
    schemes = available_schemes()
    assert {"rsa", "dsa", "hmac"} <= set(schemes)


@pytest.mark.parametrize("scheme,key_bits", [("rsa", 512), ("dsa", 512), ("hmac", None)])
def test_roundtrip_per_scheme(scheme, key_bits):
    pair = make_signer(scheme, rng=random.Random(1), key_bits=key_bits)
    assert isinstance(pair, KeyPair)
    assert pair.scheme == scheme
    message = b"scheme roundtrip"
    signature = pair.signer.sign(message)
    assert len(signature) == pair.signature_size
    assert pair.verifier.verify(message, signature)
    assert not pair.verifier.verify(message + b"!", signature)


def test_unknown_scheme_raises():
    with pytest.raises(ValueError, match="unknown signature scheme"):
        make_signer("ed25519")


def test_hmac_pairs_are_independent():
    a = make_signer("hmac", rng=random.Random(1))
    b = make_signer("hmac", rng=random.Random(2))
    signature = a.signer.sign(b"m")
    assert not b.verifier.verify(b"m", signature)


def test_rsa_and_dsa_signature_sizes_differ():
    rsa = make_signer("rsa", rng=random.Random(3), key_bits=512)
    dsa = make_signer("dsa", rng=random.Random(4), key_bits=512)
    assert rsa.signature_size != dsa.signature_size


def test_register_custom_scheme():
    def factory(rng=None, key_bits=None):
        return make_signer("hmac", rng=rng)

    register_scheme("null-test-scheme", factory, "test-only")
    try:
        assert "null-test-scheme" in available_schemes()
        pair = make_signer("null-test-scheme")
        assert pair.verifier.verify(b"m", pair.signer.sign(b"m"))
    finally:
        # Keep the global registry clean for other tests.
        from repro.crypto import signer as signer_module

        signer_module._REGISTRY.pop("null-test-scheme", None)


def test_signer_scheme_attribute_matches():
    pair = make_signer("hmac", rng=random.Random(5))
    assert pair.signer.scheme == "hmac"
    assert pair.verifier.scheme == "hmac"


def test_hmac_default_key_comes_from_os_entropy():
    # Without an injected rng the key must come from ``secrets`` -- two
    # fresh pairs therefore never share a key (cross-verification fails),
    # while each pair still roundtrips on its own.
    a = make_signer("hmac")
    b = make_signer("hmac")
    signature = a.signer.sign(b"msg")
    assert a.verifier.verify(b"msg", signature)
    assert not b.verifier.verify(b"msg", signature)


def test_hmac_seeded_rng_path_stays_deterministic():
    a = make_signer("hmac", rng=random.Random(42))
    b = make_signer("hmac", rng=random.Random(42))
    signature = a.signer.sign(b"msg")
    assert b.verifier.verify(b"msg", signature)
