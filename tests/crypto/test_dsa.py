"""Tests for the from-scratch DSA signatures."""

import random

import pytest

from repro.crypto.dsa import (
    DSAKeyPair,
    generate_dsa_keypair,
    generate_dsa_parameters,
)
from repro.crypto.primes import is_probable_prime


@pytest.fixture(scope="module")
def keypair() -> DSAKeyPair:
    return generate_dsa_keypair(p_bits=512, q_bits=160, rng=random.Random(321))


def test_parameter_sizes(keypair):
    params = keypair.public.parameters
    assert params.p_bits == 512
    assert params.q_bits in (159, 160)


def test_parameters_are_consistent(keypair):
    params = keypair.public.parameters
    assert is_probable_prime(params.p)
    assert is_probable_prime(params.q)
    assert (params.p - 1) % params.q == 0
    assert pow(params.g, params.q, params.p) == 1
    assert params.g > 1


def test_signature_size(keypair):
    q_len = (keypair.public.parameters.q.bit_length() + 7) // 8
    assert keypair.public.signature_size == 2 * q_len
    assert len(keypair.private.sign(b"m")) == keypair.public.signature_size


def test_sign_and_verify_roundtrip(keypair):
    message = b"analytic query verification"
    signature = keypair.private.sign(message)
    assert keypair.public.verify(message, signature)


def test_verify_rejects_different_message(keypair):
    signature = keypair.private.sign(b"one")
    assert not keypair.public.verify(b"two", signature)


def test_verify_rejects_bitflipped_signature(keypair):
    signature = keypair.private.sign(b"message")
    tampered = bytes([signature[0] ^ 0xFF]) + signature[1:]
    assert not keypair.public.verify(b"message", tampered)


def test_verify_rejects_wrong_length(keypair):
    signature = keypair.private.sign(b"message")
    assert not keypair.public.verify(b"message", signature + b"\x00")


def test_verify_rejects_zero_signature(keypair):
    q_len = (keypair.public.parameters.q.bit_length() + 7) // 8
    assert not keypair.public.verify(b"message", b"\x00" * (2 * q_len))


def test_signing_is_deterministic(keypair):
    assert keypair.private.sign(b"same") == keypair.private.sign(b"same")


def test_different_messages_use_different_nonces(keypair):
    q_len = (keypair.public.parameters.q.bit_length() + 7) // 8
    r1 = keypair.private.sign(b"message-1")[:q_len]
    r2 = keypair.private.sign(b"message-2")[:q_len]
    assert r1 != r2


def test_keypair_reuses_supplied_parameters():
    rng = random.Random(55)
    params = generate_dsa_parameters(p_bits=512, q_bits=160, rng=rng)
    pair = generate_dsa_keypair(parameters=params, rng=rng)
    assert pair.public.parameters == params
    signature = pair.private.sign(b"m")
    assert pair.public.verify(b"m", signature)


def test_cross_key_verification_fails(keypair):
    other = generate_dsa_keypair(p_bits=512, q_bits=160, rng=random.Random(777))
    signature = other.private.sign(b"m")
    assert not keypair.public.verify(b"m", signature)


def test_parameter_generation_validates_sizes():
    with pytest.raises(ValueError):
        generate_dsa_parameters(p_bits=128, q_bits=160)
    with pytest.raises(ValueError):
        generate_dsa_parameters(p_bits=512, q_bits=32)
