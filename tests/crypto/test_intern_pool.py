"""Tests for the leaf-digest intern pool."""

from dataclasses import dataclass

from repro.crypto.hashing import HashFunction, sha256
from repro.crypto.intern_pool import LeafDigestPool
from repro.merkle.fmh_tree import MAX_TOKEN, MIN_TOKEN
from repro.metrics.counters import Counters


@dataclass(frozen=True)
class Item:
    payload: bytes
    encodings: list = None

    def to_bytes(self) -> bytes:
        if self.encodings is not None:
            self.encodings.append(self.payload)
        return self.payload


def test_item_digest_matches_direct_hash():
    pool = LeafDigestPool()
    item = Item(b"record-bytes")
    assert pool.item_digest(item, HashFunction()) == sha256(b"record-bytes")


def test_item_encoded_and_hashed_once_per_object():
    encodings = []
    item = Item(b"payload", encodings)
    pool = LeafDigestPool()
    h = HashFunction()
    first = pool.item_digest(item, h)
    for _ in range(5):
        assert pool.item_digest(item, h) == first
    assert encodings == [b"payload"]  # to_bytes ran exactly once
    assert h.physical_count == 1
    assert h.call_count == 6  # every request is a logical operation
    assert pool.hits == 5 and pool.misses == 1


def test_distinct_objects_with_equal_bytes_get_equal_digests():
    pool = LeafDigestPool()
    h = HashFunction()
    a, b = Item(b"same"), Item(b"same")
    assert pool.item_digest(a, h) == pool.item_digest(b, h)
    assert h.physical_count == 2  # identity-keyed: each object encoded once


def test_token_digests_computed_exactly_once():
    pool = LeafDigestPool()
    counters = Counters()
    h = HashFunction(counters)
    for _ in range(4):
        assert pool.token_digest(MIN_TOKEN, h) == sha256(MIN_TOKEN)
        assert pool.token_digest(MAX_TOKEN, h) == sha256(MAX_TOKEN)
    assert counters.physical_hash_operations == 2
    assert counters.hash_operations == 8


def test_len_and_stats():
    pool = LeafDigestPool()
    h = HashFunction()
    pool.token_digest(MIN_TOKEN, h)
    pool.item_digest(Item(b"x"), h)
    pool.item_digest(Item(b"y"), h)
    assert len(pool) == 3
    assert pool.stats() == {"entries": 3, "hits": 0, "misses": 3}
