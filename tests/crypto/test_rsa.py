"""Tests for the from-scratch RSA signatures."""

import random

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair


@pytest.fixture(scope="module")
def keypair() -> RSAKeyPair:
    return generate_rsa_keypair(bits=512, rng=random.Random(123))


def test_keypair_modulus_size(keypair):
    assert 500 <= keypair.public.modulus_bits <= 512
    assert keypair.public.signature_size == (keypair.public.n.bit_length() + 7) // 8


def test_sign_and_verify_roundtrip(keypair):
    message = b"verify the correctness of analytic query results"
    signature = keypair.private.sign(message)
    assert keypair.public.verify(message, signature)


def test_verify_rejects_different_message(keypair):
    signature = keypair.private.sign(b"message one")
    assert not keypair.public.verify(b"message two", signature)


def test_verify_rejects_bitflipped_signature(keypair):
    signature = keypair.private.sign(b"message")
    tampered = bytes([signature[0] ^ 0x01]) + signature[1:]
    assert not keypair.public.verify(b"message", tampered)


def test_verify_rejects_wrong_length_signature(keypair):
    signature = keypair.private.sign(b"message")
    assert not keypair.public.verify(b"message", signature[:-1])


def test_verify_rejects_signature_from_other_key(keypair):
    other = generate_rsa_keypair(bits=512, rng=random.Random(999))
    signature = other.private.sign(b"message")
    assert not keypair.public.verify(b"message", signature)


def test_sign_digest_matches_sign(keypair):
    message = b"digest path"
    assert keypair.private.sign(message) == keypair.private.sign_digest(sha256(message))


def test_verify_digest_roundtrip(keypair):
    digest = sha256(b"digest roundtrip")
    signature = keypair.private.sign_digest(digest)
    assert keypair.public.verify_digest(digest, signature)
    assert not keypair.public.verify_digest(sha256(b"other"), signature)


def test_signature_is_deterministic(keypair):
    assert keypair.private.sign(b"same message") == keypair.private.sign(b"same message")


def test_keygen_is_deterministic_for_seed():
    a = generate_rsa_keypair(bits=512, rng=random.Random(5))
    b = generate_rsa_keypair(bits=512, rng=random.Random(5))
    assert a.public.n == b.public.n


def test_keygen_differs_for_different_seeds():
    a = generate_rsa_keypair(bits=512, rng=random.Random(6))
    b = generate_rsa_keypair(bits=512, rng=random.Random(7))
    assert a.public.n != b.public.n


def test_keygen_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        generate_rsa_keypair(bits=256)


def test_private_key_exposes_public(keypair):
    assert keypair.private.public_key() == keypair.public


def test_empty_message_signs(keypair):
    signature = keypair.private.sign(b"")
    assert keypair.public.verify(b"", signature)
