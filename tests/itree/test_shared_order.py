"""The shared 2-D permutation array behind every leaf's sorted order."""

import numpy as np
import pytest

from repro.itree.itree import ITree
from repro.itree.permutation import PermutedView, SharedFunctionOrder
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template


@pytest.fixture(params=["bulk", "incremental"])
def tree(request):
    workload = WorkloadConfig(n_records=12, dimension=1, seed=5)
    dataset = make_dataset(workload)
    template = make_template(workload)
    functions = template.functions_for(dataset)
    return ITree(functions, template.domain, builder=request.param)


def test_every_leaf_holds_a_view_into_the_shared_array(tree):
    shared = tree.shared_order
    assert shared is not None
    assert shared.leaf_count == tree.subdomain_count
    for leaf in tree.leaves():
        view = leaf.sorted_functions
        assert isinstance(view, PermutedView)
        assert view.base is shared.functions
        # The view borrows (not copies) its row of the shared array.
        assert view.row.base is shared.permutation
        np.testing.assert_array_equal(view.row, shared.permutation[view.row_index])


def test_views_behave_like_the_old_lists(tree):
    for leaf in tree.leaves():
        view = leaf.sorted_functions
        materialized = list(view)
        assert len(view) == len(materialized)
        assert [f.index for f in view] == [f.index for f in materialized]
        assert view[0] is materialized[0]
        assert view[-1] is materialized[-1]
        assert view[1:3] == materialized[1:3]


def test_each_row_is_a_permutation_sorted_at_the_witness(tree):
    shared = tree.shared_order
    n = shared.function_count
    for leaf in tree.leaves():
        row = leaf.sorted_functions.row
        assert sorted(row.tolist()) == list(range(n))
        scores = [f.evaluate(leaf.witness) for f in leaf.sorted_functions]
        assert scores == sorted(scores)


def test_coefficient_arrays_match_function_objects(tree):
    shared = tree.shared_order
    for position, function in enumerate(shared.functions):
        assert tuple(shared.coefficient_matrix[position]) == function.coefficients
        assert shared.constant_vector[position] == function.constant


def test_permuted_helper_validates_length(tree):
    shared = tree.shared_order
    with pytest.raises(ValueError, match="entries"):
        shared.permuted([object()], 0)


def test_shared_order_rejects_mismatched_shapes():
    workload = WorkloadConfig(n_records=4, dimension=1, seed=0)
    template = make_template(workload)
    functions = template.functions_for(make_dataset(workload))
    with pytest.raises(ValueError, match="does not cover"):
        SharedFunctionOrder(functions, np.zeros((2, 3), dtype=np.int32))


def test_counts_are_cached_and_correct(tree):
    walked_subdomains = sum(1 for _ in tree.leaves())
    walked_nodes = sum(1 for _ in tree.root.iter_subtree())
    assert tree.subdomain_count == walked_subdomains
    assert tree.node_count == walked_nodes
    assert tree._subdomain_count == walked_subdomains
    assert tree._node_count == walked_nodes


def test_bulk_and_incremental_orders_agree():
    workload = WorkloadConfig(n_records=10, dimension=1, seed=9)
    dataset = make_dataset(workload)
    template = make_template(workload)
    functions = template.functions_for(dataset)
    bulk = ITree(functions, template.domain, builder="bulk")
    incremental = ITree(functions, template.domain, builder="incremental")
    bulk_orders = sorted(
        tuple(f.index for f in leaf.sorted_functions) for leaf in bulk.leaves()
    )
    incremental_orders = sorted(
        tuple(f.index for f in leaf.sorted_functions) for leaf in incremental.leaves()
    )
    assert bulk_orders == incremental_orders