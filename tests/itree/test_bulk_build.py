"""Tests for the vectorized balanced bulk I-tree builder."""

import math
import random

import pytest

from repro.core.errors import ConstructionError
from repro.geometry.arrangement import build_arrangement, univariate_breakpoints
from repro.geometry.domain import Domain
from repro.geometry.engine import IntervalEngine, LPEngine
from repro.geometry.functions import LinearFunction
from repro.itree.itree import ITree, _median_first_order


def _univariate_functions(count, seed=0):
    rng = random.Random(seed)
    return [
        LinearFunction(index=i, coefficients=(rng.uniform(-3, 3),), constant=rng.uniform(0, 6))
        for i in range(count)
    ]


@pytest.fixture()
def domain():
    return Domain(lower=(0.0,), upper=(2.0,))


@pytest.fixture()
def functions():
    return _univariate_functions(10, seed=11)


def _partition(tree):
    return sorted(
        (
            leaf.region.interval_low,
            leaf.region.interval_high,
            tuple(f.index for f in leaf.sorted_functions),
        )
        for leaf in tree.leaves()
    )


def _structure(node):
    """Full structural fingerprint: hyperplanes, regions, leaf payloads."""
    if node.is_subdomain:
        return (
            "leaf",
            node.region.constraints,
            node.witness,
            tuple(f.index for f in node.sorted_functions),
        )
    return (
        (node.hyperplane, node.region.constraints),
        _structure(node.above),
        _structure(node.below),
    )


def test_bulk_matches_incremental_partition(functions, domain):
    incremental = ITree(functions, domain, builder="incremental")
    bulk = ITree(functions, domain, builder="bulk")
    assert _partition(incremental) == _partition(bulk)


def test_bulk_matches_arrangement(functions, domain):
    bulk = ITree(functions, domain, builder="bulk")
    arrangement = build_arrangement(functions, domain)
    assert bulk.subdomain_count == arrangement.size
    for leaf in bulk.leaves():
        cell = arrangement.locate(leaf.witness)
        assert [f.index for f in leaf.sorted_functions] == cell.sorted_indices()


def test_bulk_identical_to_balanced_incremental(functions, domain):
    """Direct assembly reproduces the BFS insertion fed the same order, bit for bit."""
    bulk = ITree(functions, domain, builder="bulk")
    reference = ITree(functions, domain, builder="balanced-incremental")
    assert _structure(bulk.root) == _structure(reference.root)


def test_bulk_tree_is_balanced(domain):
    functions = _univariate_functions(40, seed=3)
    bulk = ITree(functions, domain, builder="bulk")
    internal = sum(1 for _ in bulk.internal_nodes())
    if internal:
        assert bulk.height() <= math.ceil(math.log2(internal + 1)) + 1
    incremental = ITree(functions, domain, builder="incremental")
    assert bulk.height() <= incremental.height()


def test_bulk_search_agrees_with_incremental(functions, domain):
    incremental = ITree(functions, domain, builder="incremental")
    bulk = ITree(functions, domain, builder="bulk")
    rng = random.Random(5)
    for _ in range(50):
        weights = (rng.uniform(0.0, 2.0),)
        a = incremental.search(weights).leaf
        b = bulk.search(weights).leaf
        assert [f.index for f in a.sorted_functions] == [f.index for f in b.sorted_functions]


def test_bulk_classmethod_and_auto(functions, domain):
    assert ITree.bulk_build(functions, domain).builder == "bulk"
    assert ITree(functions, domain).builder == "bulk"  # auto resolves to bulk for d = 1
    assert ITree(functions, domain, builder="auto", engine=IntervalEngine()).builder == "bulk"


def test_auto_falls_back_to_incremental_for_lp_engine(functions, domain):
    tree = ITree(functions, domain, engine=LPEngine(), builder="auto")
    assert tree.builder == "incremental"


def test_bulk_rejected_for_multivariate():
    functions = [
        LinearFunction(index=0, coefficients=(1.0, 2.0)),
        LinearFunction(index=1, coefficients=(2.0, 1.0)),
    ]
    with pytest.raises(ConstructionError):
        ITree(functions, Domain.unit_box(2), builder="bulk")


def test_unknown_builder_rejected(functions, domain):
    with pytest.raises(ConstructionError):
        ITree(functions, domain, builder="bogus")


def test_bulk_single_function(domain):
    tree = ITree([LinearFunction(index=0, coefficients=(1.0,))], domain, builder="bulk")
    assert tree.subdomain_count == 1
    assert tree.root.is_subdomain
    assert [f.index for f in tree.root.sorted_functions] == [0]


def test_bulk_parallel_functions_never_split(domain):
    functions = [
        LinearFunction(index=i, coefficients=(1.0,), constant=float(2 * i)) for i in range(3)
    ]
    tree = ITree(functions, domain, builder="bulk")
    assert tree.subdomain_count == 1
    assert [f.index for f in tree.root.sorted_functions] == [0, 1, 2]


def test_bulk_leaf_ids_are_stable_range(functions, domain):
    bulk = ITree(functions, domain, builder="bulk")
    ids = [leaf.subdomain_id for leaf in bulk.leaves()]
    assert sorted(ids) == list(range(bulk.subdomain_count))


def test_bulk_insertion_checks_one_per_split(functions, domain):
    bulk = ITree(functions, domain, builder="bulk")
    internal = sum(1 for _ in bulk.internal_nodes())
    assert bulk.insertion_checks == internal


def test_univariate_breakpoints_match_pairwise_loop(functions):
    from repro.geometry.arrangement import pairwise_hyperplanes
    from repro.geometry.engine import IntervalEngine

    engine = IntervalEngine()
    expected = []
    for plane in pairwise_hyperplanes(functions):
        breakpoint = engine._breakpoint(plane)
        if breakpoint is not None:
            expected.append((plane.i, plane.j, breakpoint))
    breakpoints, left, right, _, _ = univariate_breakpoints(
        functions, slope_tolerance=engine.tolerance
    )
    indices = [f.index for f in functions]
    actual = [
        (indices[p], indices[q], b)
        for p, q, b in zip(left.tolist(), right.tolist(), breakpoints.tolist())
    ]
    assert actual == expected


def test_median_first_order_covers_all_indices():
    for count in (0, 1, 2, 7, 16):
        order = _median_first_order(count)
        assert sorted(order) == list(range(count))


def test_tolerance_chain_dedup_matches_incremental():
    """Near-duplicate breakpoints survive by insertion order, not sorted order.

    Three crossings a < b < c with b-a <= tol, c-b <= tol but c-a > tol,
    where the *middle* breakpoint's pair comes first in pairwise order: the
    incremental build keeps only b (a and c land within tolerance of the b
    boundary), and the bulk plan must replay that drop rule rather than the
    naive sorted left-to-right one (which would keep {a, c}).
    """
    tol = 0.6e-9  # gaps of 0.6e-9: adjacent pairs within the 1e-9 tolerance
    b = 0.5
    a = b - tol
    functions = [
        LinearFunction(index=0, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=1, coefficients=(-1.0,), constant=2 * b),  # x01 = b
        LinearFunction(index=2, coefficients=(0.0,), constant=a),  # x02 = a, x12 = 2b - a
    ]
    domain = Domain(lower=(0.0,), upper=(2.0,))
    incremental = ITree(functions, domain, builder="incremental")
    bulk = ITree(functions, domain, builder="bulk")
    assert incremental.subdomain_count == 2
    assert bulk.subdomain_count == incremental.subdomain_count
    assert _partition(incremental) == _partition(bulk)
