"""Tests for I-tree construction and search."""

import random

import pytest

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.geometry.arrangement import build_arrangement
from repro.geometry.domain import Domain
from repro.geometry.functions import LinearFunction
from repro.itree.itree import ITree
from repro.metrics.counters import Counters


def _univariate_functions(count, seed=0):
    rng = random.Random(seed)
    return [
        LinearFunction(index=i, coefficients=(rng.uniform(-3, 3),), constant=rng.uniform(0, 6))
        for i in range(count)
    ]


@pytest.fixture()
def domain():
    return Domain(lower=(0.0,), upper=(2.0,))


@pytest.fixture()
def functions():
    return _univariate_functions(8, seed=5)


@pytest.fixture()
def tree(functions, domain):
    return ITree(functions, domain)


def test_leaves_match_arrangement_cell_count(functions, domain, tree):
    arrangement = build_arrangement(functions, domain)
    assert tree.subdomain_count == arrangement.size


def test_every_leaf_order_matches_arrangement(functions, domain, tree):
    arrangement = build_arrangement(functions, domain)
    for leaf in tree.leaves():
        cell = arrangement.locate(leaf.witness)
        assert [f.index for f in leaf.sorted_functions] == cell.sorted_indices()


def test_leaves_have_witness_and_ids(tree):
    ids = set()
    for leaf in tree.leaves():
        assert leaf.witness is not None
        assert leaf.region.contains(leaf.witness)
        assert leaf.subdomain_id is not None
        ids.add(leaf.subdomain_id)
    assert ids == set(range(tree.subdomain_count))


def test_node_count_is_internal_plus_leaves(tree):
    internal = sum(1 for _ in tree.internal_nodes())
    assert tree.node_count == internal + tree.subdomain_count
    # A full binary tree has exactly one more leaf than internal node.
    assert tree.subdomain_count == internal + 1


def test_search_finds_containing_subdomain(functions, domain, tree):
    rng = random.Random(3)
    arrangement = build_arrangement(functions, domain)
    for _ in range(25):
        weights = (rng.uniform(0.0, 2.0),)
        trace = tree.search(weights)
        assert trace.leaf.region.contains(weights)
        cell = arrangement.locate(weights)
        assert [f.index for f in trace.leaf.sorted_functions] == cell.sorted_indices()


def test_search_trace_structure(tree):
    trace = tree.search((1.3,))
    assert trace.depth == len(trace.steps)
    assert trace.visited_nodes() == 2 * trace.depth + 1
    for step in trace.steps:
        assert step.node.is_intersection
        assert step.taken is not step.sibling
        assert {id(step.taken), id(step.sibling)} == {id(step.node.above), id(step.node.below)}


def test_search_counts_nodes(tree):
    counters = Counters()
    trace = tree.search((0.4,), counters=counters)
    assert counters.nodes_traversed == trace.visited_nodes()
    assert counters.comparisons == trace.depth


def test_search_outside_domain_rejected(tree):
    with pytest.raises(QueryProcessingError):
        tree.search((5.0,))


def test_locate_returns_leaf(tree):
    leaf = tree.locate((0.9,))
    assert leaf.is_subdomain


def test_height_bounds(tree):
    assert 1 <= tree.height() <= tree.subdomain_count


def test_insertion_checks_positive(tree):
    assert tree.insertion_checks > 0


def test_single_function_tree(domain):
    tree = ITree([LinearFunction(index=0, coefficients=(1.0,))], domain)
    assert tree.subdomain_count == 1
    assert tree.height() == 0
    assert tree.root.is_subdomain


def test_parallel_functions_never_split(domain):
    functions = [
        LinearFunction(index=0, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=1, coefficients=(1.0,), constant=2.0),
        LinearFunction(index=2, coefficients=(1.0,), constant=4.0),
    ]
    tree = ITree(functions, domain)
    assert tree.subdomain_count == 1
    assert [f.index for f in tree.root.sorted_functions] == [0, 1, 2]


@pytest.mark.parametrize("builder", ["bulk", "incremental"])
def test_duplicate_function_index_rejected(domain, builder):
    """Two functions sharing an ``index`` would corrupt the shared sorted
    order (the permutation stores positions keyed on it); the build must
    refuse and name the duplicate."""
    functions = _univariate_functions(4, seed=5)
    clash = LinearFunction(index=2, coefficients=(1.5,), constant=0.25)
    with pytest.raises(ConstructionError, match="duplicate function index 2"):
        ITree(functions + [clash], domain, builder=builder)


def test_empty_function_set_rejected(domain):
    with pytest.raises(ConstructionError):
        ITree([], domain)


def test_dimension_mismatch_rejected(domain):
    functions = [LinearFunction(index=0, coefficients=(1.0, 2.0))]
    with pytest.raises(ConstructionError):
        ITree(functions, domain)


def test_mixed_dimension_functions_rejected(domain):
    functions = [
        LinearFunction(index=0, coefficients=(1.0,)),
        LinearFunction(index=1, coefficients=(1.0, 2.0)),
    ]
    with pytest.raises(ConstructionError):
        ITree(functions, domain)


def test_bivariate_tree_matches_arrangement():
    rng = random.Random(9)
    functions = [
        LinearFunction(index=i, coefficients=(rng.uniform(0, 3), rng.uniform(0, 3)),
                       constant=rng.uniform(0, 1))
        for i in range(5)
    ]
    domain = Domain.unit_box(2)
    tree = ITree(functions, domain)
    arrangement = build_arrangement(functions, domain)
    assert tree.subdomain_count == arrangement.size
    weights = (0.35, 0.65)
    trace = tree.search(weights)
    assert [f.index for f in trace.leaf.sorted_functions] == arrangement.locate(weights).sorted_indices()
