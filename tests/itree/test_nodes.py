"""Tests for I-tree nodes."""

import pytest

from repro.geometry.domain import Domain, Region
from repro.geometry.engine import IntervalEngine
from repro.geometry.functions import Hyperplane
from repro.itree.nodes import ITreeNode


@pytest.fixture()
def domain():
    return Domain(lower=(0.0,), upper=(10.0,))


@pytest.fixture()
def plane():
    return Hyperplane(i=0, j=1, normal=(1.0,), offset=-5.0)


def test_new_node_is_subdomain(domain):
    node = ITreeNode(region=Region.full(domain))
    assert node.is_subdomain
    assert not node.is_intersection
    assert node.hash_value is None
    assert node.children == (None, None)


def test_convert_to_intersection(domain, plane):
    engine = IntervalEngine()
    node = ITreeNode(region=Region.full(domain))
    above_region, below_region = engine.split(node.region, plane)
    above, below = node.convert_to_intersection(plane, above_region, below_region)
    assert node.is_intersection
    assert node.above is above and node.below is below
    assert above.parent is node and below.parent is node
    assert above.is_subdomain and below.is_subdomain


def test_convert_twice_rejected(domain, plane):
    engine = IntervalEngine()
    node = ITreeNode(region=Region.full(domain))
    above_region, below_region = engine.split(node.region, plane)
    node.convert_to_intersection(plane, above_region, below_region)
    with pytest.raises(ValueError):
        node.convert_to_intersection(plane, above_region, below_region)


def test_branch_for_follows_sign(domain, plane):
    engine = IntervalEngine()
    node = ITreeNode(region=Region.full(domain))
    above_region, below_region = engine.split(node.region, plane)
    above, below = node.convert_to_intersection(plane, above_region, below_region)
    assert node.branch_for((7.0,)) is above
    assert node.branch_for((3.0,)) is below


def test_branch_for_on_leaf_rejected(domain):
    node = ITreeNode(region=Region.full(domain))
    with pytest.raises(ValueError):
        node.branch_for((1.0,))


def test_iter_subtree_and_depth(domain, plane):
    engine = IntervalEngine()
    root = ITreeNode(region=Region.full(domain))
    above_region, below_region = engine.split(root.region, plane)
    above, below = root.convert_to_intersection(plane, above_region, below_region)
    nodes = list(root.iter_subtree())
    assert set(map(id, nodes)) == {id(root), id(above), id(below)}
    assert root.depth() == 0
    assert above.depth() == 1
    assert below.depth() == 1
