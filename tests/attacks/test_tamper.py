"""Tests for the adversary simulation (tampering transforms)."""

import random

import pytest

from repro.attacks.tamper import ATTACK_REGISTRY, all_attacks
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.results import QueryResult


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme="one-signature", signature_algorithm="hmac"
    )


@pytest.fixture()
def execution(system):
    return system.server.execute(RangeQuery(weights=(0.5,), low=1.0, high=6.0))


def test_registry_contains_all_attack_classes():
    names = set(ATTACK_REGISTRY)
    assert {"drop-record", "truncate-result", "forge-attribute", "inject-record",
            "reorder-result", "substitute-record", "tamper-signature", "tamper-boundary"} == names
    violations = {attack.violates for attack in all_attacks()}
    assert violations == {"completeness", "soundness", "authenticity"}


def test_all_attacks_is_stable_order():
    assert [a.name for a in all_attacks()] == sorted(ATTACK_REGISTRY)


def test_attacks_do_not_mutate_inputs(execution):
    rng = random.Random(0)
    original_records = tuple(execution.result.records)
    original_vo = execution.verification_object
    for attack in all_attacks():
        attack(execution.result, execution.verification_object, rng)
    assert execution.result.records == original_records
    assert execution.verification_object is original_vo


def test_drop_and_truncate_shrink_result(execution):
    rng = random.Random(0)
    for name in ("drop-record", "truncate-result"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert len(tampered[0]) == len(execution.result) - 1


def test_inject_grows_result(execution):
    rng = random.Random(0)
    tampered = ATTACK_REGISTRY["inject-record"](execution.result, execution.verification_object, rng)
    assert tampered is not None
    assert len(tampered[0]) == len(execution.result) + 1
    injected_ids = {r.record_id for r in tampered[0]} - {r.record_id for r in execution.result}
    assert len(injected_ids) == 1


def test_forge_changes_one_record(execution):
    rng = random.Random(0)
    tampered = ATTACK_REGISTRY["forge-attribute"](execution.result, execution.verification_object, rng)
    assert tampered is not None
    changed = [
        (a, b) for a, b in zip(execution.result.records, tampered[0].records) if a != b
    ]
    assert len(changed) == 1


def test_reorder_and_substitute_keep_length(execution):
    rng = random.Random(0)
    for name in ("reorder-result", "substitute-record"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert len(tampered[0]) == len(execution.result)


def test_signature_and_boundary_attacks_modify_vo_only(system):
    rng = random.Random(0)
    # Top-k windows end at the maximum, so the left boundary is a real record
    # and the boundary-forging attack is applicable.
    execution = system.server.execute(TopKQuery(weights=(0.55,), k=3))
    for name in ("tamper-signature", "tamper-boundary"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert tampered[0].records == execution.result.records
        assert tampered[1] is not execution.verification_object


def test_attacks_needing_records_skip_empty_results(system):
    rng = random.Random(0)
    empty = QueryResult(records=())
    execution = system.server.execute(RangeQuery(weights=(0.5,), low=1.0, high=6.0))
    for name in ("drop-record", "truncate-result", "forge-attribute", "inject-record",
                 "reorder-result", "substitute-record"):
        assert ATTACK_REGISTRY[name](empty, execution.verification_object, rng) is None


def test_attack_callable_uses_default_rng(execution):
    attack = ATTACK_REGISTRY["drop-record"]
    assert attack(execution.result, execution.verification_object) is not None


@pytest.mark.parametrize("scheme", ["one-signature", "multi-signature", "signature-mesh"])
def test_every_attack_detected_under_every_scheme(univariate_dataset, univariate_template, scheme):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
    )
    rng = random.Random(3)
    queries = [
        RangeQuery(weights=(0.45,), low=1.0, high=6.0),
        TopKQuery(weights=(0.7,), k=4),
    ]
    for query in queries:
        execution = system.server.execute(query)
        honest = system.client.verify(query, execution.result, execution.verification_object)
        assert honest.is_valid
        for attack in all_attacks():
            tampered = attack(execution.result, execution.verification_object, rng)
            if tampered is None:
                continue
            report = system.client.verify(query, tampered[0], tampered[1])
            assert not report.is_valid, f"{attack.name} went undetected under {scheme}"
