"""Tests for the adversary simulation (tampering transforms) and for the
epoch/delta attacks an out-of-date or malicious server can mount against
the update subsystem: serving a pre-update ADS after the owner moved on,
splicing a delta artifact onto the wrong base, and replaying old files."""

import random

import pytest

from repro.attacks.tamper import (
    ATTACK_REGISTRY,
    AttackApplicability,
    all_attacks,
    apply_attack,
)
from repro.core.client import Client
from repro.core.errors import ConstructionError
from repro.core.owner import DataOwner
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.records import Record
from repro.core.results import QueryResult
from repro.core.server import Server


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme="one-signature", signature_algorithm="hmac"
    )


@pytest.fixture()
def execution(system):
    return system.server.execute(RangeQuery(weights=(0.5,), low=1.0, high=6.0))


def test_registry_contains_all_attack_classes():
    names = set(ATTACK_REGISTRY)
    assert {"drop-record", "truncate-result", "forge-attribute", "inject-record",
            "reorder-result", "substitute-record", "tamper-signature", "tamper-boundary"} == names
    violations = {attack.violates for attack in all_attacks()}
    assert violations == {"completeness", "soundness", "authenticity"}


def test_all_attacks_is_stable_order():
    assert [a.name for a in all_attacks()] == sorted(ATTACK_REGISTRY)


def test_attacks_do_not_mutate_inputs(execution):
    rng = random.Random(0)
    original_records = tuple(execution.result.records)
    original_vo = execution.verification_object
    for attack in all_attacks():
        attack(execution.result, execution.verification_object, rng)
    assert execution.result.records == original_records
    assert execution.verification_object is original_vo


def test_drop_and_truncate_shrink_result(execution):
    rng = random.Random(0)
    for name in ("drop-record", "truncate-result"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert len(tampered[0]) == len(execution.result) - 1


def test_inject_grows_result(execution):
    rng = random.Random(0)
    tampered = ATTACK_REGISTRY["inject-record"](execution.result, execution.verification_object, rng)
    assert tampered is not None
    assert len(tampered[0]) == len(execution.result) + 1
    injected_ids = {r.record_id for r in tampered[0]} - {r.record_id for r in execution.result}
    assert len(injected_ids) == 1


def test_forge_changes_one_record(execution):
    rng = random.Random(0)
    tampered = ATTACK_REGISTRY["forge-attribute"](execution.result, execution.verification_object, rng)
    assert tampered is not None
    changed = [
        (a, b) for a, b in zip(execution.result.records, tampered[0].records) if a != b
    ]
    assert len(changed) == 1


def test_reorder_and_substitute_keep_length(execution):
    rng = random.Random(0)
    for name in ("reorder-result", "substitute-record"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert len(tampered[0]) == len(execution.result)


def test_signature_and_boundary_attacks_modify_vo_only(system):
    rng = random.Random(0)
    # Top-k windows end at the maximum, so the left boundary is a real record
    # and the boundary-forging attack is applicable.
    execution = system.server.execute(TopKQuery(weights=(0.55,), k=3))
    for name in ("tamper-signature", "tamper-boundary"):
        tampered = ATTACK_REGISTRY[name](execution.result, execution.verification_object, rng)
        assert tampered is not None
        assert tampered[0].records == execution.result.records
        assert tampered[1] is not execution.verification_object


def test_attacks_needing_records_skip_empty_results(system):
    rng = random.Random(0)
    empty = QueryResult(records=())
    execution = system.server.execute(RangeQuery(weights=(0.5,), low=1.0, high=6.0))
    for name in ("drop-record", "truncate-result", "forge-attribute", "inject-record",
                 "reorder-result", "substitute-record"):
        assert ATTACK_REGISTRY[name](empty, execution.verification_object, rng) is None


def test_attack_callable_uses_default_rng(execution):
    attack = ATTACK_REGISTRY["drop-record"]
    assert attack(execution.result, execution.verification_object) is not None


# ---------------------------------------------------------------------------
# Epoch / stale-ADS attacks (update subsystem)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["one-signature", "multi-signature", "signature-mesh"])
def test_stale_server_fails_verification_after_update(
    univariate_dataset, univariate_template, scheme
):
    """A server still serving epoch k after the owner published k+1 must
    fail client verification: its signatures were genuine once, but the
    current public parameters bind the new epoch into every signed
    message."""
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
    )
    owner = system.owner
    stale_server = system.server  # holds the epoch-0 package
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)

    owner.insert(Record(record_id=99, values=(4.2, 1.7)))
    assert owner.epoch == 1
    current_client = Client(owner.public_parameters())

    stale = stale_server.execute(query)
    report = current_client.verify(query, stale.result, stale.verification_object)
    assert not report.is_valid, f"stale epoch went undetected under {scheme}"

    # An up-to-date server passes against the same client.
    fresh = Server(owner.outsource()).execute(query)
    assert current_client.verify(
        query, fresh.result, fresh.verification_object
    ).is_valid


def test_stale_artifact_fails_verification_after_update(
    univariate_dataset, univariate_template, tmp_path
):
    """Same attack through the artifact path: a pre-update file keeps
    loading (it is internally consistent) but its answers are rejected by
    clients holding the owner's refreshed parameters, and an operator
    pinning ``expected_epoch`` refuses to even serve it."""
    system = OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )
    owner = system.owner
    stale_path = tmp_path / "epoch0.npz"
    owner.publish(stale_path)
    owner.delete(3)

    stale_server = Server.from_artifact(stale_path)
    query = TopKQuery(weights=(0.55,), k=3)
    stale = stale_server.execute(query)
    current_client = Client(owner.public_parameters())
    assert not current_client.verify(
        query, stale.result, stale.verification_object
    ).is_valid

    with pytest.raises(ConstructionError, match="stale or replayed"):
        Server.from_artifact(stale_path, expected_epoch=owner.epoch)


def test_delta_artifact_on_wrong_base_is_rejected(
    univariate_dataset, univariate_template, tmp_path
):
    system = OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )
    owner = system.owner
    base_path = tmp_path / "base.npz"
    owner.publish(base_path)
    owner.insert(Record(record_id=77, values=(1.1, 0.9)))
    delta_path = tmp_path / "delta.npz"
    owner.publish(delta_path, base=base_path)

    # The right base splices cleanly...
    server = Server.from_artifact(delta_path, base=base_path, expected_epoch=1)
    live = Server(owner.outsource())
    query = TopKQuery(weights=(0.5,), k=3)
    assert (
        server.execute(query).verification_object
        == live.execute(query).verification_object
    )

    # ...any other base is refused outright.
    rows = [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]
    from repro.core.records import Dataset

    other = DataOwner(
        Dataset.from_rows(("factor", "baseline"), rows),
        univariate_template,
        config=owner.config,
        keypair=owner.keypair,
    )
    wrong_base = tmp_path / "wrong.npz"
    other.publish(wrong_base)
    with pytest.raises(ConstructionError, match="different base"):
        Server.from_artifact(delta_path, base=wrong_base)

    # A delta without its base cannot be loaded at all.
    with pytest.raises(ConstructionError, match="pass the base artifact"):
        Server.from_artifact(delta_path)

    # Splicing a delta onto itself (a replay) is refused by the epoch rule.
    with pytest.raises(ConstructionError):
        Server.from_artifact(delta_path, base=delta_path)


def test_replayed_delta_epoch_is_rejected(
    univariate_dataset, univariate_template, tmp_path
):
    """A delta whose epoch is not newer than its base's is a replay."""
    system = OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )
    owner = system.owner
    owner.insert(Record(record_id=55, values=(2.0, 2.0)))
    newer = tmp_path / "epoch1.npz"
    owner.publish(newer)
    owner.delete(55)
    delta = tmp_path / "epoch2-delta.npz"
    owner.publish(delta, base=newer)
    # Spliced onto a base that is already *past* the delta's epoch.
    owner.insert(Record(record_id=56, values=(2.5, 2.5)))
    owner.insert(Record(record_id=57, values=(2.7, 2.7)))
    future = tmp_path / "epoch4.npz"
    owner.publish(future)
    with pytest.raises(ConstructionError, match="different base|stale or replayed|not newer"):
        Server.from_artifact(delta, base=future)


#: Applicability of every attack attempt made by the detection sweep below,
#: accumulated across all scheme parametrizations so the suite can prove it
#: was not vacuous (an attack skipped on *every* scheme and query shape
#: would otherwise pass silently, testing nothing).
SWEEP_APPLICABILITY = AttackApplicability()


@pytest.mark.parametrize("scheme", ["one-signature", "multi-signature", "signature-mesh"])
def test_every_attack_detected_under_every_scheme(univariate_dataset, univariate_template, scheme):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
    )
    rng = random.Random(3)
    queries = [
        RangeQuery(weights=(0.45,), low=1.0, high=6.0),
        TopKQuery(weights=(0.7,), k=4),
    ]
    for query in queries:
        execution = system.server.execute(query)
        honest = system.client.verify(query, execution.result, execution.verification_object)
        assert honest.is_valid
        for attack in all_attacks():
            tampered = apply_attack(
                attack,
                execution.result,
                execution.verification_object,
                rng,
                SWEEP_APPLICABILITY,
            )
            if tampered is None:
                continue
            report = system.client.verify(query, tampered[0], tampered[1])
            assert not report.is_valid, f"{attack.name} went undetected under {scheme}"


def test_detection_sweep_is_not_vacuous():
    """Every registered attack must have been attempted by the sweep above
    and must have actually applied (produced a tampered pair) for at least
    one scheme/query shape -- otherwise "`X` went undetected" was never at
    risk of failing for X and the suite is vacuous for that attack."""
    if not SWEEP_APPLICABILITY.attempted():
        pytest.skip("detection sweep did not run in this test selection")
    SWEEP_APPLICABILITY.assert_not_vacuous(expected=sorted(ATTACK_REGISTRY))
    # Stronger than non-vacuity: on this workload every attack applies on
    # every scheme (2 queries x 3 schemes = 6 attempts each).
    for name in ATTACK_REGISTRY:
        assert SWEEP_APPLICABILITY.applied.get(name, 0) >= 3, (
            f"{name} applied only {SWEEP_APPLICABILITY.applied.get(name, 0)} "
            "times across the sweep; the workload no longer exercises it"
        )
