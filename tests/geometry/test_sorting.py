"""Tests for deterministic function sorting."""

import pytest

from repro.geometry.functions import LinearFunction
from repro.geometry.sorting import rank_of, sort_functions_at


@pytest.fixture()
def functions():
    return [
        LinearFunction(index=0, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=1, coefficients=(-1.0,), constant=4.0),
        LinearFunction(index=2, coefficients=(0.5,), constant=1.0),
    ]


def test_sorted_ascending_at_witness(functions):
    ordered = sort_functions_at(functions, (0.0,))
    # Scores at x=0: f0=0, f2=1, f1=4.
    assert [f.index for f in ordered] == [0, 2, 1]


def test_order_changes_with_witness(functions):
    ordered = sort_functions_at(functions, (4.0,))
    # Scores at x=4: f1=0, f2=3, f0=4.
    assert [f.index for f in ordered] == [1, 2, 0]


def test_input_not_modified(functions):
    original = list(functions)
    sort_functions_at(functions, (2.0,))
    assert functions == original


def test_ties_break_by_index():
    duplicates = [
        LinearFunction(index=5, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=2, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=9, coefficients=(1.0,), constant=0.0),
    ]
    ordered = sort_functions_at(duplicates, (0.7,))
    assert [f.index for f in ordered] == [2, 5, 9]


def test_rank_of_returns_position(functions):
    assert rank_of(functions, (0.0,), index=1) == 2
    assert rank_of(functions, (4.0,), index=1) == 0


def test_rank_of_unknown_index_raises(functions):
    with pytest.raises(ValueError):
        rank_of(functions, (0.0,), index=42)
