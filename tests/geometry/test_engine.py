"""Tests for the interval and LP split/witness engines."""

import pytest

from repro.geometry.domain import Domain, Region
from repro.geometry.engine import IntervalEngine, LPEngine, make_engine
from repro.geometry.functions import Hyperplane


@pytest.fixture()
def domain_1d() -> Domain:
    return Domain(lower=(0.0,), upper=(10.0,))


@pytest.fixture()
def domain_2d() -> Domain:
    return Domain.unit_box(2)


def test_make_engine_dispatch(domain_1d, domain_2d):
    assert isinstance(make_engine(domain_1d), IntervalEngine)
    assert isinstance(make_engine(domain_2d), LPEngine)


class TestIntervalEngine:
    def test_splits_inside_interval(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=-4.0)  # breakpoint at 4
        assert engine.splits(region, plane)

    def test_does_not_split_outside_interval(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=-15.0)  # breakpoint at 15
        assert not engine.splits(region, plane)

    def test_does_not_split_on_boundary(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=0.0)  # breakpoint at 0
        assert not engine.splits(region, plane)

    def test_degenerate_plane_never_splits(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(0.0,), offset=-1.0)
        assert not engine.splits(region, plane)

    def test_split_positive_slope_orientation(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(2.0,), offset=-8.0)  # breakpoint at 4
        above, below = engine.split(region, plane)
        # above: normal * x + offset >= 0  <=>  x >= 4
        assert (above.interval_low, above.interval_high) == (4.0, 10.0)
        assert (below.interval_low, below.interval_high) == (0.0, 4.0)
        assert above.contains((5.0,)) and not above.contains((3.0,))

    def test_split_negative_slope_orientation(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(-1.0,), offset=3.0)  # breakpoint at 3
        above, below = engine.split(region, plane)
        # above: -x + 3 >= 0  <=>  x <= 3
        assert (above.interval_low, above.interval_high) == (0.0, 3.0)
        assert (below.interval_low, below.interval_high) == (3.0, 10.0)

    def test_split_raises_when_not_splitting(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=-20.0)
        with pytest.raises(ValueError):
            engine.split(region, plane)

    def test_witness_is_interval_midpoint(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        assert engine.witness(region) == (5.0,)

    def test_rejects_multivariate_hyperplane(self, domain_1d):
        engine = IntervalEngine()
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, 1.0), offset=0.0)
        with pytest.raises(ValueError):
            engine.splits(region, plane)


class TestLPEngine:
    def test_splits_through_box(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)  # diagonal
        assert engine.splits(region, plane)

    def test_does_not_split_outside_box(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, 1.0), offset=-5.0)  # x+y=5
        assert not engine.splits(region, plane)

    def test_degenerate_plane_never_splits(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(0.0, 0.0), offset=1.0)
        assert not engine.splits(region, plane)

    def test_split_sides_partition_points(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)
        above, below = engine.split(region, plane)
        assert above.contains((0.8, 0.2))
        assert not above.contains((0.2, 0.8))
        assert below.contains((0.2, 0.8))
        assert not below.contains((0.8, 0.2))

    def test_split_raises_when_not_splitting(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, 1.0), offset=-5.0)
        with pytest.raises(ValueError):
            engine.split(region, plane)

    def test_witness_is_interior_point(self, domain_2d):
        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)
        above, below = engine.split(region, plane)
        for sub_region in (above, below):
            witness = engine.witness(sub_region)
            assert sub_region.contains(witness)

    def test_consistent_with_interval_engine_on_1d(self):
        domain = Domain(lower=(0.0,), upper=(10.0,))
        region = Region.full(domain)
        interval = IntervalEngine()
        lp = LPEngine()
        for offset in (-2.0, -5.0, -9.999, -11.0, 0.5):
            plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=offset)
            assert interval.splits(region, plane) == lp.splits(region, plane)


class TestMakeEngineTolerance:
    """Regression: an explicit ``tolerance=0.0`` must not fall back to defaults."""

    def test_zero_tolerance_honoured_for_interval_engine(self, domain_1d):
        engine = make_engine(domain_1d, tolerance=0.0)
        assert isinstance(engine, IntervalEngine)
        assert engine.tolerance == 0.0

    def test_zero_tolerance_honoured_for_lp_engine(self, domain_2d):
        engine = make_engine(domain_2d, tolerance=0.0)
        assert isinstance(engine, LPEngine)
        assert engine.tolerance == 0.0

    def test_none_selects_defaults(self, domain_1d, domain_2d):
        from repro.geometry.engine import DEFAULT_LP_TOLERANCE, DEFAULT_TOLERANCE

        assert make_engine(domain_1d).tolerance == DEFAULT_TOLERANCE
        assert make_engine(domain_2d).tolerance == DEFAULT_LP_TOLERANCE

    def test_explicit_tolerance_forwarded(self, domain_1d, domain_2d):
        assert make_engine(domain_1d, tolerance=1e-6).tolerance == 1e-6
        assert make_engine(domain_2d, tolerance=1e-5).tolerance == 1e-5

    def test_zero_tolerance_engine_still_splits(self, domain_1d):
        engine = make_engine(domain_1d, tolerance=0.0)
        region = Region.full(domain_1d)
        plane = Hyperplane(i=0, j=1, normal=(1.0,), offset=-4.0)
        assert engine.splits(region, plane)


class TestLPEngineSolverFailure:
    """Regression: solver failures must not masquerade as empty regions."""

    def _tight_region(self, domain_2d) -> Region:
        # A near-degenerate sliver: two almost-parallel half-spaces.
        region = Region.full(domain_2d)
        from repro.geometry.domain import ABOVE, BELOW, Constraint

        lower = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)
        upper = Hyperplane(i=0, j=2, normal=(1.0, -1.0 + 1e-10), offset=1e-12)
        region = region.with_constraint(Constraint(lower, ABOVE))
        return region.with_constraint(Constraint(upper, BELOW))

    def test_infeasible_region_reports_no_split(self, domain_2d):
        """A provably empty region is genuine emptiness, not a failure."""
        from repro.geometry.domain import ABOVE, BELOW, Constraint

        engine = LPEngine()
        plane = Hyperplane(i=0, j=1, normal=(1.0, 0.0), offset=-0.5)
        region = Region.full(domain_2d)
        # x + y >= 1.9 and x + y < 0.1 cannot both hold inside the unit box.
        region = region.with_constraint(
            Constraint(Hyperplane(i=0, j=1, normal=(1.0, 1.0), offset=-1.9), ABOVE)
        )
        region = region.with_constraint(
            Constraint(Hyperplane(i=0, j=2, normal=(1.0, 1.0), offset=-0.1), BELOW)
        )
        assert not engine.splits(region, plane)

    def test_near_degenerate_sliver_still_resolves(self, domain_2d):
        """A numerically tight (but non-empty) 2-D region must not be merged away."""
        engine = LPEngine()
        region = self._tight_region(domain_2d)
        plane = Hyperplane(i=1, j=2, normal=(1.0, 0.0), offset=-0.5)
        # Must produce a definite answer (either way) without treating the
        # region as empty: the sliver contains points on both sides of x=0.5.
        assert engine.splits(region, plane)

    def test_solver_failure_raises_construction_error(self, domain_2d, monkeypatch):
        import scipy.optimize

        from repro.core.errors import ConstructionError

        class _Failed:
            success = False
            status = 4  # numerical difficulties
            message = "simulated numerical failure"
            fun = None

        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)
        monkeypatch.setattr(scipy.optimize, "linprog", lambda *a, **k: _Failed())
        with pytest.raises(ConstructionError, match="LP solver failed"):
            engine.splits(region, plane)

    def test_infeasible_status_still_means_empty(self, domain_2d, monkeypatch):
        import scipy.optimize

        class _Infeasible:
            success = False
            status = 2  # infeasible: the region really is empty
            message = "simulated infeasibility"
            fun = None

        engine = LPEngine()
        region = Region.full(domain_2d)
        plane = Hyperplane(i=0, j=1, normal=(1.0, -1.0), offset=0.0)
        monkeypatch.setattr(scipy.optimize, "linprog", lambda *a, **k: _Infeasible())
        assert not engine.splits(region, plane)
