"""Tests for linear score functions and intersection hyperplanes."""

import pytest

from repro.geometry.functions import Hyperplane, LinearFunction, intersection_hyperplane


def test_evaluate_weighted_sum():
    f = LinearFunction(index=1, coefficients=(3.9, 2.0, 4.0))
    assert f.evaluate((1.0, 0.0, 0.0)) == pytest.approx(3.9)
    assert f.evaluate((0.5, 0.5, 0.5)) == pytest.approx((3.9 + 2.0 + 4.0) / 2)


def test_evaluate_with_constant_term():
    f = LinearFunction(index=2, coefficients=(2.0,), constant=5.0)
    assert f.evaluate((0.0,)) == pytest.approx(5.0)
    assert f.evaluate((1.5,)) == pytest.approx(8.0)


def test_call_is_evaluate():
    f = LinearFunction(index=0, coefficients=(1.0, 1.0))
    assert f((0.25, 0.75)) == f.evaluate((0.25, 0.75))


def test_evaluate_rejects_wrong_dimension():
    f = LinearFunction(index=0, coefficients=(1.0, 2.0))
    with pytest.raises(ValueError, match="dimension"):
        f.evaluate((1.0,))


def test_empty_coefficients_rejected():
    with pytest.raises(ValueError):
        LinearFunction(index=0, coefficients=())


def test_dimension_property():
    assert LinearFunction(index=0, coefficients=(1.0, 2.0, 3.0)).dimension == 3


def test_parallel_and_coincident_detection():
    f = LinearFunction(index=0, coefficients=(1.0, 2.0), constant=1.0)
    parallel = LinearFunction(index=1, coefficients=(1.0, 2.0), constant=3.0)
    coincident = LinearFunction(index=2, coefficients=(1.0, 2.0), constant=1.0)
    crossing = LinearFunction(index=3, coefficients=(2.0, 1.0), constant=1.0)
    assert f.is_parallel_to(parallel)
    assert not f.is_coincident_with(parallel)
    assert f.is_coincident_with(coincident)
    assert not f.is_parallel_to(crossing)


def test_to_bytes_distinguishes_functions():
    f1 = LinearFunction(index=0, coefficients=(1.0, 2.0))
    f2 = LinearFunction(index=0, coefficients=(1.0, 2.0000001))
    f3 = LinearFunction(index=1, coefficients=(1.0, 2.0))
    assert f1.to_bytes() != f2.to_bytes()
    assert f1.to_bytes() != f3.to_bytes()
    assert f1.to_bytes() == LinearFunction(index=0, coefficients=(1.0, 2.0)).to_bytes()


def test_intersection_hyperplane_coefficients():
    f_i = LinearFunction(index=1, coefficients=(3.0, 1.0), constant=2.0)
    f_j = LinearFunction(index=2, coefficients=(1.0, 4.0), constant=5.0)
    hyperplane = intersection_hyperplane(f_i, f_j)
    assert hyperplane is not None
    assert hyperplane.i == 1 and hyperplane.j == 2
    assert hyperplane.normal == (2.0, -3.0)
    assert hyperplane.offset == -3.0


def test_intersection_side_value_sign_matches_score_difference():
    f_i = LinearFunction(index=1, coefficients=(3.0, 1.0), constant=2.0)
    f_j = LinearFunction(index=2, coefficients=(1.0, 4.0), constant=5.0)
    hyperplane = intersection_hyperplane(f_i, f_j)
    for weights in [(0.2, 0.9), (0.9, 0.1), (0.5, 0.5)]:
        difference = f_i.evaluate(weights) - f_j.evaluate(weights)
        assert hyperplane.side_value(weights) == pytest.approx(difference)


def test_parallel_functions_have_no_intersection():
    f_i = LinearFunction(index=1, coefficients=(1.0, 1.0), constant=0.0)
    f_j = LinearFunction(index=2, coefficients=(1.0, 1.0), constant=3.0)
    assert intersection_hyperplane(f_i, f_j) is None


def test_intersection_rejects_dimension_mismatch():
    f_i = LinearFunction(index=1, coefficients=(1.0,))
    f_j = LinearFunction(index=2, coefficients=(1.0, 2.0))
    with pytest.raises(ValueError):
        intersection_hyperplane(f_i, f_j)


def test_hyperplane_degenerate_detection():
    assert Hyperplane(i=0, j=1, normal=(0.0, 0.0), offset=1.0).is_degenerate()
    assert not Hyperplane(i=0, j=1, normal=(0.0, 1e-3), offset=1.0).is_degenerate()


def test_hyperplane_name_and_bytes():
    hyperplane = Hyperplane(i=3, j=7, normal=(1.0,), offset=-2.0)
    assert hyperplane.name == "I_{3,7}"
    other = Hyperplane(i=3, j=7, normal=(1.0,), offset=-2.5)
    assert hyperplane.to_bytes() != other.to_bytes()
