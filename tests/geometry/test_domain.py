"""Tests for the weight domain, constraints and regions."""

import pytest

from repro.geometry.domain import (
    ABOVE,
    BELOW,
    Constraint,
    Domain,
    Region,
    region_from_constraints,
)
from repro.geometry.functions import Hyperplane


@pytest.fixture()
def plane() -> Hyperplane:
    # x - 0.5 = 0: above means x >= 0.5
    return Hyperplane(i=0, j=1, normal=(1.0,), offset=-0.5)


def test_unit_box_and_cube_constructors():
    unit = Domain.unit_box(3)
    assert unit.lower == (0.0, 0.0, 0.0) and unit.upper == (1.0, 1.0, 1.0)
    cube = Domain.box(2, -1.0, 2.0)
    assert cube.lower == (-1.0, -1.0) and cube.upper == (2.0, 2.0)


def test_domain_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        Domain(lower=(0.0, 0.0), upper=(1.0,))


def test_domain_rejects_degenerate_interval():
    with pytest.raises(ValueError):
        Domain(lower=(1.0,), upper=(1.0,))
    with pytest.raises(ValueError):
        Domain(lower=(2.0,), upper=(1.0,))


def test_domain_rejects_empty():
    with pytest.raises(ValueError):
        Domain(lower=(), upper=())


def test_domain_contains_and_center():
    domain = Domain(lower=(0.0, -1.0), upper=(2.0, 1.0))
    assert domain.contains((1.0, 0.0))
    assert domain.contains((0.0, -1.0))  # boundary included
    assert not domain.contains((3.0, 0.0))
    assert not domain.contains((1.0,))  # wrong dimension
    assert domain.center() == (1.0, 0.0)


def test_constraint_side_validation(plane):
    with pytest.raises(ValueError):
        Constraint(plane, side=0)


def test_constraint_satisfied_by(plane):
    above = Constraint(plane, ABOVE)
    below = Constraint(plane, BELOW)
    assert above.satisfied_by((0.7,))
    assert not above.satisfied_by((0.3,))
    assert below.satisfied_by((0.3,))
    assert not below.satisfied_by((0.7,))


def test_constraint_describe(plane):
    assert Constraint(plane, ABOVE).describe() == "f_0(X) - f_1(X) >= 0"
    assert Constraint(plane, BELOW).describe() == "f_0(X) - f_1(X) < 0"


def test_constraint_bytes_distinguish_sides(plane):
    assert Constraint(plane, ABOVE).to_bytes() != Constraint(plane, BELOW).to_bytes()


def test_region_full_and_contains(plane):
    domain = Domain.unit_box(1)
    region = Region.full(domain)
    assert region.contains((0.5,))
    constrained = region.with_constraint(Constraint(plane, ABOVE))
    assert constrained.contains((0.9,))
    assert not constrained.contains((0.1,))
    assert len(constrained) == 1


def test_region_tracks_interval_for_1d():
    domain = Domain(lower=(0.0,), upper=(4.0,))
    region = Region.full(domain)
    assert region.interval_low == 0.0 and region.interval_high == 4.0
    assert region.is_interval


def test_region_constraint_bytes_change_with_constraints(plane):
    domain = Domain.unit_box(1)
    empty = Region.full(domain)
    constrained = empty.with_constraint(Constraint(plane, ABOVE))
    assert empty.constraint_bytes() != constrained.constraint_bytes()


def test_region_describe_lists_inequalities(plane):
    domain = Domain.unit_box(1)
    region = Region.full(domain).with_constraint(Constraint(plane, BELOW))
    assert region.describe() == ["f_0(X) - f_1(X) < 0"]


def test_region_from_constraints_roundtrip(plane):
    domain = Domain.unit_box(1)
    constraints = (Constraint(plane, ABOVE),)
    region = region_from_constraints(domain, constraints)
    assert region.constraints == constraints
    assert region.contains((0.8,))
    assert not region.contains((0.2,))


def test_region_outside_domain_is_not_contained(plane):
    domain = Domain.unit_box(1)
    region = Region.full(domain).with_constraint(Constraint(plane, ABOVE))
    assert not region.contains((1.5,))
