"""Tests for the weight-space arrangement (including the paper's Fig. 2 example)."""

import random

import pytest

from repro.geometry.arrangement import build_arrangement, pairwise_hyperplanes
from repro.geometry.domain import Domain
from repro.geometry.functions import LinearFunction


@pytest.fixture()
def fig2_functions():
    """Four univariate lines mirroring the shape of the paper's Fig. 2a."""
    return [
        LinearFunction(index=1, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=2, coefficients=(0.5,), constant=1.0),
        LinearFunction(index=3, coefficients=(-0.3,), constant=3.0),
        LinearFunction(index=4, coefficients=(2.0,), constant=-1.0),
    ]


@pytest.fixture()
def fig2_domain():
    return Domain(lower=(0.0,), upper=(5.0,))


def test_pairwise_hyperplanes_count(fig2_functions):
    # 4 functions, no two parallel: C(4, 2) = 6 intersections.
    assert len(pairwise_hyperplanes(fig2_functions)) == 6


def test_pairwise_hyperplanes_skip_parallel():
    functions = [
        LinearFunction(index=0, coefficients=(1.0,), constant=0.0),
        LinearFunction(index=1, coefficients=(1.0,), constant=2.0),
        LinearFunction(index=2, coefficients=(2.0,), constant=0.0),
    ]
    planes = pairwise_hyperplanes(functions)
    assert len(planes) == 2  # the parallel pair contributes nothing
    assert all((p.i, p.j) != (0, 1) for p in planes)


def test_fig2_partition_into_seven_subdomains(fig2_functions, fig2_domain):
    """Six in-domain intersection points partition the domain into 7 cells."""
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    assert arrangement.size == 7


def test_cells_tile_the_domain_in_order(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    previous_high = fig2_domain.lower[0]
    for cell in arrangement.subdomains:
        assert cell.region.interval_low == pytest.approx(previous_high)
        previous_high = cell.region.interval_high
    assert previous_high == pytest.approx(fig2_domain.upper[0])


def test_sorted_lists_are_correct_inside_each_cell(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    rng = random.Random(0)
    for cell in arrangement.subdomains:
        for _ in range(5):
            x = rng.uniform(cell.region.interval_low, cell.region.interval_high)
            scores = [f.evaluate((x,)) for f in cell.sorted_functions]
            assert scores == sorted(scores)


def test_adjacent_cells_have_different_orders(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    orders = [cell.sorted_indices() for cell in arrangement.subdomains]
    for left, right in zip(orders, orders[1:]):
        assert left != right


def test_locate_finds_containing_cell(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    rng = random.Random(1)
    for _ in range(20):
        x = (rng.uniform(0.0, 5.0),)
        cell = arrangement.locate(x)
        assert cell.contains(x)


def test_locate_with_count_counts_cells(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    last_cell = arrangement.subdomains[-1]
    witness = last_cell.witness
    cell, inspected = arrangement.locate_with_count(witness)
    assert cell.identifier == last_cell.identifier
    assert inspected == arrangement.size


def test_locate_outside_domain_raises(fig2_functions, fig2_domain):
    arrangement = build_arrangement(fig2_functions, fig2_domain)
    with pytest.raises(ValueError):
        arrangement.locate((9.0,))


def test_single_function_yields_single_cell(fig2_domain):
    arrangement = build_arrangement(
        [LinearFunction(index=0, coefficients=(1.0,))], fig2_domain
    )
    assert arrangement.size == 1
    assert arrangement.subdomains[0].sorted_indices() == [0]


def test_empty_function_set_rejected(fig2_domain):
    with pytest.raises(ValueError):
        build_arrangement([], fig2_domain)


def test_2d_arrangement_orders_are_valid():
    rng = random.Random(3)
    functions = [
        LinearFunction(index=i, coefficients=(rng.uniform(0, 4), rng.uniform(0, 4)),
                       constant=rng.uniform(0, 1))
        for i in range(5)
    ]
    domain = Domain.unit_box(2)
    arrangement = build_arrangement(functions, domain)
    assert arrangement.size >= 1
    for cell in arrangement.subdomains:
        scores = [f.evaluate(cell.witness) for f in cell.sorted_functions]
        assert scores == sorted(scores)
        assert cell.contains(cell.witness)
