"""Shared fixtures for the test suite.

Key generation for real public-key schemes is comparatively slow, so RSA and
DSA key pairs are generated once per session with small (test-only) key
sizes; structural tests that do not exercise the trust model use the fast
``hmac`` scheme.
"""

from __future__ import annotations

import random

import pytest

from repro.core.records import Dataset, UtilityTemplate
from repro.crypto.signer import make_signer
from repro.geometry.domain import Domain


@pytest.fixture(scope="session")
def rsa_keypair():
    """A small RSA key pair shared across the whole session."""
    return make_signer("rsa", rng=random.Random(0xA11CE), key_bits=512)


@pytest.fixture(scope="session")
def dsa_keypair():
    """A small DSA key pair shared across the whole session."""
    return make_signer("dsa", rng=random.Random(0xB0B), key_bits=512)


@pytest.fixture()
def hmac_keypair():
    """A fresh keyed-hash signer (fast, structural tests only)."""
    return make_signer("hmac", rng=random.Random(7))


@pytest.fixture()
def applicant_dataset() -> Dataset:
    """The paper's Fig. 1 style applicant table (10 records)."""
    rows = [
        (3.9, 2, 4),
        (3.5, 1, 7),
        (3.2, 0, 2),
        (3.8, 3, 1),
        (2.9, 1, 0),
        (3.6, 4, 5),
        (3.1, 2, 3),
        (3.7, 0, 6),
        (2.8, 1, 2),
        (3.4, 2, 1),
    ]
    labels = [f"applicant-{i}" for i in range(len(rows))]
    return Dataset.from_rows(("gpa", "award", "paper"), rows, labels=labels)


@pytest.fixture()
def bivariate_template() -> UtilityTemplate:
    """Two free weights (GPA, awards) over the unit box."""
    return UtilityTemplate(attributes=("gpa", "award"), domain=Domain.unit_box(2))


@pytest.fixture()
def univariate_dataset() -> Dataset:
    """A univariate-friendly table: one weighted attribute plus a baseline."""
    rng = random.Random(13)
    rows = [(round(rng.uniform(0.0, 8.0), 2), round(rng.uniform(0.0, 6.0), 2)) for _ in range(12)]
    return Dataset.from_rows(("factor", "baseline"), rows)


@pytest.fixture()
def univariate_template() -> UtilityTemplate:
    """Score = baseline + factor * x over x in [0, 1]."""
    return UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
