"""Live epoch hot-swap: double-buffered serving state on one Server.

The contract: a swap installs a complete newer-epoch state atomically,
in-flight queries finish on the epoch they started on, stale or
cross-scheme replacements are refused, and the per-epoch score cache
never leaks scores across a swap.
"""

import random
import threading

import pytest

from repro.core.client import Client
from repro.core.config import SystemConfig
from repro.core.errors import ConstructionError
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.records import Record
from repro.core.server import Server, SwapReport
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

QUERY = TopKQuery(weights=(0.55,), k=3)


def _system(n_records=12, seed=5):
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    return OutsourcedSystem.setup(
        make_dataset(workload),
        make_template(workload),
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        rng=random.Random(seed),
    )


def _publish_epochs(system, tmp_path, updates=1):
    """Publish epoch 0, then ``updates`` single-insert epochs; return paths."""
    paths = [tmp_path / "epoch0.npz"]
    system.owner.publish(paths[0])
    n = len(system.owner.dataset)
    for step in range(updates):
        system.owner.insert(Record(record_id=n + step, values=(4.0 + step, 1.0)))
        path = tmp_path / f"epoch{step + 1}.npz"
        system.owner.publish(path)
        paths.append(path)
    return paths


def test_swap_serves_the_new_epoch_bit_identically(tmp_path):
    system = _system()
    epoch0, epoch1 = _publish_epochs(system, tmp_path)
    server = Server.from_artifact(epoch0)
    assert server.epoch == 0
    report = server.swap_epoch_from_artifact(epoch1, expected_epoch=1)
    assert report == SwapReport(old_epoch=0, new_epoch=1, scheme="one-signature")
    assert server.epoch == 1
    assert server.epochs_served == 2
    fresh = Server.from_artifact(epoch1)
    client = Client.from_artifact(epoch1)
    for query in (QUERY, RangeQuery(weights=(0.4,), low=1.0, high=6.0)):
        swapped = server.execute(query)
        cold = fresh.execute(query)
        assert swapped.result == cold.result
        assert swapped.verification_object == cold.verification_object
        assert client.verify(
            query, swapped.result, swapped.verification_object
        ).is_valid


def test_swap_rejects_stale_and_sideways_epochs(tmp_path):
    system = _system()
    epoch0, epoch1 = _publish_epochs(system, tmp_path)
    server = Server.from_artifact(epoch1)
    with pytest.raises(ConstructionError, match="strictly newer"):
        server.swap_epoch_from_artifact(epoch0)  # backwards
    with pytest.raises(ConstructionError, match="strictly newer"):
        server.swap_epoch_from_artifact(epoch1)  # sideways
    assert server.epoch == 1
    assert server.epochs_served == 1


def test_swap_rejects_scheme_change(tmp_path):
    system = _system()
    epoch0, _epoch1 = _publish_epochs(system, tmp_path)
    workload = WorkloadConfig(n_records=12, dimension=1, seed=5)
    mesh = OutsourcedSystem.setup(
        make_dataset(workload),
        make_template(workload),
        config=SystemConfig(scheme="signature-mesh", signature_algorithm="hmac"),
        rng=random.Random(5),
    )
    mesh.owner.insert(Record(record_id=12, values=(4.0, 1.0)))
    server = Server.from_artifact(epoch0)
    with pytest.raises(ConstructionError, match="replace the server instead"):
        server.swap_epoch(mesh.owner.outsource())
    assert server.epoch == 0


def test_corrupt_replacement_never_disturbs_serving(tmp_path):
    system = _system()
    epoch0, epoch1 = _publish_epochs(system, tmp_path)
    data = bytearray(epoch1.read_bytes())
    for offset in range(len(data) // 2, len(data) // 2 + 64):
        data[offset] ^= 0x5A
    epoch1.write_bytes(bytes(data))
    server = Server.from_artifact(epoch0)
    before = server.execute(QUERY)
    with pytest.raises(ConstructionError):
        server.swap_epoch_from_artifact(epoch1)  # fails while loading, pre-lock
    assert server.epoch == 0
    after = server.execute(QUERY)
    assert after.result == before.result


def test_score_cache_is_per_epoch_but_stats_are_cumulative(tmp_path):
    system = _system()
    epoch0, epoch1 = _publish_epochs(system, tmp_path)
    server = Server.from_artifact(epoch0)
    server.execute(QUERY)
    server.execute(QUERY)
    assert server.score_cache_hits >= 1
    hits_before = server.score_cache_hits
    misses_before = server.score_cache_misses
    server.swap_epoch_from_artifact(epoch1)
    server.execute(QUERY)  # fresh cache: this must not hit old-epoch scores
    assert server.score_cache_hits == hits_before
    assert server.score_cache_misses > misses_before


def test_inflight_queries_finish_on_their_entry_epoch(tmp_path):
    """Readers racing a cascade of swaps: every answer verifies against
    the epoch that served it, nothing drops, nothing mixes."""
    system = _system(n_records=24)
    paths = _publish_epochs(system, tmp_path, updates=3)
    clients = {epoch: Client.from_artifact(path) for epoch, path in enumerate(paths)}
    server = Server.from_artifact(paths[0])
    queries = [TopKQuery(weights=(w,), k=3) for w in (0.2, 0.45, 0.7, 0.95)]

    outcomes = []
    errors = []
    start = threading.Barrier(3)

    def reader(slot):
        rng = random.Random(slot)
        start.wait()
        for _ in range(25):
            query = queries[rng.randrange(len(queries))]
            try:
                outcomes.append((query, server.execute(query)))
            except Exception as error:  # pragma: no cover - the assert below
                errors.append(error)

    threads = [threading.Thread(target=reader, args=(slot,)) for slot in range(2)]
    for thread in threads:
        thread.start()
    start.wait()
    for epoch in range(1, len(paths)):
        server.swap_epoch_from_artifact(paths[epoch], expected_epoch=epoch)
    for thread in threads:
        thread.join()

    assert not errors
    assert len(outcomes) == 50  # no query dropped across three swaps
    for query, execution in outcomes:
        assert any(
            clients[epoch]
            .verify(query, execution.result, execution.verification_object)
            .is_valid
            for epoch in clients
        ), "an answer verified against no published epoch"
    assert server.epoch == len(paths) - 1
