"""SystemConfig: validation, the legacy-kwarg shim and tolerance threading."""

import dataclasses

import pytest

from repro.core.config import (
    SCHEMES,
    SIGNATURE_MESH,
    SystemConfig,
    resolve_config,
)
from repro.core.errors import ConstructionError
from repro.core.owner import DataOwner
from repro.core.protocol import OutsourcedSystem
from repro.geometry.engine import DEFAULT_TOLERANCE, IntervalEngine, LPEngine
from repro.ifmh.ifmh_tree import IFMHTree


# -------------------------------------------------------------- validation
def test_defaults_are_the_library_defaults():
    config = SystemConfig()
    assert config.scheme == "one-signature"
    assert config.signature_algorithm == "rsa"
    assert config.bind_intersections and config.share_signatures
    assert config.build_mode == "auto"
    assert config.hash_consing and config.batch_hashing
    assert config.key_bits is None and config.tolerance is None


def test_unknown_scheme_rejected():
    with pytest.raises(ConstructionError, match="unknown scheme"):
        SystemConfig(scheme="three-signature")
    assert "three-signature" not in SCHEMES


def test_unknown_build_mode_rejected():
    with pytest.raises(ConstructionError, match="unknown build_mode"):
        SystemConfig(build_mode="recursive")


def test_bad_key_bits_and_tolerance_rejected():
    with pytest.raises(ConstructionError, match="key_bits"):
        SystemConfig(key_bits=0)
    with pytest.raises(ConstructionError, match="tolerance"):
        SystemConfig(tolerance=-1e-9)


def test_batch_hashing_requires_hash_consing():
    """The implication is enforced once, in the config."""
    config = SystemConfig(hash_consing=False, batch_hashing=True)
    assert config.batch_hashing is False
    assert SystemConfig(hash_consing=True).batch_hashing is True


def test_config_is_frozen():
    config = SystemConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.scheme = SIGNATURE_MESH


def test_dict_round_trip():
    config = SystemConfig(scheme="multi-signature", key_bits=512, tolerance=0.0)
    assert SystemConfig.from_dict(config.to_dict()) == config


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConstructionError, match="unknown SystemConfig fields"):
        SystemConfig.from_dict({"scheme": "one-signature", "sharding": True})


# ------------------------------------------------------------ resolve_config
def test_resolve_without_config_builds_from_kwargs():
    config = resolve_config(None, scheme="multi-signature", hash_consing=False)
    assert config.scheme == "multi-signature"
    assert config.hash_consing is False and config.batch_hashing is False


def test_resolve_with_config_applies_overrides():
    base = SystemConfig(scheme="one-signature", signature_algorithm="hmac")
    merged = resolve_config(base, scheme="multi-signature")
    assert merged.scheme == "multi-signature"
    assert merged.signature_algorithm == "hmac"
    assert resolve_config(base) is base


def test_resolve_rejects_non_config_objects():
    with pytest.raises(ConstructionError, match="SystemConfig"):
        resolve_config({"scheme": "one-signature"})


# ----------------------------------------------------- threading through APIs
def test_owner_legacy_kwargs_equal_config_object(univariate_dataset, univariate_template, hmac_keypair):
    legacy = DataOwner(
        univariate_dataset,
        univariate_template,
        scheme="multi-signature",
        signature_algorithm="hmac",
        build_mode="incremental",
        keypair=hmac_keypair,
    )
    configured = DataOwner(
        univariate_dataset,
        univariate_template,
        config=SystemConfig(
            scheme="multi-signature",
            signature_algorithm="hmac",
            build_mode="incremental",
        ),
        keypair=hmac_keypair,
    )
    assert legacy.config == configured.config
    assert legacy.ads.root_hash == configured.ads.root_hash
    assert legacy.ads.itree.builder == configured.ads.itree.builder == "incremental"


def test_owner_rejects_unknown_scheme(univariate_dataset, univariate_template):
    with pytest.raises(ConstructionError, match="unknown scheme"):
        DataOwner(univariate_dataset, univariate_template, scheme="bogus")


def test_tolerance_reaches_the_interval_engine(univariate_dataset, univariate_template):
    """tolerance=0.0 must be honoured, not treated as falsy (the PR 1 trap)."""
    tree = IFMHTree(
        univariate_dataset,
        univariate_template,
        config=SystemConfig(tolerance=0.0),
    )
    assert isinstance(tree.itree.engine, IntervalEngine)
    assert tree.itree.engine.tolerance == 0.0
    default = IFMHTree(univariate_dataset, univariate_template)
    assert default.itree.engine.tolerance == DEFAULT_TOLERANCE


def test_tolerance_reaches_the_lp_engine(applicant_dataset, bivariate_template, hmac_keypair):
    owner = DataOwner(
        applicant_dataset,
        bivariate_template,
        config=SystemConfig(signature_algorithm="hmac", tolerance=1e-6),
        keypair=hmac_keypair,
    )
    assert isinstance(owner.ads.itree.engine, LPEngine)
    assert owner.ads.itree.engine.tolerance == 1e-6


def test_setup_threads_tolerance_without_hand_built_engine(
    univariate_dataset, univariate_template
):
    system = OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
        tolerance=0.0,
    )
    assert system.owner.ads.itree.engine.tolerance == 0.0
    assert system.owner.config.tolerance == 0.0


def test_mesh_gets_config(univariate_dataset, univariate_template, hmac_keypair):
    owner = DataOwner(
        univariate_dataset,
        univariate_template,
        config=SystemConfig(
            scheme=SIGNATURE_MESH, signature_algorithm="hmac", share_signatures=False
        ),
        keypair=hmac_keypair,
    )
    assert owner.ads.share_signatures is False
    assert owner.ads.config.scheme == SIGNATURE_MESH
