"""Tests for the owner / server / client protocol wiring."""

import pytest

from repro.core.client import Client
from repro.core.errors import ConstructionError, VerificationError
from repro.core.owner import DataOwner, SCHEMES, SIGNATURE_MESH
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters


def test_schemes_tuple_contains_all_three():
    assert set(SCHEMES) == {ONE_SIGNATURE, MULTI_SIGNATURE, SIGNATURE_MESH}


def test_owner_rejects_unknown_scheme(univariate_dataset, univariate_template):
    with pytest.raises(ConstructionError):
        DataOwner(univariate_dataset, univariate_template, scheme="plain")


@pytest.mark.parametrize("scheme,ads_type", [
    (ONE_SIGNATURE, IFMHTree),
    (MULTI_SIGNATURE, IFMHTree),
    (SIGNATURE_MESH, SignatureMesh),
])
def test_owner_builds_matching_ads(univariate_dataset, univariate_template, scheme, ads_type):
    owner = DataOwner(
        univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
    )
    assert isinstance(owner.ads, ads_type)
    assert owner.signature_count >= 1
    assert owner.ads_size_bytes() > 0


def test_public_parameters_expose_only_public_data(univariate_dataset, univariate_template):
    owner = DataOwner(
        univariate_dataset, univariate_template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
    )
    params = owner.public_parameters()
    assert params.scheme == ONE_SIGNATURE
    assert params.template is univariate_template
    assert params.attribute_names == univariate_dataset.attribute_names
    assert params.signature_algorithm == "hmac"
    assert not hasattr(params, "signer")


def test_outsource_package_contains_everything(univariate_dataset, univariate_template):
    owner = DataOwner(
        univariate_dataset, univariate_template, scheme=MULTI_SIGNATURE, signature_algorithm="hmac"
    )
    package = owner.outsource()
    assert package.dataset is univariate_dataset
    assert package.ads is owner.ads
    assert package.public_parameters.scheme == MULTI_SIGNATURE


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize(
    "query",
    [
        TopKQuery(weights=(0.3,), k=3),
        RangeQuery(weights=(0.6,), low=2.0, high=5.0),
        KNNQuery(weights=(0.85,), k=4, target=4.0),
    ],
    ids=lambda q: type(q).__name__,
)
def test_end_to_end_query_and_verify(univariate_dataset, univariate_template, scheme, query):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
    )
    execution, report = system.query_and_verify(query)
    assert report.is_valid, report.failures
    assert execution.nodes_traversed > 0
    assert execution.query is query


def test_all_schemes_return_identical_results(univariate_dataset, univariate_template):
    query = TopKQuery(weights=(0.42,), k=4)
    ids_per_scheme = []
    for scheme in SCHEMES:
        system = OutsourcedSystem.setup(
            univariate_dataset, univariate_template, scheme=scheme, signature_algorithm="hmac"
        )
        execution, report = system.query_and_verify(query)
        assert report.is_valid
        ids_per_scheme.append(execution.result.record_ids())
    assert ids_per_scheme[0] == ids_per_scheme[1] == ids_per_scheme[2]


def test_server_accumulates_counters(univariate_dataset, univariate_template):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
    )
    before = system.server.counters.nodes_traversed
    system.server.execute(TopKQuery(weights=(0.5,), k=2))
    system.server.execute(TopKQuery(weights=(0.7,), k=2))
    assert system.server.counters.nodes_traversed > before


def test_per_query_counters_are_isolated(univariate_dataset, univariate_template):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
    )
    counters = Counters()
    execution = system.server.execute(TopKQuery(weights=(0.5,), k=2), counters=counters)
    assert execution.counters is counters
    assert counters.nodes_traversed == execution.nodes_traversed


def test_client_rejects_mismatched_vo_type(univariate_dataset, univariate_template):
    ifmh_system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
    )
    mesh_system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=SIGNATURE_MESH, signature_algorithm="hmac"
    )
    query = TopKQuery(weights=(0.5,), k=2)
    mesh_execution = mesh_system.server.execute(query)
    report = ifmh_system.client.verify(
        query, mesh_execution.result, mesh_execution.verification_object
    )
    assert not report.is_valid
    assert report.checks["vo-type"] is False


def test_client_verify_or_raise(univariate_dataset, univariate_template):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
    )
    query = TopKQuery(weights=(0.5,), k=2)
    execution = system.server.execute(query)
    system.client.verify_or_raise(query, execution.result, execution.verification_object)
    from repro.core.results import QueryResult

    truncated = QueryResult(records=execution.result.records[:-1])
    with pytest.raises(VerificationError):
        system.client.verify_or_raise(query, truncated, execution.verification_object)


def test_client_accumulates_counters(univariate_dataset, univariate_template):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=MULTI_SIGNATURE, signature_algorithm="hmac"
    )
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    execution = system.server.execute(query)
    system.client.verify(query, execution.result, execution.verification_object)
    assert system.client.counters.hash_operations > 0
    assert system.client.counters.signatures_verified == 1


def test_system_scheme_property(univariate_dataset, univariate_template):
    system = OutsourcedSystem.setup(
        univariate_dataset, univariate_template, scheme=SIGNATURE_MESH, signature_algorithm="hmac"
    )
    assert system.scheme == SIGNATURE_MESH


def test_rsa_signature_algorithm_end_to_end(univariate_dataset, univariate_template, rsa_keypair):
    owner = DataOwner(
        univariate_dataset,
        univariate_template,
        scheme=ONE_SIGNATURE,
        keypair=rsa_keypair,
    )
    server = Server(owner.outsource())
    client = Client(owner.public_parameters())
    query = TopKQuery(weights=(0.6,), k=3)
    execution = server.execute(query)
    report = client.verify(query, execution.result, execution.verification_object)
    assert report.is_valid, report.failures
    assert owner.public_parameters().signature_algorithm == "rsa"
