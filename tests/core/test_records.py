"""Tests for records, datasets and the utility template."""

import pytest

from repro.core.records import Dataset, Record, UtilityTemplate
from repro.geometry.domain import Domain


def test_record_values_are_floats():
    record = Record(record_id=1, values=(3, 2, 1))
    assert record.values == (3.0, 2.0, 1.0)
    assert record.value(1) == 2.0


def test_record_bytes_distinguish_fields():
    base = Record(record_id=1, values=(1.0, 2.0), label="a")
    assert base.to_bytes() != Record(record_id=2, values=(1.0, 2.0), label="a").to_bytes()
    assert base.to_bytes() != Record(record_id=1, values=(1.0, 2.5), label="a").to_bytes()
    assert base.to_bytes() != Record(record_id=1, values=(1.0, 2.0), label="b").to_bytes()
    assert base.to_bytes() == Record(record_id=1, values=(1.0, 2.0), label="a").to_bytes()


def test_dataset_from_rows_assigns_ids():
    dataset = Dataset.from_rows(("a", "b"), [(1, 2), (3, 4)], labels=["x", "y"])
    assert len(dataset) == 2
    assert dataset[0].record_id == 0 and dataset[1].record_id == 1
    assert dataset[1].label == "y"


def test_dataset_iteration_and_by_id():
    dataset = Dataset.from_rows(("a",), [(1,), (2,), (3,)])
    assert [r.record_id for r in dataset] == [0, 1, 2]
    assert dataset.by_id(2).values == (3.0,)
    with pytest.raises(KeyError):
        dataset.by_id(99)


def test_dataset_attribute_index():
    dataset = Dataset.from_rows(("gpa", "award"), [(3.0, 1)])
    assert dataset.attribute_index("award") == 1
    with pytest.raises(KeyError):
        dataset.attribute_index("missing")


def test_dataset_rejects_wrong_arity():
    with pytest.raises(ValueError):
        Dataset(attribute_names=("a", "b"), records=[Record(record_id=0, values=(1.0,))])


def test_dataset_rejects_duplicate_ids():
    records = [Record(record_id=0, values=(1.0,)), Record(record_id=0, values=(2.0,))]
    with pytest.raises(ValueError):
        Dataset(attribute_names=("a",), records=records)


def test_template_defaults_to_unit_box():
    template = UtilityTemplate(attributes=("a", "b"))
    assert template.domain == Domain.unit_box(2)
    assert template.dimension == 2


def test_template_rejects_empty_attributes():
    with pytest.raises(ValueError):
        UtilityTemplate(attributes=())


def test_template_rejects_domain_mismatch():
    with pytest.raises(ValueError):
        UtilityTemplate(attributes=("a",), domain=Domain.unit_box(2))


def test_template_function_for_uses_attribute_values(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa", "award"))
    record = applicant_dataset[0]
    function = template.function_for(record, applicant_dataset)
    assert function.index == record.record_id
    assert function.coefficients == (record.values[0], record.values[1])
    assert function.constant == 0.0


def test_template_constant_attribute(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa",), constant_attribute="paper")
    record = applicant_dataset[1]
    function = template.function_for(record, applicant_dataset)
    assert function.constant == record.values[2]


def test_template_score_matches_manual_computation(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa", "award"))
    record = applicant_dataset[3]
    weights = (0.6, 0.4)
    expected = record.values[0] * 0.6 + record.values[1] * 0.4
    assert template.score(record, applicant_dataset, weights) == pytest.approx(expected)


def test_functions_for_covers_every_record(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa", "award"))
    functions = template.functions_for(applicant_dataset)
    assert len(functions) == len(applicant_dataset)
    assert {f.index for f in functions} == {r.record_id for r in applicant_dataset}


def test_function_from_schema_matches_function_for(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa", "award"), constant_attribute="paper")
    for record in applicant_dataset:
        via_dataset = template.function_for(record, applicant_dataset)
        via_schema = template.function_from_schema(record, applicant_dataset.attribute_names)
        assert via_dataset == via_schema


def test_function_from_schema_missing_attribute(applicant_dataset):
    template = UtilityTemplate(attributes=("gpa", "award"))
    with pytest.raises(KeyError):
        template.function_from_schema(applicant_dataset[0], ("gpa", "paper"))


def test_template_to_bytes_distinguishes_configurations():
    a = UtilityTemplate(attributes=("x", "y"))
    b = UtilityTemplate(attributes=("y", "x"))
    c = UtilityTemplate(attributes=("x", "y"), domain=Domain.box(2, 0.0, 2.0))
    assert a.to_bytes() != b.to_bytes()
    assert a.to_bytes() != c.to_bytes()
