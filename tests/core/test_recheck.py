"""Tests for the shared query re-execution checks."""

import pytest

from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.recheck import boundary_score, recheck_query
from repro.core.records import Record, UtilityTemplate
from repro.core.results import QueryResult, VerificationReport
from repro.geometry.domain import Domain
from repro.merkle.fmh_tree import BoundaryEntry

ATTRS = ("score",)
TEMPLATE = UtilityTemplate(attributes=("score",), domain=Domain(lower=(0.0,), upper=(2.0,)))


def _record(record_id, score):
    return Record(record_id=record_id, values=(float(score),))


def _boundary(position, score=None, token=None):
    if token:
        return BoundaryEntry(leaf_index=position, token=token)
    return BoundaryEntry(leaf_index=position, item=_record(1000 + position, score))


def _run(query, scores, left, right):
    records = tuple(_record(i, s) for i, s in enumerate(scores))
    report = VerificationReport()
    recheck_query(query, QueryResult(records=records), left, right, TEMPLATE, ATTRS, report)
    return report


def test_boundary_score_token_values():
    weights = (1.0,)
    assert boundary_score(_boundary(0, token="min"), TEMPLATE, ATTRS, weights) == float("-inf")
    assert boundary_score(_boundary(9, token="max"), TEMPLATE, ATTRS, weights) == float("inf")
    assert boundary_score(_boundary(1, score=2.5), TEMPLATE, ATTRS, weights) == pytest.approx(2.5)


def test_range_honest_result_passes():
    query = RangeQuery(weights=(1.0,), low=2.0, high=4.0)
    report = _run(query, [2.0, 3.0, 4.0], _boundary(0, 1.5), _boundary(4, 4.5))
    assert report.is_valid


def test_range_detects_out_of_range_record():
    query = RangeQuery(weights=(1.0,), low=2.0, high=4.0)
    report = _run(query, [2.0, 5.0], _boundary(0, 1.5), _boundary(3, 6.0))
    assert not report.is_valid
    assert report.checks["range-soundness"] is False


def test_range_detects_dropped_prefix():
    # Left boundary still satisfies the range => something was dropped.
    query = RangeQuery(weights=(1.0,), low=2.0, high=4.0)
    report = _run(query, [3.0, 4.0], _boundary(0, 2.5), _boundary(3, 4.5))
    assert not report.is_valid
    assert report.checks["range-completeness-left"] is False


def test_range_detects_dropped_suffix():
    query = RangeQuery(weights=(1.0,), low=2.0, high=4.0)
    report = _run(query, [2.0, 3.0], _boundary(0, 1.0), _boundary(3, 3.5))
    assert not report.is_valid
    assert report.checks["range-completeness-right"] is False


def test_range_empty_result_passes_when_gap_is_genuine():
    query = RangeQuery(weights=(1.0,), low=2.0, high=2.5)
    report = _run(query, [], _boundary(0, 1.5), _boundary(1, 3.0))
    assert report.is_valid


def test_range_empty_result_fails_when_gap_hides_records():
    query = RangeQuery(weights=(1.0,), low=2.0, high=2.5)
    report = _run(query, [], _boundary(0, 2.2), _boundary(1, 3.0))
    assert not report.is_valid


def test_unsorted_result_detected():
    query = RangeQuery(weights=(1.0,), low=0.0, high=10.0)
    report = _run(query, [3.0, 2.0], _boundary(0, token="min"), _boundary(3, token="max"))
    assert not report.is_valid
    assert report.checks["result-sorted"] is False


def test_boundary_bracketing_detected():
    query = RangeQuery(weights=(1.0,), low=2.0, high=4.0)
    # Left boundary scores *above* the first result: impossible for an honest window.
    report = _run(query, [2.0, 3.0], _boundary(0, 5.0), _boundary(3, 6.0))
    assert not report.is_valid
    assert report.checks["boundaries-bracket-result"] is False


def test_topk_honest_result_passes():
    query = TopKQuery(weights=(1.0,), k=3)
    report = _run(query, [5.0, 6.0, 7.0], _boundary(0, 4.0), _boundary(4, token="max"))
    assert report.is_valid


def test_topk_must_end_at_maximum():
    query = TopKQuery(weights=(1.0,), k=3)
    report = _run(query, [5.0, 6.0, 7.0], _boundary(0, 4.0), _boundary(4, 8.0))
    assert not report.is_valid
    assert report.checks["topk-ends-at-maximum"] is False


def test_topk_wrong_cardinality_detected():
    query = TopKQuery(weights=(1.0,), k=3)
    report = _run(query, [6.0, 7.0], _boundary(0, 4.0), _boundary(3, token="max"))
    assert not report.is_valid
    assert report.checks["topk-cardinality"] is False


def test_topk_small_database_allows_fewer_records():
    query = TopKQuery(weights=(1.0,), k=10)
    report = _run(query, [6.0, 7.0], _boundary(0, token="min"), _boundary(3, token="max"))
    assert report.is_valid


def test_knn_honest_result_passes():
    query = KNNQuery(weights=(1.0,), k=2, target=5.0)
    report = _run(query, [4.5, 5.5], _boundary(0, 2.0), _boundary(3, 9.0))
    assert report.is_valid


def test_knn_detects_suboptimal_window():
    # The excluded left neighbour (4.9) is closer to the target than 6.5.
    query = KNNQuery(weights=(1.0,), k=2, target=5.0)
    report = _run(query, [5.5, 6.5], _boundary(0, 4.9), _boundary(3, 9.0))
    assert not report.is_valid
    assert report.checks["knn-window-optimal"] is False


def test_knn_wrong_cardinality_detected():
    query = KNNQuery(weights=(1.0,), k=3, target=5.0)
    report = _run(query, [5.0], _boundary(0, 2.0), _boundary(2, 9.0))
    assert not report.is_valid
    assert report.checks["knn-cardinality"] is False
