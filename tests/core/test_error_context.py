"""Structured context on protocol errors: query kind, scheme, epoch, replica.

Satellite of the resilience work: when a query fails mid-protocol the
raised error must say *where* -- which query kind, which scheme, which ADS
epoch and (once a replica pool is involved) which replica -- and a failed
verification must name the failing checks.
"""

import pytest

from repro.core.client import Client
from repro.core.errors import (
    ContextualReproError,
    QueryProcessingError,
    VerificationError,
)
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.results import VerificationReport


@pytest.fixture()
def system(univariate_dataset, univariate_template):
    return OutsourcedSystem.setup(
        univariate_dataset,
        univariate_template,
        scheme="one-signature",
        signature_algorithm="hmac",
    )


def test_queries_carry_machine_readable_kind():
    assert TopKQuery(weights=(0.5,), k=2).kind == "topk"
    assert RangeQuery(weights=(0.5,), low=0.0, high=1.0).kind == "range"
    assert KNNQuery(weights=(0.5,), k=2, target=3.0).kind == "knn"


def test_contextual_error_annotate_and_str():
    err = ContextualReproError("it broke", query_kind="topk")
    assert err.context == {"query_kind": "topk"}
    err.annotate(scheme="one-signature", epoch=2)
    assert err.context == {"query_kind": "topk", "scheme": "one-signature", "epoch": 2}
    # annotate fills only missing fields -- the first writer wins.
    err.annotate(query_kind="range", replica_id=3)
    assert err.context["query_kind"] == "topk"
    assert err.context["replica_id"] == 3
    rendered = str(err)
    assert rendered.startswith("it broke [")
    for fragment in ("query_kind=topk", "scheme=one-signature", "epoch=2", "replica_id=3"):
        assert fragment in rendered


def test_annotate_rejects_unknown_fields():
    with pytest.raises(TypeError, match="unknown error-context field"):
        ContextualReproError("x").annotate(flavor="spicy")


def test_context_free_error_renders_plain():
    assert str(QueryProcessingError("plain failure")) == "plain failure"


def test_verification_error_names_failing_checks(system):
    query = TopKQuery(weights=(0.55,), k=3)
    execution = system.server.execute(query)
    truncated = type(execution.result)(records=execution.result.records[:-1])
    with pytest.raises(VerificationError) as excinfo:
        system.client.verify_or_raise(query, truncated, execution.verification_object)
    err = excinfo.value
    assert err.failed_checks, "the error must name at least one failing check"
    report = system.client.verify(query, truncated, execution.verification_object)
    assert err.failed_checks == report.failed_checks()
    assert err.context["query_kind"] == "topk"
    assert err.context["scheme"] == "one-signature"
    assert err.context["epoch"] == system.server.epoch


def test_report_raise_if_invalid_passthrough_and_raise():
    ok = VerificationReport()
    ok.record("a", True)
    ok.raise_if_invalid()  # no exception on a valid report
    bad = VerificationReport()
    bad.record("a", True)
    bad.record("b", False, "b failed")
    assert bad.failed_checks() == ("b",)
    with pytest.raises(VerificationError, match="b failed") as excinfo:
        bad.raise_if_invalid(replica_id=7)
    assert excinfo.value.failed_checks == ("b",)
    assert excinfo.value.context == {"replica_id": 7}


def test_server_annotates_query_processing_errors(system):
    """Errors escaping Server.execute carry kind/scheme/epoch context."""
    query = TopKQuery(weights=(0.55,), k=3)
    original = system.server._execute_ifmh

    def explode(state, query, counters):
        raise QueryProcessingError("synthetic mid-query failure")

    system.server._execute_ifmh = explode
    try:
        with pytest.raises(QueryProcessingError) as excinfo:
            system.server.execute(query)
    finally:
        system.server._execute_ifmh = original
    context = excinfo.value.context
    assert context["query_kind"] == "topk"
    assert context["scheme"] == "one-signature"
    assert context["epoch"] == 0


def test_client_from_parameters_is_unaffected(system):
    """An honest execution still verifies cleanly through verify_or_raise."""
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    execution = system.server.execute(query)
    report = system.client.verify_or_raise(
        query, execution.result, execution.verification_object
    )
    assert report.is_valid


def test_client_from_artifact_context(tmp_path, system):
    system.owner.publish(tmp_path / "ads.npz")
    client = Client.from_artifact(tmp_path / "ads.npz")
    query = TopKQuery(weights=(0.55,), k=3)
    execution = system.server.execute(query)
    assert client.verify_or_raise(
        query, execution.result, execution.verification_object
    ).is_valid
