"""Unit tests for the owner's update API: validation, epochs, edge cases.

The differential correctness of the changed-path rebuild lives in
``tests/properties/test_property_updates.py``; this module covers the API
contract: id validation, batch semantics, the epoch counter, the
documented small-dataset edges, strategy selection and the owner-restart
flow.
"""

import random

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import ConstructionError
from repro.core.owner import DataOwner, UpdateReport
from repro.core.queries import TopKQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.crypto.signer import make_signer
from repro.geometry.domain import Domain

from tests.helpers import assert_matches_fresh_rebuild

_TEMPLATE = UtilityTemplate(
    attributes=("factor",),
    domain=Domain(lower=(0.0,), upper=(1.0,)),
    constant_attribute="baseline",
)


def _owner(rows, scheme="one-signature", **kwargs):
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    return DataOwner(
        dataset,
        _TEMPLATE,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac", **kwargs),
        rng=random.Random(11),
    )


_ROWS = [(3.9, 2.0), (3.5, 1.0), (3.2, 0.0), (3.8, 3.0), (2.9, 1.0)]


# ----------------------------------------------------------------- validation
def test_insert_duplicate_record_id_raises():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="duplicate record id"):
        owner.insert(Record(record_id=2, values=(1.0, 1.0)))
    assert owner.epoch == 0  # nothing was applied


def test_delete_missing_record_id_raises():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="no such record"):
        owner.delete(99)
    assert owner.epoch == 0


def test_duplicate_delete_ids_in_one_batch_raise():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="duplicate record id in the delete"):
        owner.apply_updates(deletes=[1, 1])


def test_empty_batch_raises():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="at least one insert or delete"):
        owner.apply_updates()


def test_unknown_strategy_raises():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="unknown update strategy"):
        owner.apply_updates(inserts=[Record(record_id=9, values=(1.0, 1.0))], strategy="bogus")


def test_batch_insert_colliding_with_survivor_raises():
    owner = _owner(_ROWS)
    with pytest.raises(ConstructionError, match="duplicate record id"):
        owner.apply_updates(
            inserts=[Record(record_id=0, values=(1.0, 1.0))], deletes=[1]
        )


# --------------------------------------------------------------- small edges
def test_delete_down_to_single_record_works():
    owner = _owner(_ROWS[:2])
    report = owner.delete(0)
    assert len(owner.dataset) == 1
    fresh = assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=1)])
    assert fresh.ads.subdomain_count == owner.ads.subdomain_count == 1
    assert report.epoch == 1


def test_deleting_the_whole_dataset_is_a_documented_error():
    owner = _owner(_ROWS[:1])
    with pytest.raises(ConstructionError, match="at least one record"):
        owner.delete(0)
    # The same guard covers batches that drain everything.
    owner = _owner(_ROWS[:2])
    with pytest.raises(ConstructionError, match="at least one record"):
        owner.apply_updates(deletes=[0, 1])


def test_insert_into_single_record_dataset():
    owner = _owner(_ROWS[:1])
    owner.insert(Record(record_id=1, values=(1.5, 4.0)))
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=2)])


# ------------------------------------------------------------------- batches
def test_batch_replacing_the_only_record_works():
    """Regression: a batch whose deletes drain every current record must
    not crash on an empty intermediate dataset -- an insert with a free id
    is applied first."""
    owner = _owner(_ROWS[:1])
    report = owner.apply_updates(
        inserts=[Record(record_id=1, values=(2.0, 1.0))], deletes=[0]
    )
    assert report.strategy == "incremental"
    assert [record.record_id for record in owner.dataset.records] == [1]
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=1)])


def test_batch_replacing_whole_dataset_in_place_falls_back_to_rebuild():
    """Replacing every record while reusing its id leaves no safe
    single-step order; the batch transparently rebuilds instead."""
    owner = _owner(_ROWS[:2])
    report = owner.apply_updates(
        inserts=[
            Record(record_id=0, values=(2.0, 1.0)),
            Record(record_id=1, values=(4.0, 0.5)),
        ],
        deletes=[0, 1],
    )
    assert report.strategy == "rebuild"
    assert owner.epoch == 1
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=2)])


def test_batch_deletes_then_inserts_replaces_record():
    owner = _owner(_ROWS)
    report = owner.apply_updates(
        inserts=[Record(record_id=2, values=(9.9, 0.5))], deletes=[2]
    )
    assert isinstance(report, UpdateReport)
    assert (report.inserted, report.deleted, report.epoch) == (1, 1, 1)
    assert owner.dataset.by_id(2).values == (9.9, 0.5)
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=3)])


def test_each_batch_bumps_epoch_once():
    owner = _owner(_ROWS)
    owner.apply_updates(
        inserts=[
            Record(record_id=10, values=(1.0, 1.0)),
            Record(record_id=11, values=(2.0, 2.0)),
        ],
        deletes=[0, 1],
    )
    assert owner.epoch == 1
    owner.delete(10)
    assert owner.epoch == 2
    assert owner.public_parameters().epoch == 2


# ----------------------------------------------------------------- strategies
def test_forced_rebuild_strategy_matches_incremental():
    incremental = _owner(_ROWS)
    rebuilt = _owner(_ROWS)
    record = Record(record_id=7, values=(2.2, 3.3))
    left = incremental.insert(record)
    right = rebuilt.apply_updates(inserts=[record], strategy="rebuild")
    assert left.strategy == "incremental"
    assert right.strategy == "rebuild"
    assert incremental.ads.root_hash == rebuilt.ads.root_hash
    assert_matches_fresh_rebuild(incremental, [TopKQuery(weights=(0.5,), k=3)])


def test_incremental_strategy_rejected_for_mesh():
    owner = _owner(_ROWS, scheme="signature-mesh")
    with pytest.raises(ConstructionError, match="incremental updates require"):
        owner.apply_updates(
            inserts=[Record(record_id=7, values=(2.2, 3.3))], strategy="incremental"
        )


def test_mesh_updates_rebuild_and_stay_consistent():
    owner = _owner(_ROWS, scheme="signature-mesh")
    report = owner.insert(Record(record_id=7, values=(2.2, 3.3)))
    assert report.strategy == "rebuild"
    assert owner.epoch == 1
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=3)])


def test_node_engine_configuration_falls_back_to_rebuild():
    owner = _owner(_ROWS, batch_hashing=False)
    report = owner.insert(Record(record_id=7, values=(2.2, 3.3)))
    assert report.strategy == "rebuild"
    assert_matches_fresh_rebuild(owner, [TopKQuery(weights=(0.5,), k=3)])


# ------------------------------------------------------------- owner restart
def test_owner_restart_from_artifact_and_update(tmp_path):
    owner = _owner(_ROWS)
    path = tmp_path / "ads.npz"
    owner.publish(path)
    restarted = DataOwner.from_artifact(path, keypair=owner.keypair)
    assert restarted.epoch == 0
    report = restarted.insert(Record(record_id=7, values=(2.2, 3.3)))
    assert report.strategy == "incremental"
    assert restarted.epoch == 1
    assert_matches_fresh_rebuild(restarted, [TopKQuery(weights=(0.5,), k=3)])


def test_owner_restart_rejects_mismatched_keypair(tmp_path):
    owner = _owner(_ROWS)
    path = tmp_path / "ads.npz"
    owner.publish(path)
    stranger = make_signer("hmac", rng=random.Random(999))
    with pytest.raises(ConstructionError, match="does not match"):
        DataOwner.from_artifact(path, keypair=stranger)


# ------------------------------------------------------- deferred reloading
def test_updated_tree_defers_node_reconstruction():
    owner = _owner(_ROWS)
    owner.insert(Record(record_id=7, values=(2.2, 3.3)))
    tree = owner.ads
    assert "_deferred_load" in tree.__dict__  # nothing touched the nodes yet
    assert tree.root_hash  # served without materializing
    assert tree.subdomain_count > 0
    assert "_deferred_load" in tree.__dict__
    tree.search((0.5,))  # first query touch materializes
    assert "_deferred_load" not in tree.__dict__
    assert tree.root_hash == tree.itree.root.hash_value


def test_updated_owner_publishes_and_reloads(tmp_path):
    owner = _owner(_ROWS)
    owner.insert(Record(record_id=7, values=(2.2, 3.3)))
    path = tmp_path / "updated.npz"
    owner.publish(path)
    from repro.core.server import Server

    server = Server.from_artifact(path, expected_epoch=1)
    live = Server(owner.outsource())
    query = TopKQuery(weights=(0.5,), k=3)
    assert (
        server.execute(query).verification_object
        == live.execute(query).verification_object
    )
