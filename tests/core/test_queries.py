"""Tests for the analytic query types."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery


def test_weights_are_floats():
    query = TopKQuery(weights=(1, 0), k=2)
    assert query.weights == (1.0, 0.0)
    assert query.dimension == 2


def test_empty_weights_rejected():
    with pytest.raises(InvalidQueryError):
        TopKQuery(weights=(), k=1)


def test_validate_dimension():
    query = RangeQuery(weights=(0.5, 0.5), low=0.0, high=1.0)
    query.validate(2)
    with pytest.raises(InvalidQueryError):
        query.validate(3)


def test_topk_requires_positive_k():
    with pytest.raises(InvalidQueryError):
        TopKQuery(weights=(0.5,), k=0)


def test_range_requires_ordered_boundaries():
    with pytest.raises(InvalidQueryError):
        RangeQuery(weights=(0.5,), low=2.0, high=1.0)


def test_range_accepts_point_interval():
    query = RangeQuery(weights=(0.5,), low=2.0, high=2.0)
    assert query.low == query.high == 2.0


def test_knn_requires_positive_k():
    with pytest.raises(InvalidQueryError):
        KNNQuery(weights=(0.5,), k=0, target=1.0)


def test_describe_mentions_parameters():
    assert "k=3" in TopKQuery(weights=(0.1,), k=3).describe()
    assert "[1.0, 2.0]" in RangeQuery(weights=(0.1,), low=1, high=2).describe()
    assert "y=5.0" in KNNQuery(weights=(0.1,), k=2, target=5).describe()


def test_queries_are_hashable_and_equal_by_value():
    a = TopKQuery(weights=(0.5, 0.5), k=3)
    b = TopKQuery(weights=(0.5, 0.5), k=3)
    assert a == b
    assert hash(a) == hash(b)


def test_base_query_describe():
    query = AnalyticQuery(weights=(0.25,))
    assert "0.25" in query.describe()
