"""Tests for query results and verification reports."""

import pytest

from repro.core.errors import VerificationError
from repro.core.records import Record
from repro.core.results import QueryResult, VerificationReport


def _records(count):
    return tuple(Record(record_id=i, values=(float(i),)) for i in range(count))


def test_query_result_basics():
    result = QueryResult(records=_records(3))
    assert len(result) == 3
    assert not result.is_empty
    assert result.record_ids() == [0, 1, 2]
    assert [r.record_id for r in result] == [0, 1, 2]


def test_empty_query_result():
    result = QueryResult(records=())
    assert result.is_empty
    assert len(result) == 0


def test_report_starts_valid():
    report = VerificationReport()
    assert report.is_valid
    assert report.checks == {}
    assert report.failures == []


def test_report_records_passing_check():
    report = VerificationReport()
    report.record("signature", True)
    assert report.is_valid
    assert report.checks["signature"] is True


def test_report_records_failure_with_detail():
    report = VerificationReport()
    report.record("signature", False, "root mismatch")
    assert not report.is_valid
    assert report.checks["signature"] is False
    assert "root mismatch" in report.failures


def test_report_failure_without_detail_uses_default_message():
    report = VerificationReport()
    report.record("completeness", False)
    assert any("completeness" in failure for failure in report.failures)


def test_report_check_cannot_recover_once_failed():
    report = VerificationReport()
    report.record("x", False, "first")
    report.record("x", True)
    assert report.checks["x"] is False
    assert not report.is_valid


def test_raise_if_invalid():
    report = VerificationReport()
    report.record("x", False, "broken")
    with pytest.raises(VerificationError, match="broken"):
        report.raise_if_invalid()


def test_raise_if_valid_is_noop():
    VerificationReport().raise_if_invalid()


def test_total_time_sums_timings():
    report = VerificationReport()
    report.timings = {"hashing": 0.25, "signature": 0.5}
    assert report.total_time == pytest.approx(0.75)


def test_summary_mentions_status_and_counts():
    report = VerificationReport()
    report.record("a", True)
    report.record("b", False, "bad")
    summary = report.summary()
    assert "INVALID" in summary
    assert "1/2" in summary
