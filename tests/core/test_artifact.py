"""Published ADS artifacts: save/load round trips and integrity rejection.

The contract under test: ``Server.from_artifact(path)`` answers queries
with records, verification objects, verdicts and per-query counters
bit-identical to a server handed the same ADS in process, re-hashing
nothing on load -- and any truncated, tampered or version-incompatible
file is rejected with :class:`ConstructionError` before it can serve
wrong answers.
"""

import dataclasses
import io
import json
import os
import random
import zipfile

import numpy as np
import pytest

from repro.core.artifact import (
    ARTIFACT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    ARTIFACT_MAGIC,
    load_artifact,
    load_public_parameters,
    save_artifact_bytes,
)
from repro.core.client import Client
from repro.core.config import SCHEMES, SystemConfig
from repro.core.errors import ConstructionError
from repro.core.owner import PublicParameters, ServerPackage
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Record
from repro.core.server import Server
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

QUERIES_1D = [
    TopKQuery(weights=(0.35,), k=4),
    RangeQuery(weights=(0.6,), low=1.5, high=7.0),
    KNNQuery(weights=(0.8,), k=3, target=4.0),
    RangeQuery(weights=(0.1,), low=-50.0, high=-40.0),  # empty window
]


def _published_system(scheme, n_records=24, dimension=1, seed=9, **config_kwargs):
    workload = WorkloadConfig(n_records=n_records, dimension=dimension, seed=seed)
    dataset, template = make_dataset(workload), make_template(workload)
    return OutsourcedSystem.setup(
        dataset,
        template,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac", **config_kwargs),
        rng=random.Random(seed),
    )


def _publish(system, tmp_path, name="ads.npz"):
    path = tmp_path / name
    system.owner.publish(path)
    return path


def _assert_bit_identical(system, server, client, queries):
    for query in queries:
        warm = system.server.execute(query)
        cold = server.execute(query)
        assert cold.result == warm.result
        assert cold.verification_object == warm.verification_object
        assert cold.counters.snapshot() == warm.counters.snapshot()
        warm_report = system.client.verify(
            query, warm.result, warm.verification_object
        )
        cold_report = client.verify(query, cold.result, cold.verification_object)
        assert cold_report.is_valid, cold_report.failures
        assert cold_report.summary() == warm_report.summary()
        assert cold_report.counters.snapshot() == warm_report.counters.snapshot()


# ------------------------------------------------------------- round trips
@pytest.mark.parametrize("scheme", SCHEMES)
def test_round_trip_is_bit_identical(scheme, tmp_path):
    system = _published_system(scheme)
    path = _publish(system, tmp_path)
    server = Server.from_artifact(path)
    client = Client.from_artifact(path)
    _assert_bit_identical(system, server, client, QUERIES_1D)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_load_rehashes_nothing(scheme, tmp_path):
    system = _published_system(scheme)
    path = _publish(system, tmp_path)
    loaded = load_artifact(path)
    counters = loaded.ads.counters
    assert counters.hash_operations == 0
    assert counters.physical_hash_operations == 0
    assert counters.signatures_created == 0
    if scheme != "signature-mesh":
        assert loaded.ads.root_hash == system.owner.ads.root_hash
        for warm, cold in zip(
            system.owner.ads.itree.leaves(), loaded.ads.itree.leaves()
        ):
            assert cold.hash_value == warm.hash_value
            assert loaded.ads.subdomain_digest(cold) == system.owner.ads.subdomain_digest(warm)
    else:
        assert loaded.ads.signature_count == system.owner.ads.signature_count
        assert [c.identifier for c in loaded.ads.cells] == [
            c.identifier for c in system.owner.ads.cells
        ]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_round_trip_multivariate_lp_configuration(scheme, tmp_path):
    system = _published_system(scheme, n_records=8, dimension=2, seed=4)
    path = _publish(system, tmp_path)
    server = Server.from_artifact(path)
    client = Client.from_artifact(path)
    queries = [
        TopKQuery(weights=(0.4, 0.3), k=3),
        RangeQuery(weights=(0.7, 0.2), low=0.0, high=9.0),
        KNNQuery(weights=(0.25, 0.55), k=2, target=5.0),
    ]
    _assert_bit_identical(system, server, client, queries)


@pytest.mark.parametrize("hash_consing,batch_hashing", [(True, False), (False, False)])
def test_round_trip_of_non_batched_builds(hash_consing, batch_hashing, tmp_path):
    """Builds without the arena are re-encoded into one, value-exactly."""
    system = _published_system(
        "one-signature", hash_consing=hash_consing, batch_hashing=batch_hashing
    )
    path = _publish(system, tmp_path)
    server = Server.from_artifact(path)
    client = Client.from_artifact(path)
    _assert_bit_identical(system, server, client, QUERIES_1D)


def test_round_trip_incremental_builder(tmp_path):
    system = _published_system("multi-signature", build_mode="incremental")
    path = _publish(system, tmp_path)
    loaded = load_artifact(path)
    assert loaded.meta["itree_builder"] == "incremental"
    _assert_bit_identical(
        system, Server(loaded.package), Client(loaded.public_parameters), QUERIES_1D
    )


def test_round_trip_single_record_database(tmp_path):
    system = _published_system("one-signature", n_records=1)
    path = _publish(system, tmp_path)
    server = Server.from_artifact(path)
    client = Client.from_artifact(path)
    _assert_bit_identical(
        system, server, client, [TopKQuery(weights=(0.5,), k=1)]
    )


def test_round_trip_with_rsa_verifier(tmp_path):
    """Public-key material survives the codec; verdicts stay valid."""
    workload = WorkloadConfig(n_records=10, dimension=1, seed=2)
    dataset, template = make_dataset(workload), make_template(workload)
    system = OutsourcedSystem.setup(
        dataset,
        template,
        config=SystemConfig(scheme="one-signature", key_bits=512),
        rng=random.Random(0xA11CE),
    )
    path = _publish(system, tmp_path)
    client = Client.from_artifact(path)
    assert client.parameters.verifier.scheme == "rsa"
    query = TopKQuery(weights=(0.5,), k=3)
    execution = Server.from_artifact(path).execute(query)
    report = client.verify(query, execution.result, execution.verification_object)
    assert report.is_valid, report.failures


def test_config_echo_and_counts_in_meta(tmp_path):
    system = _published_system("one-signature")
    loaded = load_artifact(_publish(system, tmp_path))
    assert loaded.config == system.owner.config
    assert loaded.meta["magic"] == ARTIFACT_MAGIC
    assert loaded.meta["format_version"] == ARTIFACT_FORMAT_VERSION
    assert loaded.meta["counts"]["records"] == 24
    assert loaded.meta["counts"]["subdomains"] == system.owner.ads.subdomain_count


def test_outsourced_system_from_artifact(tmp_path):
    system = _published_system("multi-signature")
    cold = OutsourcedSystem.from_artifact(_publish(system, tmp_path))
    assert cold.owner is None
    assert cold.scheme == "multi-signature"
    execution, report = cold.query_and_verify(TopKQuery(weights=(0.4,), k=3))
    assert report.is_valid, report.failures


def test_save_artifact_bytes_round_trips():
    system = _published_system("one-signature", n_records=6)
    blob = save_artifact_bytes(system.owner)
    loaded = load_artifact(io.BytesIO(blob))
    assert loaded.ads.root_hash == system.owner.ads.root_hash


# --------------------------------------------------------------- integrity
def test_truncated_file_rejected(tmp_path):
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(ConstructionError, match="artifact"):
        Server.from_artifact(path)


def test_corrupted_run_rejected(tmp_path):
    """A 64-byte corruption anywhere hits array data, an npy header or the
    zip structure -- every one of those must surface as ConstructionError.
    (A single flipped byte can land in non-semantic npy alignment padding,
    which carries no content; runs cannot.)"""
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    data = bytearray(path.read_bytes())
    middle = len(data) // 2
    for offset in range(middle, middle + 64):
        data[offset] ^= 0x5A
    path.write_bytes(bytes(data))
    with pytest.raises(ConstructionError):
        Server.from_artifact(path)


def test_not_an_artifact_rejected(tmp_path):
    path = tmp_path / "not-an-artifact.npz"
    path.write_bytes(b"PK\x03\x04 definitely not a real zip")
    with pytest.raises(ConstructionError):
        Server.from_artifact(path)
    with pytest.raises(ConstructionError):
        Client.from_artifact(path)


def _rezip_with(path, replacements):
    """Rewrite npz members (bypassing zip CRC protection) to test checksums."""
    with zipfile.ZipFile(path) as bundle:
        members = {name: bundle.read(name) for name in bundle.namelist()}
    members.update(replacements)
    with zipfile.ZipFile(path, "w") as bundle:
        for name, payload in members.items():
            bundle.writestr(name, payload)


def _npy_bytes(array):
    buffer = io.BytesIO()
    np.save(buffer, array)
    return buffer.getvalue()


def test_stale_checksum_after_array_swap_rejected(tmp_path):
    """A consistent zip whose arrays no longer match the stored checksum."""
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    with np.load(path) as bundle:
        digests = bundle["ads_arena_digests"].copy()
    digests[0, 0] ^= 0xFF
    _rezip_with(path, {"ads_arena_digests.npy": _npy_bytes(digests)})
    with pytest.raises(ConstructionError, match="integrity"):
        Server.from_artifact(path)


def test_tampered_meta_rejected(tmp_path):
    """Editing the header (e.g. the config echo) breaks the checksum."""
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    with np.load(path) as bundle:
        meta = json.loads(bundle["meta"].tobytes().decode("utf-8"))
    meta["config"]["bind_intersections"] = False
    blob = json.dumps(meta, sort_keys=True).encode()
    _rezip_with(path, {"meta.npy": _npy_bytes(np.frombuffer(blob, dtype=np.uint8))})
    with pytest.raises(ConstructionError, match="integrity"):
        Client.from_artifact(path)


def test_future_format_version_rejected(tmp_path):
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    with np.load(path) as bundle:
        meta = json.loads(bundle["meta"].tobytes().decode("utf-8"))
        arrays = {
            name: bundle[name]
            for name in bundle.files
            if name not in ("meta", "checksum")
        }
        meta["format_version"] = max(SUPPORTED_FORMAT_VERSIONS) + 1
        blob = json.dumps(meta, sort_keys=True).encode()
        from repro.core.artifact import _payload_checksum

        checksum = np.frombuffer(_payload_checksum(blob, arrays), dtype=np.uint8)
        _rezip_with(
            path,
            {
                "meta.npy": _npy_bytes(np.frombuffer(blob, dtype=np.uint8)),
                "checksum.npy": _npy_bytes(checksum),
            },
        )
    with pytest.raises(ConstructionError, match="format version"):
        Server.from_artifact(path)


def test_root_of_roots_mismatch_rejected(tmp_path):
    """A forged roots digest (with a matching payload checksum) is caught."""
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    with np.load(path) as bundle:
        meta = json.loads(bundle["meta"].tobytes().decode("utf-8"))
        arrays = {
            name: bundle[name]
            for name in bundle.files
            if name not in ("meta", "checksum")
        }
    meta["roots_digest"] = "00" * 32
    blob = json.dumps(meta, sort_keys=True).encode()
    from repro.core.artifact import _payload_checksum

    checksum = np.frombuffer(_payload_checksum(blob, arrays), dtype=np.uint8)
    _rezip_with(
        path,
        {
            "meta.npy": _npy_bytes(np.frombuffer(blob, dtype=np.uint8)),
            "checksum.npy": _npy_bytes(checksum),
        },
    )
    with pytest.raises(ConstructionError, match="root-of-roots"):
        Server.from_artifact(path)


def test_load_public_parameters_checks_integrity(tmp_path):
    system = _published_system("one-signature", n_records=6)
    path = _publish(system, tmp_path)
    parameters = load_public_parameters(path)
    assert isinstance(parameters, PublicParameters)
    data = bytearray(path.read_bytes())
    third = len(data) // 3
    for offset in range(third, third + 64):
        data[offset] ^= 0x5A
    path.write_bytes(bytes(data))
    with pytest.raises(ConstructionError):
        load_public_parameters(path)


# ------------------------------------------------------------- frozen types
def test_server_package_is_frozen():
    system = _published_system("one-signature", n_records=6)
    package = system.owner.outsource()
    assert isinstance(package, ServerPackage)
    with pytest.raises(dataclasses.FrozenInstanceError):
        package.dataset = None


# --------------------------------------------------------- atomic publish
def test_failed_publish_never_tears_the_old_artifact(tmp_path, monkeypatch):
    """Torn-write regression: a publish that dies mid-write must leave the
    previously published artifact byte-identical and no temp litter."""
    system = _published_system("one-signature", n_records=8)
    path = _publish(system, tmp_path)
    good_bytes = path.read_bytes()
    system.owner.insert(Record(record_id=8, values=(5.0, 1.0)))

    real_replace = os.replace

    def torn_replace(src, dst):
        if str(dst) == str(path):
            raise OSError("simulated crash at the publish rename")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", torn_replace)
    with pytest.raises(OSError, match="simulated crash"):
        system.owner.publish(path)
    monkeypatch.undo()
    assert path.read_bytes() == good_bytes  # old artifact intact, bit for bit
    assert [entry.name for entry in tmp_path.iterdir()] == [path.name]
    # The surviving artifact still cold-starts a working replica.
    server = Server.from_artifact(path)
    assert server.epoch == 0


def test_publish_report_modes(tmp_path):
    system = _published_system("one-signature", n_records=8)
    full = system.owner.publish(tmp_path / "epoch0.npz")
    assert (full.mode, full.epoch, full.fallback_reason) == ("full", 0, None)
    assert full.path == str(tmp_path / "epoch0.npz")
    system.owner.insert(Record(record_id=8, values=(5.0, 1.0)))
    delta = system.owner.publish(tmp_path / "epoch1.npz", base=tmp_path / "epoch0.npz")
    assert (delta.mode, delta.epoch, delta.fallback_reason) == ("delta", 1, None)
    server = Server.from_artifact(tmp_path / "epoch1.npz", base=tmp_path / "epoch0.npz")
    assert server.epoch == 1


def test_delta_publish_falls_back_to_full_when_base_missing(tmp_path):
    system = _published_system("one-signature", n_records=8)
    system.owner.publish(tmp_path / "epoch0.npz")
    system.owner.insert(Record(record_id=8, values=(5.0, 1.0)))
    report = system.owner.publish(
        tmp_path / "epoch1.npz", base=tmp_path / "vanished.npz"
    )
    assert report.mode == "full"
    assert "unusable" in report.fallback_reason
    # Chain repair: the fallback artifact is self-contained.
    assert Server.from_artifact(tmp_path / "epoch1.npz").epoch == 1


def test_delta_publish_falls_back_to_full_when_base_corrupt(tmp_path):
    system = _published_system("one-signature", n_records=8)
    base = _publish(system, tmp_path, "epoch0.npz")
    data = bytearray(base.read_bytes())
    for offset in range(len(data) // 2, len(data) // 2 + 64):
        data[offset] ^= 0x5A
    base.write_bytes(bytes(data))
    system.owner.insert(Record(record_id=8, values=(5.0, 1.0)))
    report = system.owner.publish(tmp_path / "epoch1.npz", base=base)
    assert report.mode == "full"
    assert "unusable" in report.fallback_reason
    assert Server.from_artifact(tmp_path / "epoch1.npz").epoch == 1
