"""The affinity-aware parallelism helper every scaling decision goes through."""

import os

import pytest

from repro.core.parallel import available_cores, resolve_worker_count


def test_available_cores_matches_affinity_when_supported():
    cores = available_cores()
    assert cores >= 1
    if hasattr(os, "sched_getaffinity"):
        assert cores == len(os.sched_getaffinity(0))
        # Affinity can never exceed what the host physically has (RL011
        # does not reach test modules, so the host read is fine here).
        assert cores <= (os.cpu_count() or cores)


def test_resolve_worker_count_none_and_zero_mean_all_cores():
    assert resolve_worker_count(None) == available_cores()
    assert resolve_worker_count(0) == available_cores()


def test_resolve_worker_count_honours_explicit_values():
    assert resolve_worker_count(1) == 1
    assert resolve_worker_count(7) == 7  # oversubscription is the caller's call


def test_resolve_worker_count_rejects_negatives():
    with pytest.raises(ValueError, match=">= 0"):
        resolve_worker_count(-1)
