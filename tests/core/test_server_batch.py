"""Tests for batched query execution, counter isolation and the score cache."""

import random
import threading

import pytest

from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.metrics.counters import Counters
from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_template,
    make_weight_vector,
)


@pytest.fixture()
def system():
    config = WorkloadConfig(n_records=24, dimension=1, seed=9)
    dataset = make_dataset(config)
    template = make_template(config)
    return OutsourcedSystem.setup(
        dataset, template, scheme="one-signature", signature_algorithm="hmac"
    )


@pytest.fixture()
def mixed_queries(system):
    rng = random.Random(4)
    template = system.owner.template
    queries = []
    for _ in range(6):
        weights = make_weight_vector(template, rng)
        queries.append(TopKQuery(weights=weights, k=3))
        queries.append(RangeQuery(weights=weights, low=1.0, high=6.0))
        queries.append(KNNQuery(weights=weights, k=2, target=4.0))
    return queries


def test_batch_matches_single_execution(system, mixed_queries):
    single_server = Server(system.owner.outsource())
    batch_server = Server(system.owner.outsource())
    singles = [single_server.execute(q) for q in mixed_queries]
    batched = batch_server.execute_batch(mixed_queries)
    assert len(batched) == len(mixed_queries)
    for alone, together in zip(singles, batched):
        assert alone.result.records == together.result.records


def test_batch_results_verify(system, mixed_queries):
    executions = system.server.execute_batch(mixed_queries)
    reports = system.client.verify_batch(executions)
    assert all(report.is_valid for report in reports)


def test_batch_per_query_counters_match_solo_execution(system, mixed_queries):
    """Counter isolation: batch amortization must not change per-query costs."""
    single_server = Server(system.owner.outsource())
    batch_server = Server(system.owner.outsource())
    singles = [single_server.execute(q) for q in mixed_queries]
    batched = batch_server.execute_batch(mixed_queries)
    for alone, together in zip(singles, batched):
        assert alone.counters.snapshot() == together.counters.snapshot()


def test_batch_cumulative_counters_are_sum_of_per_query(system, mixed_queries):
    server = Server(system.owner.outsource())
    executions = server.execute_batch(mixed_queries)
    expected = Counters()
    for execution in executions:
        expected.merge(execution.counters)
    assert server.counters.snapshot() == expected.snapshot()


def test_batch_preserves_query_order(system, mixed_queries):
    executions = system.server.execute_batch(mixed_queries)
    assert [e.query for e in executions] == mixed_queries


def test_score_cache_hits_on_repeated_weights(system):
    server = Server(system.owner.outsource())
    weights = (0.37,)
    queries = [TopKQuery(weights=weights, k=2), TopKQuery(weights=weights, k=4)]
    server.execute(queries[0])
    assert server.score_cache_misses == 1
    server.execute(queries[1])
    assert server.score_cache_hits == 1


def test_score_cache_is_bounded(system):
    server = Server(system.owner.outsource(), score_cache_size=4)
    rng = random.Random(1)
    template = system.owner.template
    for _ in range(12):
        server.execute(TopKQuery(weights=make_weight_vector(template, rng), k=2))
    assert len(server._score_cache) <= 4


def test_cached_scores_do_not_change_results(system):
    server = Server(system.owner.outsource())
    weights = (0.61,)
    query = RangeQuery(weights=weights, low=0.0, high=9.0)
    first = server.execute(query)
    second = server.execute(query)  # served from the score cache
    assert first.result.records == second.result.records
    report = system.client.verify(query, second.result, second.verification_object)
    assert report.is_valid


def test_concurrent_execution_keeps_cumulative_counters_consistent(system):
    """Cumulative counters are merged under a lock; totals must add up."""
    server = Server(system.owner.outsource())
    rng = random.Random(2)
    template = system.owner.template
    per_thread_queries = [
        [TopKQuery(weights=make_weight_vector(template, rng), k=3) for _ in range(8)]
        for _ in range(4)
    ]
    results: list = []
    lock = threading.Lock()

    def worker(queries):
        local = [server.execute(q) for q in queries]
        with lock:
            results.extend(local)

    threads = [threading.Thread(target=worker, args=(qs,)) for qs in per_thread_queries]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    expected = Counters()
    for execution in results:
        expected.merge(execution.counters)
    assert server.counters.snapshot() == expected.snapshot()


def test_batch_works_for_signature_mesh(system):
    config = WorkloadConfig(n_records=10, dimension=1, seed=9)
    dataset = make_dataset(config)
    template = make_template(config)
    mesh_system = OutsourcedSystem.setup(
        dataset, template, scheme="signature-mesh", signature_algorithm="hmac"
    )
    rng = random.Random(3)
    queries = [
        TopKQuery(weights=make_weight_vector(template, rng), k=2) for _ in range(4)
    ]
    executions = mesh_system.server.execute_batch(queries)
    reports = mesh_system.client.verify_batch(executions)
    assert all(report.is_valid for report in reports)


def test_protocol_batch_roundtrip(system, mixed_queries):
    pairs = system.query_and_verify_batch(mixed_queries)
    assert len(pairs) == len(mixed_queries)
    for execution, report in pairs:
        assert report.is_valid
        assert execution.result is not None
