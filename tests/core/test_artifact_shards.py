"""Sharded artifacts: the arena split into sidecar files, loaded back whole.

``publish(path, arena_shards=k)`` peels the three Merkle-arena arrays (the
bulk of an IFMH artifact) into ``k`` contiguous-row sidecar ``.npz`` files
next to the main bundle; the header pins every sidecar's name, row count
and payload checksum.  These tests pin the round trip (bit-identical
serving, zero re-hashing), the refusal matrix (tampered, missing, swapped
or reordered shards; delta/shard combinations; non-IFMH schemes; buffer
targets) and the format-version bump that keeps old loaders honest.
"""

import io
import random

import numpy as np
import pytest

from repro.core.artifact import (
    ARENA_SHARD_MAGIC,
    SHARDED_FORMAT_VERSION,
    load_artifact,
    load_public_parameters,
    save_artifact,
)
from repro.core.client import Client
from repro.core.config import SIGNATURE_MESH, SystemConfig
from repro.core.errors import ConstructionError
from repro.core.protocol import OutsourcedSystem
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.server import Server
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template

QUERIES = [
    TopKQuery(weights=(0.35,), k=4),
    RangeQuery(weights=(0.6,), low=1.5, high=7.0),
    KNNQuery(weights=(0.8,), k=3, target=4.0),
]


def _system(scheme="one-signature", n_records=24, seed=9):
    workload = WorkloadConfig(n_records=n_records, dimension=1, seed=seed)
    dataset, template = make_dataset(workload), make_template(workload)
    return OutsourcedSystem.setup(
        dataset,
        template,
        config=SystemConfig(scheme=scheme, signature_algorithm="hmac"),
        rng=random.Random(seed),
    )


@pytest.mark.parametrize("shards", [2, 3, 5])
def test_sharded_round_trip_is_bit_identical(tmp_path, shards):
    system = _system()
    full = tmp_path / "full.npz"
    sharded = tmp_path / "sharded.npz"
    system.owner.publish(full)
    report = system.owner.publish(sharded, arena_shards=shards)
    assert report.mode == "full"

    reference = load_artifact(full)
    loaded = load_artifact(sharded)
    assert loaded.meta["format_version"] == SHARDED_FORMAT_VERSION
    assert len(loaded.meta["arena_shards"]["files"]) == shards
    assert loaded.ads.root_hash == reference.ads.root_hash
    assert loaded.ads.counters.hash_operations == 0
    assert loaded.ads.counters.physical_hash_operations == 0
    assert np.array_equal(
        loaded.ads.to_arrays()["arena_digests"],
        reference.ads.to_arrays()["arena_digests"],
    )

    server = Server(loaded.package)
    client = Client(loaded.public_parameters)
    for query in QUERIES:
        warm = system.server.execute(query)
        cold = server.execute(query)
        assert cold.result == warm.result
        assert cold.verification_object == warm.verification_object
        report = client.verify(query, cold.result, cold.verification_object)
        assert report.is_valid, report.failures


def test_shard_sidecars_carry_their_own_header(tmp_path):
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=2)
    meta = load_artifact(path).meta
    info = meta["arena_shards"]
    assert len(info["files"]) == len(info["rows"]) == len(info["checksums"]) == 2
    assert sum(info["rows"]) == meta["counts"]["arena_nodes"]
    for file_name in info["files"]:
        with np.load(tmp_path / file_name, allow_pickle=False) as bundle:
            import json

            sidecar_meta = json.loads(bundle["meta"].tobytes().decode())
            assert sidecar_meta["magic"] == ARENA_SHARD_MAGIC
            assert sidecar_meta["artifact"] == "ads.npz"


def test_public_parameters_load_without_touching_shards(tmp_path):
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=2)
    for file_name in load_artifact(path).meta["arena_shards"]["files"]:
        (tmp_path / file_name).unlink()
    parameters = load_public_parameters(path)
    assert parameters.to_payload() == system.owner.public_parameters().to_payload()


# ---------------------------------------------------------------- refusals
def test_tampered_shard_is_refused(tmp_path):
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=3)
    victim = tmp_path / load_artifact(path).meta["arena_shards"]["files"][1]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))
    with pytest.raises(ConstructionError):
        load_artifact(path)


def test_missing_shard_is_refused(tmp_path):
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=2)
    missing = load_artifact(path).meta["arena_shards"]["files"][0]
    (tmp_path / missing).unlink()
    with pytest.raises(ConstructionError, match="missing"):
        load_artifact(path)


def test_foreign_shard_is_refused(tmp_path):
    """A valid sidecar from a *different* publish must not splice in."""
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=2)
    other = _system(seed=10)
    other_path = tmp_path / "other.npz"
    other.owner.publish(other_path, arena_shards=2)
    files = load_artifact(path).meta["arena_shards"]["files"]
    other_files = load_artifact(other_path).meta["arena_shards"]["files"]
    (tmp_path / other_files[0]).replace(tmp_path / files[0])
    with pytest.raises(ConstructionError, match="pinned"):
        load_artifact(path)


def test_reordered_shards_are_refused(tmp_path):
    system = _system()
    path = tmp_path / "ads.npz"
    system.owner.publish(path, arena_shards=2)
    first, second = (
        tmp_path / name for name in load_artifact(path).meta["arena_shards"]["files"]
    )
    spare = tmp_path / "spare.npz"
    first.replace(spare)
    second.replace(first)
    spare.replace(second)
    with pytest.raises(ConstructionError):
        load_artifact(path)


def test_delta_and_shards_are_mutually_exclusive(tmp_path):
    system = _system()
    full = tmp_path / "full.npz"
    system.owner.publish(full)
    with pytest.raises(ConstructionError, match="delta"):
        system.owner.publish(tmp_path / "bad.npz", base=full, arena_shards=2)


def test_sharded_base_is_refused_for_deltas(tmp_path):
    system = _system()
    sharded = tmp_path / "sharded.npz"
    system.owner.publish(sharded, arena_shards=2)
    report = system.owner.publish(tmp_path / "delta.npz", base=sharded)
    # Publish-side: the unusable base triggers the chain-repair fallback.
    assert report.mode == "full"
    assert "self-contained" in report.fallback_reason


def test_mesh_scheme_cannot_shard(tmp_path):
    system = _system(scheme=SIGNATURE_MESH)
    with pytest.raises(ConstructionError, match="mesh"):
        system.owner.publish(tmp_path / "mesh.npz", arena_shards=2)


def test_buffer_target_cannot_shard(tmp_path):
    system = _system()
    with pytest.raises(ConstructionError, match="filesystem"):
        save_artifact(system.owner, io.BytesIO(), arena_shards=2)


def test_single_shard_request_is_refused(tmp_path):
    system = _system()
    with pytest.raises(ConstructionError, match="at least 2"):
        system.owner.publish(tmp_path / "one.npz", arena_shards=1)
