"""Tests for signature-mesh verification."""

import dataclasses
import random

import pytest

from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.results import QueryResult
from repro.crypto.signer import make_signer
from repro.mesh.builder import SignatureMesh
from repro.mesh.verify import verify_mesh_result
from repro.metrics.counters import Counters


@pytest.fixture()
def setup(univariate_dataset, univariate_template, hmac_keypair):
    mesh = SignatureMesh(univariate_dataset, univariate_template, signer=hmac_keypair.signer)
    return mesh, univariate_dataset, univariate_template, hmac_keypair


def _verify(setup, query, result, vo, verifier=None, counters=None):
    mesh, dataset, template, keypair = setup
    return verify_mesh_result(
        query,
        result,
        vo,
        template=template,
        attribute_names=dataset.attribute_names,
        verifier=verifier or keypair.verifier,
        counters=counters,
    )


QUERIES = [
    TopKQuery(weights=(0.35,), k=3),
    RangeQuery(weights=(0.6,), low=2.0, high=5.0),
    KNNQuery(weights=(0.8,), k=4, target=4.0),
]


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
def test_honest_results_verify(setup, query):
    mesh = setup[0]
    result, vo = mesh.process_query(query)
    report = _verify(setup, query, result, vo)
    assert report.is_valid, report.failures


def test_client_verifies_one_signature_per_pair(setup):
    mesh = setup[0]
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = mesh.process_query(query)
    counters = Counters()
    report = _verify(setup, query, result, vo, counters=counters)
    assert report.is_valid
    assert counters.signatures_verified == len(result) + 1


def test_dropped_record_detected(setup):
    mesh = setup[0]
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = mesh.process_query(query)
    assert len(result) >= 2
    tampered = QueryResult(records=result.records[:-1])
    report = _verify(setup, query, tampered, vo)
    assert not report.is_valid
    assert report.checks["pair-count"] is False


def test_forged_record_detected(setup):
    mesh = setup[0]
    query = TopKQuery(weights=(0.45,), k=4)
    result, vo = mesh.process_query(query)
    records = list(result.records)
    records[1] = dataclasses.replace(records[1], values=(records[1].values[0] + 2.0,
                                                         records[1].values[1]))
    report = _verify(setup, query, QueryResult(records=tuple(records)), vo)
    assert not report.is_valid
    assert report.checks["pair-signatures"] is False


def test_tampered_pair_signature_detected(setup):
    mesh = setup[0]
    query = TopKQuery(weights=(0.45,), k=3)
    result, vo = mesh.process_query(query)
    pairs = list(vo.pair_signatures)
    pairs[0] = dataclasses.replace(pairs[0], signature=bytes(len(pairs[0].signature)))
    tampered_vo = dataclasses.replace(vo, pair_signatures=tuple(pairs))
    report = _verify(setup, query, result, tampered_vo)
    assert not report.is_valid


def test_wrong_key_detected(setup):
    mesh = setup[0]
    query = TopKQuery(weights=(0.45,), k=3)
    result, vo = mesh.process_query(query)
    other = make_signer("hmac", rng=random.Random(31337))
    report = _verify(setup, query, result, vo, verifier=other.verifier)
    assert not report.is_valid


def test_signature_from_wrong_subdomain_detected(setup):
    """Coverage check: a pair signature must cover the query's weight vector."""
    mesh = setup[0]
    weights_a = (0.05,)
    weights_b = (0.95,)
    cell_a = mesh.locate_cell(weights_a)
    cell_b = mesh.locate_cell(weights_b)
    if cell_a.identifier == cell_b.identifier:
        pytest.skip("weights landed in the same cell")
    query = TopKQuery(weights=weights_a, k=2)
    result, vo = mesh.process_query(query)
    # Splice in the signatures of the same chain positions from another cell.
    first_pair = vo.left.leaf_index
    foreign = tuple(cell_b.pair_signatures[first_pair : first_pair + len(vo.pair_signatures)])
    if len(foreign) != len(vo.pair_signatures):
        pytest.skip("foreign cell chain too short for the splice")
    tampered_vo = dataclasses.replace(vo, pair_signatures=foreign)
    report = _verify(setup, query, result, tampered_vo)
    assert not report.is_valid


def test_out_of_domain_weights_detected(setup):
    mesh = setup[0]
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = mesh.process_query(query)
    bad_query = RangeQuery(weights=(5.0,), low=1.0, high=6.0)
    report = _verify(setup, query=bad_query, result=result, vo=vo)
    assert not report.is_valid
    assert report.checks["weights-in-domain"] is False


def test_report_contains_timing_breakdown(setup):
    mesh = setup[0]
    query = TopKQuery(weights=(0.45,), k=3)
    result, vo = mesh.process_query(query)
    report = _verify(setup, query, result, vo)
    assert {"hashing", "signature", "query-recheck"} <= set(report.timings)
