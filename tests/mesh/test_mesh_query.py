"""Tests for signature-mesh query processing."""

import pytest

from repro.core.errors import QueryProcessingError
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters


@pytest.fixture()
def mesh(univariate_dataset, univariate_template, hmac_keypair):
    return SignatureMesh(univariate_dataset, univariate_template, signer=hmac_keypair.signer)


def _scores(mesh, weights):
    return sorted(f.evaluate(weights) for f in mesh.functions_by_id.values())


def test_topk_returns_highest_scores(mesh, univariate_template):
    weights = (0.7,)
    query = TopKQuery(weights=weights, k=3)
    result, vo = mesh.process_query(query)
    assert len(result) == 3
    all_scores = _scores(mesh, weights)
    returned = [
        mesh.functions_by_id[record.record_id].evaluate(weights) for record in result.records
    ]
    assert returned == sorted(returned)
    assert returned == all_scores[-3:]
    assert vo.right.token == "max"


def test_range_returns_matching_records(mesh):
    weights = (0.4,)
    query = RangeQuery(weights=weights, low=2.0, high=5.0)
    result, _vo = mesh.process_query(query)
    for record in result.records:
        score = mesh.functions_by_id[record.record_id].evaluate(weights)
        assert 2.0 <= score <= 5.0
    expected = [s for s in _scores(mesh, weights) if 2.0 <= s <= 5.0]
    assert len(result) == len(expected)


def test_knn_returns_nearest_scores(mesh):
    weights = (0.55,)
    query = KNNQuery(weights=weights, k=4, target=3.5)
    result, _vo = mesh.process_query(query)
    assert len(result) == 4
    all_scores = _scores(mesh, weights)
    returned = sorted(
        abs(mesh.functions_by_id[record.record_id].evaluate(weights) - 3.5)
        for record in result.records
    )
    expected = sorted(abs(s - 3.5) for s in all_scores)[:4]
    assert returned == pytest.approx(expected)


def test_vo_ships_one_signature_per_pair(mesh):
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = mesh.process_query(query)
    assert vo.signature_count == len(result) + 1


def test_empty_result_still_has_bracketing_pair(mesh):
    weights = (0.5,)
    scores = _scores(mesh, weights)
    gap_low = scores[2] + 1e-6
    gap_high = scores[3] - 1e-6
    if gap_low >= gap_high:
        pytest.skip("no usable score gap in this dataset")
    query = RangeQuery(weights=weights, low=gap_low, high=gap_high)
    result, vo = mesh.process_query(query)
    assert result.is_empty
    assert vo.signature_count == 1


def test_counters_include_cell_scan(mesh):
    counters = Counters()
    query = TopKQuery(weights=(0.9,), k=2)
    mesh.process_query(query, counters=counters)
    assert counters.nodes_traversed >= 1


def test_out_of_domain_query_rejected(mesh):
    with pytest.raises(QueryProcessingError):
        mesh.process_query(TopKQuery(weights=(3.0,), k=1))


def test_wrong_dimension_query_rejected(mesh):
    from repro.core.errors import InvalidQueryError

    with pytest.raises(InvalidQueryError):
        mesh.process_query(TopKQuery(weights=(0.5, 0.5), k=1))


def test_boundary_entries_are_neighbours(mesh):
    weights = (0.35,)
    query = TopKQuery(weights=weights, k=2)
    result, vo = mesh.process_query(query)
    left_score = mesh.functions_by_id[vo.left.item.record_id].evaluate(weights)
    first_score = mesh.functions_by_id[result.records[0].record_id].evaluate(weights)
    assert left_score <= first_score
