"""Tests for signature-mesh construction."""

import pytest

from repro.core.errors import ConstructionError
from repro.core.records import Dataset
from repro.geometry.arrangement import build_arrangement
from repro.mesh.builder import SignatureMesh
from repro.metrics.counters import Counters
from repro.metrics.sizes import SizeModel


@pytest.fixture()
def mesh(univariate_dataset, univariate_template, hmac_keypair):
    return SignatureMesh(univariate_dataset, univariate_template, signer=hmac_keypair.signer)


@pytest.fixture()
def unshared_mesh(univariate_dataset, univariate_template, hmac_keypair):
    return SignatureMesh(
        univariate_dataset,
        univariate_template,
        signer=hmac_keypair.signer,
        share_signatures=False,
    )


def test_empty_dataset_rejected(univariate_template):
    empty = Dataset(attribute_names=("factor", "baseline"), records=[])
    with pytest.raises(ConstructionError):
        SignatureMesh(empty, univariate_template)


def test_cell_count_matches_arrangement(mesh, univariate_dataset, univariate_template):
    functions = univariate_template.functions_for(univariate_dataset)
    arrangement = build_arrangement(functions, univariate_template.domain)
    assert mesh.cell_count == arrangement.size


def test_every_cell_has_full_chain(mesh, univariate_dataset):
    n = len(univariate_dataset)
    for cell in mesh.cells:
        assert len(cell.sorted_records) == n
        assert cell.chain_length == n + 2
        assert len(cell.pair_signatures) == cell.chain_length - 1


def test_cell_records_are_sorted_by_score(mesh, univariate_dataset, univariate_template):
    for cell in mesh.cells:
        scores = [
            univariate_template.function_from_schema(
                record, univariate_dataset.attribute_names
            ).evaluate(cell.witness)
            for record in cell.sorted_records
        ]
        assert scores == sorted(scores)


def test_unshared_signature_count_is_cells_times_chain(unshared_mesh, univariate_dataset):
    n = len(univariate_dataset)
    assert unshared_mesh.signature_count == unshared_mesh.cell_count * (n + 1)


def test_sharing_reduces_signature_count(mesh, unshared_mesh):
    assert mesh.cell_count == unshared_mesh.cell_count
    assert mesh.signature_count < unshared_mesh.signature_count


def test_shared_signature_count_lower_bound(mesh, univariate_dataset):
    # At least one signature per pair of the first cell's chain.
    assert mesh.signature_count >= len(univariate_dataset) + 1


def test_counters_track_signatures(univariate_dataset, univariate_template, hmac_keypair):
    counters = Counters()
    mesh = SignatureMesh(
        univariate_dataset, univariate_template, signer=hmac_keypair.signer, counters=counters
    )
    assert counters.signatures_created == mesh.signature_count


def test_unsigned_mesh_has_no_signatures(univariate_dataset, univariate_template):
    mesh = SignatureMesh(univariate_dataset, univariate_template, signer=None)
    assert mesh.signature_count == 0
    assert all(not cell.pair_signatures for cell in mesh.cells)


def test_multivariate_mesh_disables_sharing(applicant_dataset, bivariate_template, hmac_keypair):
    small = Dataset(attribute_names=applicant_dataset.attribute_names,
                    records=list(applicant_dataset.records[:5]))
    mesh = SignatureMesh(small, bivariate_template, signer=hmac_keypair.signer)
    assert not mesh.share_signatures
    assert mesh.signature_count == mesh.cell_count * (len(small) + 1)


def test_size_breakdown(mesh):
    model = SizeModel(signature_size=256)
    breakdown = mesh.size_breakdown(model)
    assert set(breakdown) == {"signature_bytes", "cell_bytes"}
    assert mesh.size_bytes(model) == sum(breakdown.values())
    assert breakdown["signature_bytes"] >= mesh.signature_count * 256


def test_locate_cell_counts_inspected_cells(mesh):
    counters = Counters()
    cell = mesh.locate_cell((0.85,), counters)
    assert cell.region.contains((0.85,))
    assert 1 <= counters.nodes_traversed <= mesh.cell_count
