"""Shared test oracles.

The repo's correctness bar for every state-preserving transformation --
publishing and reloading an artifact (PR 4), applying incremental updates
(PR 5) -- is the same: the transformed system must be observationally
**bit-identical** to a reference system.  The assertion block lives here
once so the artifact and update property suites (and any future
transformation) use one oracle.
"""

from __future__ import annotations

from repro.core.client import Client
from repro.core.owner import DataOwner
from repro.core.server import Server
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.mesh.builder import SignatureMesh


def assert_queries_bit_identical(expected, actual, queries, require_valid=True):
    """Both (server, client) pairs must answer every query identically.

    Checks results, verification objects, per-query server counters,
    verdict summaries and client-side verification counters -- the full
    observable surface of a query round trip.  With ``require_valid``
    (the default) every verdict must also be *valid*: two systems agreeing
    on a rejection is not equivalence.  Coarse-tolerance suites pass
    ``require_valid=False``, because a large engine tolerance legitimately
    merges subdomains whose records genuinely cross -- the scheme then
    rejects some honest answers, identically on both sides.
    """
    expected_server, expected_client = expected
    actual_server, actual_client = actual
    for query in queries:
        expected_execution = expected_server.execute(query)
        actual_execution = actual_server.execute(query)
        assert actual_execution.result == expected_execution.result, query
        assert (
            actual_execution.verification_object
            == expected_execution.verification_object
        ), query
        assert (
            actual_execution.counters.snapshot()
            == expected_execution.counters.snapshot()
        ), query
        expected_report = expected_client.verify(
            query, expected_execution.result, expected_execution.verification_object
        )
        actual_report = actual_client.verify(
            query, actual_execution.result, actual_execution.verification_object
        )
        if require_valid:
            assert actual_report.is_valid, (query, actual_report.failures)
        assert actual_report.summary() == expected_report.summary(), query
        assert (
            actual_report.counters.snapshot() == expected_report.counters.snapshot()
        ), query


def assert_ads_state_identical(expected_ads, actual_ads):
    """Owner-side ADS state must match hash for hash (scheme-aware)."""
    assert type(actual_ads) is type(expected_ads)
    if isinstance(expected_ads, SignatureMesh):
        assert actual_ads.cell_count == expected_ads.cell_count
        assert [pair.signature for pair in actual_ads.unique_signatures] == [
            pair.signature for pair in expected_ads.unique_signatures
        ]
        return
    assert actual_ads.root_hash == expected_ads.root_hash
    assert actual_ads.root_signature == expected_ads.root_signature
    for expected_leaf, actual_leaf in zip(
        expected_ads.itree.leaves(), actual_ads.itree.leaves()
    ):
        assert actual_leaf.hash_value == expected_leaf.hash_value
    if expected_ads.mode == MULTI_SIGNATURE:
        for expected_leaf, actual_leaf in zip(
            expected_ads.itree.leaves(), actual_ads.itree.leaves()
        ):
            assert actual_ads.subdomain_digest(actual_leaf) == expected_ads.subdomain_digest(
                expected_leaf
            )
            assert actual_leaf.signature == expected_leaf.signature
    assert expected_ads.mode in (ONE_SIGNATURE, MULTI_SIGNATURE)


def assert_matches_fresh_rebuild(owner: DataOwner, queries, require_valid=True):
    """The update-suite oracle: an updated owner vs a from-scratch build.

    Rebuilds the owner's *current* dataset from scratch -- same config,
    same keypair, same epoch -- and asserts the live (incrementally
    maintained) ADS is bit-identical: owner-side hashes and signatures,
    then the full query surface through fresh server/client pairs.
    """
    fresh = DataOwner(
        owner.dataset,
        owner.template,
        config=owner.config,
        keypair=owner.keypair,
        epoch=owner.epoch,
    )
    assert_ads_state_identical(fresh.ads, owner.ads)
    assert_queries_bit_identical(
        (Server(fresh.outsource()), Client(fresh.public_parameters())),
        (Server(owner.outsource()), Client(owner.public_parameters())),
        queries,
        require_valid=require_valid,
    )
    return fresh
