"""Tests for client-side IFMH verification (section 3.3 + security analysis 4.1)."""

import dataclasses
import random

import pytest

from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.core.results import QueryResult
from repro.crypto.signer import make_signer
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.verify import derive_function, verify_result
from repro.ifmh.vo import build_verification_object
from repro.metrics.counters import Counters
from repro.queryproc.window import select_window


@pytest.fixture()
def setup(univariate_dataset, univariate_template, hmac_keypair):
    trees = {
        mode: IFMHTree(
            univariate_dataset, univariate_template, mode=mode, signer=hmac_keypair.signer
        )
        for mode in (ONE_SIGNATURE, MULTI_SIGNATURE)
    }
    return trees, univariate_dataset, univariate_template, hmac_keypair


def _execute(tree, query):
    trace = tree.search(query.weights)
    leaf = trace.leaf
    scores = [f.evaluate(query.weights) for f in leaf.sorted_functions]
    window = select_window(query, scores)
    records = [tree.records_by_id[leaf.sorted_functions[i].index] for i in window.indices()]
    vo = build_verification_object(tree, trace, window)
    return QueryResult(records=tuple(records)), vo


def _verify(tree, query, result, vo, dataset, template, keypair, **kwargs):
    return verify_result(
        query,
        result,
        vo,
        template=template,
        attribute_names=dataset.attribute_names,
        verifier=keypair.verifier,
        **kwargs,
    )


QUERIES = [
    TopKQuery(weights=(0.35,), k=3),
    RangeQuery(weights=(0.6,), low=2.0, high=5.0),
    KNNQuery(weights=(0.8,), k=4, target=4.0),
]


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: type(q).__name__)
def test_honest_results_verify(setup, mode, query):
    trees, dataset, template, keypair = setup
    result, vo = _execute(trees[mode], query)
    report = _verify(trees[mode], query, result, vo, dataset, template, keypair)
    assert report.is_valid, report.failures


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_exactly_one_signature_verified(setup, mode):
    trees, dataset, template, keypair = setup
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(trees[mode], query)
    counters = Counters()
    report = _verify(trees[mode], query, result, vo, dataset, template, keypair, counters=counters)
    assert report.is_valid
    assert counters.signatures_verified == 1
    assert counters.hash_operations > 0


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_dropped_record_detected(setup, mode):
    trees, dataset, template, keypair = setup
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(trees[mode], query)
    assert len(result) >= 2
    tampered = QueryResult(records=result.records[1:])
    report = _verify(trees[mode], query, tampered, vo, dataset, template, keypair)
    assert not report.is_valid


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_forged_attribute_detected(setup, mode):
    trees, dataset, template, keypair = setup
    query = TopKQuery(weights=(0.4,), k=4)
    result, vo = _execute(trees[mode], query)
    records = list(result.records)
    forged = dataclasses.replace(records[0], values=(records[0].values[0] + 1.0, records[0].values[1]))
    records[0] = forged
    report = _verify(trees[mode], query, QueryResult(records=tuple(records)), vo, dataset, template, keypair)
    assert not report.is_valid
    assert report.checks.get("fmh-reconstruction", True) is False or not report.is_valid


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_wrong_owner_key_detected(setup, mode):
    trees, dataset, template, keypair = setup
    other = make_signer("hmac", rng=random.Random(999))
    query = TopKQuery(weights=(0.4,), k=3)
    result, vo = _execute(trees[mode], query)
    report = _verify(trees[mode], query, result, vo, dataset, template, other)
    assert not report.is_valid


def test_tampered_root_signature_detected(setup):
    trees, dataset, template, keypair = setup
    query = TopKQuery(weights=(0.4,), k=3)
    result, vo = _execute(trees[ONE_SIGNATURE], query)
    tampered_vo = dataclasses.replace(vo, root_signature=bytes([vo.root_signature[0] ^ 1]) + vo.root_signature[1:])
    report = _verify(trees[ONE_SIGNATURE], query, result, tampered_vo, dataset, template, keypair)
    assert not report.is_valid
    assert report.checks["root-signature"] is False


def test_tampered_sibling_hash_detected(setup):
    trees, dataset, template, keypair = setup
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(trees[ONE_SIGNATURE], query)
    steps = list(vo.one_signature_iv.steps)
    if not steps:
        pytest.skip("search path has no internal steps at this scale")
    steps[0] = dataclasses.replace(steps[0], sibling_hash=bytes(32))
    tampered_vo = dataclasses.replace(
        vo, one_signature_iv=dataclasses.replace(vo.one_signature_iv, steps=tuple(steps))
    )
    report = _verify(trees[ONE_SIGNATURE], query, result, tampered_vo, dataset, template, keypair)
    assert not report.is_valid


def test_flipped_direction_detected(setup):
    trees, dataset, template, keypair = setup
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(trees[ONE_SIGNATURE], query)
    steps = list(vo.one_signature_iv.steps)
    if not steps:
        pytest.skip("search path has no internal steps at this scale")
    steps[0] = dataclasses.replace(steps[0], took_above=not steps[0].took_above)
    tampered_vo = dataclasses.replace(
        vo, one_signature_iv=dataclasses.replace(vo.one_signature_iv, steps=tuple(steps))
    )
    report = _verify(trees[ONE_SIGNATURE], query, result, tampered_vo, dataset, template, keypair)
    assert not report.is_valid
    assert report.checks["search-path-directions"] is False or report.checks["root-signature"] is False


def test_wrong_subdomain_signature_detected(setup):
    trees, dataset, template, keypair = setup
    tree = trees[MULTI_SIGNATURE]
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(tree, query)
    # Replace the subdomain signature with another subdomain's signature.
    other_leaf = next(
        leaf for leaf in tree.itree.leaves() if leaf.signature != vo.multi_signature_iv.signature
    )
    tampered_iv = dataclasses.replace(vo.multi_signature_iv, signature=other_leaf.signature)
    tampered_vo = dataclasses.replace(vo, multi_signature_iv=tampered_iv)
    report = _verify(tree, query, result, tampered_vo, dataset, template, keypair)
    assert not report.is_valid


def test_weights_outside_domain_detected(setup):
    trees, dataset, template, keypair = setup
    tree = trees[MULTI_SIGNATURE]
    query = RangeQuery(weights=(0.5,), low=1.0, high=6.0)
    result, vo = _execute(tree, query)
    outside = RangeQuery(weights=(7.5,), low=1.0, high=6.0)
    report = _verify(tree, outside, result, vo, dataset, template, keypair)
    assert not report.is_valid
    assert report.checks["weights-in-domain"] is False


def test_paper_faithful_hash_rule_still_verifies_honest_results(
    univariate_dataset, univariate_template, hmac_keypair
):
    tree = IFMHTree(
        univariate_dataset,
        univariate_template,
        mode=ONE_SIGNATURE,
        signer=hmac_keypair.signer,
        bind_intersections=False,
    )
    query = TopKQuery(weights=(0.3,), k=3)
    result, vo = _execute(tree, query)
    report = verify_result(
        query,
        result,
        vo,
        template=univariate_template,
        attribute_names=univariate_dataset.attribute_names,
        verifier=hmac_keypair.verifier,
        bind_intersections=False,
    )
    assert report.is_valid, report.failures


def test_derive_function_matches_template(univariate_dataset, univariate_template):
    record = univariate_dataset[0]
    function = derive_function(record, univariate_template, univariate_dataset.attribute_names)
    assert function.evaluate((0.5,)) == pytest.approx(record.values[1] + 0.5 * record.values[0])


def test_verification_report_records_timings(setup):
    trees, dataset, template, keypair = setup
    query = TopKQuery(weights=(0.4,), k=3)
    result, vo = _execute(trees[ONE_SIGNATURE], query)
    report = _verify(trees[ONE_SIGNATURE], query, result, vo, dataset, template, keypair)
    assert {"hashing", "signature", "query-recheck"} <= set(report.timings)
    assert report.total_time >= 0.0
