"""Tests for IFMH verification-object construction."""

import pytest

from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.vo import (
    VerificationObject,
    build_verification_object,
)
from repro.metrics.counters import Counters
from repro.metrics.sizes import SizeModel
from repro.queryproc.window import ResultWindow


@pytest.fixture()
def trees(univariate_dataset, univariate_template, hmac_keypair):
    one = IFMHTree(
        univariate_dataset, univariate_template, mode=ONE_SIGNATURE, signer=hmac_keypair.signer
    )
    multi = IFMHTree(
        univariate_dataset, univariate_template, mode=MULTI_SIGNATURE, signer=hmac_keypair.signer
    )
    return one, multi


def _window(tree, weights, start, end):
    trace = tree.search(weights)
    size = len(trace.leaf.sorted_functions)
    return trace, ResultWindow(start=start, end=end, size=size)


def test_one_signature_vo_structure(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    vo = build_verification_object(one, trace, window)
    assert vo.scheme == ONE_SIGNATURE
    assert vo.root_signature == one.root_signature
    assert vo.multi_signature_iv is None
    assert len(vo.one_signature_iv.steps) == trace.depth
    assert vo.signature_count == 1


def test_one_signature_iv_steps_match_search_path(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    vo = build_verification_object(one, trace, window)
    for vo_step, search_step in zip(vo.one_signature_iv.steps, trace.steps):
        assert vo_step.hyperplane == search_step.node.hyperplane
        assert vo_step.took_above == search_step.took_above
        assert vo_step.sibling_hash == search_step.sibling.hash_value


def test_multi_signature_vo_structure(trees):
    _, multi = trees
    trace, window = _window(multi, (0.45,), 2, 5)
    vo = build_verification_object(multi, trace, window)
    assert vo.scheme == MULTI_SIGNATURE
    assert vo.root_signature is None
    assert vo.one_signature_iv is None
    assert vo.multi_signature_iv.signature == trace.leaf.signature
    assert vo.multi_signature_iv.constraints == tuple(trace.leaf.region.constraints)


def test_vo_counts_fmh_nodes(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    counters = Counters()
    vo = build_verification_object(one, trace, window, counters=counters)
    expected = (vo.fv.proof.end - vo.fv.proof.start + 1) + vo.fv.proof.node_count()
    assert counters.nodes_traversed == expected


def test_vo_validation_one_signature_requires_signature(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    vo = build_verification_object(one, trace, window)
    with pytest.raises(ValueError):
        VerificationObject(scheme=ONE_SIGNATURE, fv=vo.fv, one_signature_iv=vo.one_signature_iv)


def test_vo_validation_multi_signature_requires_iv(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    vo = build_verification_object(one, trace, window)
    with pytest.raises(ValueError):
        VerificationObject(scheme=MULTI_SIGNATURE, fv=vo.fv)


def test_vo_validation_rejects_unknown_scheme(trees):
    one, _ = trees
    trace, window = _window(one, (0.45,), 2, 5)
    vo = build_verification_object(one, trace, window)
    with pytest.raises(ValueError):
        VerificationObject(scheme="chained", fv=vo.fv, one_signature_iv=vo.one_signature_iv,
                           root_signature=b"sig")


def test_vo_sizes_positive_and_one_larger_than_multi(trees):
    one, multi = trees
    model = SizeModel(signature_size=256)
    trace_one, window = _window(one, (0.45,), 2, 5)
    vo_one = build_verification_object(one, trace_one, window)
    trace_multi, window_multi = _window(multi, (0.45,), 2, 5)
    vo_multi = build_verification_object(multi, trace_multi, window_multi)
    size_one = vo_one.size_bytes(1, model)
    size_multi = vo_multi.size_bytes(1, model)
    assert size_one > 0 and size_multi > 0
    # The one-signature VO additionally carries the IMH path.
    assert vo_one.hash_entries() >= vo_multi.hash_entries()


def test_unsigned_tree_cannot_build_multi_vo(univariate_dataset, univariate_template):
    from repro.core.errors import QueryProcessingError

    tree = IFMHTree(univariate_dataset, univariate_template, mode=MULTI_SIGNATURE, signer=None)
    trace, window = _window(tree, (0.45,), 0, 2)
    with pytest.raises(QueryProcessingError):
        build_verification_object(tree, trace, window)


def test_empty_window_vo(trees):
    one, _ = trees
    trace = one.search((0.45,))
    size = len(trace.leaf.sorted_functions)
    window = ResultWindow.empty_at(3, size)
    vo = build_verification_object(one, trace, window)
    assert vo.fv.proof.end - vo.fv.proof.start + 1 == 2  # just the two boundaries
