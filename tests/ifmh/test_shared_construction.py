"""The shared-structure construction engine must be observationally invisible.

Hash-consing trades physical SHA-256 work for cache lookups; nothing else
may change.  These tests compare full IFMH builds with the engine on vs off:
root hashes, per-subdomain FMH roots, subdomain digests, verification
objects and client verdicts must be bit-identical, the *logical* hash
counters (what Fig. 5a/7a report) must be equal, and the physical counter
must drop.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.client import Client
from repro.core.errors import ConstructionError
from repro.core.owner import DataOwner
from repro.core.queries import RangeQuery, TopKQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.core.server import Server
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.metrics.counters import Counters
from repro.workloads.generator import WorkloadConfig, make_dataset, make_template


def _build_pair(dataset, template, mode=ONE_SIGNATURE, **kwargs):
    """The same IFMH built naively and through the shared-structure engine."""
    trees, counters = {}, {}
    for hash_consing in (False, True):
        counter = Counters()
        trees[hash_consing] = IFMHTree(
            dataset, template, mode=mode, counters=counter, hash_consing=hash_consing, **kwargs
        )
        counters[hash_consing] = counter
    return trees, counters


@pytest.mark.parametrize("mode", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_roots_digests_and_logical_counts_identical(
    univariate_dataset, univariate_template, mode
):
    trees, counters = _build_pair(univariate_dataset, univariate_template, mode=mode)
    naive, consed = trees[False], trees[True]
    assert consed.root_hash == naive.root_hash
    for a, b in zip(consed.itree.leaves(), naive.itree.leaves()):
        assert a.hash_value == b.hash_value
        assert a.fmh_tree.tree.levels == b.fmh_tree.tree.levels
        assert consed.subdomain_digest(a) == naive.subdomain_digest(b)
    assert (
        counters[True].hash_operations == counters[False].hash_operations
    ), "cache hits must still count as logical hash operations"
    assert counters[True].physical_hash_operations < counters[False].physical_hash_operations
    assert (
        counters[False].physical_hash_operations == counters[False].hash_operations
    ), "the naive build performs every hash physically"


def test_engine_reduces_physical_hashing_at_least_5x():
    workload = WorkloadConfig(n_records=40, dimension=1, seed=3)
    trees, counters = _build_pair(make_dataset(workload), make_template(workload))
    assert trees[True].root_hash == trees[False].root_hash
    reduction = (
        counters[False].physical_hash_operations / counters[True].physical_hash_operations
    )
    assert reduction >= 5.0, f"only {reduction:.2f}x physical reduction at n=40"


def test_bind_intersections_ablation_unchanged(univariate_dataset, univariate_template):
    trees, _ = _build_pair(
        univariate_dataset, univariate_template, bind_intersections=False
    )
    assert trees[True].root_hash == trees[False].root_hash


@pytest.mark.parametrize("scheme", [ONE_SIGNATURE, MULTI_SIGNATURE])
def test_vos_and_client_verdicts_identical_end_to_end(scheme):
    """Same queries against both builds: identical VOs, both verify."""
    workload = WorkloadConfig(n_records=25, dimension=1, seed=1)
    dataset, template = make_dataset(workload), make_template(workload)
    queries = [
        TopKQuery(weights=(0.3,), k=4),
        RangeQuery(weights=(0.7,), low=2.0, high=6.0),
    ]
    executions = {}
    for hash_consing in (False, True):
        owner = DataOwner(
            dataset,
            template,
            scheme=scheme,
            signature_algorithm="hmac",
            hash_consing=hash_consing,
            rng=random.Random(9),
        )
        server = Server(owner.outsource())
        client = Client(owner.public_parameters())
        executions[hash_consing] = []
        for query in queries:
            execution = server.execute(query)
            report = client.verify(query, execution.result, execution.verification_object)
            assert report.is_valid, report.failures
            executions[hash_consing].append(execution)
    for naive, consed in zip(executions[False], executions[True]):
        assert consed.result.records == naive.result.records
        assert consed.verification_object == naive.verification_object


def test_duplicate_record_ids_raise_construction_error(univariate_template):
    records = [
        Record(record_id=0, values=(1.0, 2.0)),
        Record(record_id=1, values=(3.0, 4.0)),
    ]
    dataset = Dataset(attribute_names=("factor", "baseline"), records=records)
    # Bypass Dataset's own validation to model a table mutated after load.
    dataset.records.append(Record(record_id=1, values=(5.0, 0.5)))
    with pytest.raises(ConstructionError, match="duplicate record id 1"):
        IFMHTree(dataset, univariate_template)


@given(
    rows=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=8.0, allow_nan=False).map(
                lambda v: round(v, 2)
            ),
            st.floats(min_value=0.0, max_value=6.0, allow_nan=False).map(
                lambda v: round(v, 2)
            ),
        ),
        min_size=1,
        max_size=14,
    )
)
@settings(max_examples=25, deadline=None)
def test_property_cached_and_uncached_builds_agree(rows):
    """Adversarial leaf counts and tied slopes: the engine stays invisible.

    Duplicate rows are kept (they produce equal leaf digests for distinct
    records -- exactly the aliasing a hash-consing bug would trip over).
    """
    dataset = Dataset.from_rows(("factor", "baseline"), rows)
    template = UtilityTemplate(
        attributes=("factor",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="baseline",
    )
    trees, counters = _build_pair(dataset, template)
    assert trees[True].root_hash == trees[False].root_hash
    for a, b in zip(trees[True].itree.leaves(), trees[False].itree.leaves()):
        assert a.hash_value == b.hash_value
    assert counters[True].hash_operations == counters[False].hash_operations
    assert (
        counters[True].physical_hash_operations <= counters[False].physical_hash_operations
    )
