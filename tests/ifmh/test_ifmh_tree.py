"""Tests for IFMH-tree construction (steps 1-4 of section 3.1)."""

import pytest

from repro.core.errors import ConstructionError
from repro.core.records import Dataset
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.metrics.counters import Counters
from repro.metrics.sizes import SizeModel


@pytest.fixture()
def one_sig_tree(univariate_dataset, univariate_template, hmac_keypair):
    return IFMHTree(
        univariate_dataset, univariate_template, mode=ONE_SIGNATURE, signer=hmac_keypair.signer
    )


@pytest.fixture()
def multi_sig_tree(univariate_dataset, univariate_template, hmac_keypair):
    return IFMHTree(
        univariate_dataset, univariate_template, mode=MULTI_SIGNATURE, signer=hmac_keypair.signer
    )


def test_unknown_mode_rejected(univariate_dataset, univariate_template):
    with pytest.raises(ConstructionError):
        IFMHTree(univariate_dataset, univariate_template, mode="zero-signature")


def test_empty_dataset_rejected(univariate_template):
    empty = Dataset(attribute_names=("factor", "baseline"), records=[])
    with pytest.raises(ConstructionError):
        IFMHTree(empty, univariate_template, mode=ONE_SIGNATURE)


def test_every_leaf_has_fmh_tree_and_hash(one_sig_tree):
    for leaf in one_sig_tree.itree.leaves():
        assert leaf.fmh_tree is not None
        assert leaf.hash_value == leaf.fmh_tree.root
        assert leaf.fmh_tree.item_count == len(one_sig_tree.dataset)


def test_every_internal_node_has_hash(one_sig_tree):
    for node in one_sig_tree.itree.internal_nodes():
        assert node.hash_value is not None
        assert len(node.hash_value) == 32


def test_root_hash_depends_on_children(one_sig_tree):
    root = one_sig_tree.itree.root
    if root.is_intersection:
        expected = one_sig_tree.hash_function.combine(
            root.hyperplane.to_bytes(), root.above.hash_value, root.below.hash_value
        )
        assert one_sig_tree.root_hash == expected


def test_one_signature_counts(one_sig_tree):
    assert one_sig_tree.signature_count == 1
    assert one_sig_tree.root_signature is not None
    for leaf in one_sig_tree.itree.leaves():
        assert leaf.signature is None


def test_multi_signature_counts(multi_sig_tree):
    assert multi_sig_tree.signature_count == multi_sig_tree.subdomain_count
    assert multi_sig_tree.root_signature is None
    for leaf in multi_sig_tree.itree.leaves():
        assert leaf.signature is not None


def test_multi_signature_digest_binds_constraints_and_root(multi_sig_tree, hmac_keypair):
    leaf = next(iter(multi_sig_tree.itree.leaves()))
    digest = multi_sig_tree.subdomain_digest(leaf)
    assert hmac_keypair.verifier.verify(digest, leaf.signature)
    # A different subdomain's signature does not verify for this digest.
    other = [node for node in multi_sig_tree.itree.leaves() if node is not leaf][0]
    assert not hmac_keypair.verifier.verify(digest, other.signature)


def test_unsigned_tree_has_zero_signatures(univariate_dataset, univariate_template):
    tree = IFMHTree(univariate_dataset, univariate_template, mode=MULTI_SIGNATURE, signer=None)
    assert tree.signature_count == 0
    assert tree.root_signature is None


def test_counters_record_owner_work(univariate_dataset, univariate_template, hmac_keypair):
    counters = Counters()
    tree = IFMHTree(
        univariate_dataset,
        univariate_template,
        mode=MULTI_SIGNATURE,
        signer=hmac_keypair.signer,
        counters=counters,
    )
    assert counters.signatures_created == tree.subdomain_count
    assert counters.hash_operations > 0


def test_node_counts_are_consistent(one_sig_tree):
    assert one_sig_tree.imh_node_count == one_sig_tree.itree.node_count
    assert one_sig_tree.fmh_node_count == sum(
        leaf.fmh_tree.node_count for leaf in one_sig_tree.itree.leaves()
    )
    assert one_sig_tree.node_count == one_sig_tree.imh_node_count + one_sig_tree.fmh_node_count


def test_root_hash_changes_when_a_record_changes(univariate_dataset, univariate_template):
    baseline = IFMHTree(univariate_dataset, univariate_template, mode=ONE_SIGNATURE).root_hash
    rows = [tuple(record.values) for record in univariate_dataset]
    rows[0] = (rows[0][0] + 0.001, rows[0][1])
    modified = Dataset.from_rows(univariate_dataset.attribute_names, rows)
    changed = IFMHTree(modified, univariate_template, mode=ONE_SIGNATURE).root_hash
    assert baseline != changed


def test_bind_intersections_changes_root(univariate_dataset, univariate_template):
    bound = IFMHTree(
        univariate_dataset, univariate_template, mode=ONE_SIGNATURE, bind_intersections=True
    )
    unbound = IFMHTree(
        univariate_dataset, univariate_template, mode=ONE_SIGNATURE, bind_intersections=False
    )
    assert bound.root_hash != unbound.root_hash
    # Both still propagate a hash to every node.
    assert all(node.hash_value is not None for node in unbound.itree.root.iter_subtree())


def test_search_delegates_to_itree(one_sig_tree):
    trace = one_sig_tree.search((0.4,))
    assert trace.leaf.region.contains((0.4,))


def test_size_breakdown_and_total(one_sig_tree, multi_sig_tree):
    model = SizeModel(signature_size=256)
    breakdown = one_sig_tree.size_breakdown(model)
    assert set(breakdown) == {"imh_bytes", "fmh_bytes", "sorted_list_bytes", "signature_bytes"}
    assert all(value >= 0 for value in breakdown.values())
    assert one_sig_tree.size_bytes(model) == sum(breakdown.values())
    # Multi-signature stores one signature per subdomain, so it is larger.
    assert multi_sig_tree.size_bytes(model) > one_sig_tree.size_bytes(model)
    assert one_sig_tree.size_breakdown(model)["signature_bytes"] == 256


def test_bivariate_build(applicant_dataset, bivariate_template, hmac_keypair):
    tree = IFMHTree(
        applicant_dataset, bivariate_template, mode=ONE_SIGNATURE, signer=hmac_keypair.signer
    )
    assert tree.subdomain_count >= 1
    trace = tree.search((0.3, 0.7))
    assert trace.leaf.region.contains((0.3, 0.7))
