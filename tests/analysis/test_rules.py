"""Fixture-backed self-tests: each rule fires on its violating fixture at
the exact (rule, line) positions and stays silent on the compliant twin."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "src" / "repro"


def lint_fixture(relpath: str):
    return lint_paths([str(FIXTURES / relpath)], LintConfig())


BAD_FIXTURES = {
    "ifmh/rl001_bad.py": [("RL001", 9), ("RL001", 13), ("RL001", 17)],
    "ifmh/rl002_bad.py": [("RL002", 6), ("RL002", 10)],
    "core/rl003_bad.py": [("RL003", 7), ("RL003", 11), ("RL003", 15), ("RL003", 20)],
    "merkle/rl004_bad.py": [("RL004", 10), ("RL004", 16), ("RL004", 19), ("RL004", 23)],
    "geometry/rl005_bad.py": [("RL005", 9), ("RL005", 13), ("RL005", 17)],
    "core/rl006_bad.py": [("RL006", 18), ("RL006", 21), ("RL006", 24)],
    "merkle/rl007_bad.py": [("RL007", 5), ("RL007", 14)],
    "resilience/rl008_bad.py": [("RL008", 8), ("RL008", 16), ("RL008", 23)],
    "core/artifact/rl009_bad.py": [("RL009", 7), ("RL009", 11), ("RL009", 16)],
    "serving/rl010_bad.py": [
        ("RL010", 8),
        ("RL010", 12),
        ("RL010", 16),
        ("RL010", 20),
    ],
    "bench/rl011_bad.py": [("RL011", 8), ("RL011", 12)],
}

OK_FIXTURES = [
    "ifmh/rl001_ok.py",
    "ifmh/rl002_ok.py",
    "core/rl003_ok.py",
    "merkle/rl004_ok.py",
    "geometry/rl005_ok.py",
    "core/rl006_ok.py",
    "merkle/rl007_ok.py",
    "resilience/rl008_ok.py",
    "core/artifact/rl009_ok.py",
    "serving/rl010_ok.py",
    "serving/recorder.py",
    "bench/rl011_ok.py",
]


@pytest.mark.parametrize("relpath", sorted(BAD_FIXTURES))
def test_rule_fires_on_violating_fixture(relpath):
    result = lint_fixture(relpath)
    got = [(finding.rule, finding.line) for finding in result.findings]
    assert got == BAD_FIXTURES[relpath]
    assert all(finding.path.endswith(relpath) for finding in result.findings)


@pytest.mark.parametrize("relpath", OK_FIXTURES)
def test_no_rule_fires_on_compliant_fixture(relpath):
    result = lint_fixture(relpath)
    assert result.findings == []
    assert result.files_checked == 1


def test_whole_fixture_tree_exercises_every_rule():
    result = lint_paths([str(FIXTURES)], LintConfig())
    fired = {finding.rule for finding in result.findings}
    assert {f"RL{n:03d}" for n in range(1, 12)} <= fired


def test_findings_carry_messages_and_render():
    result = lint_fixture("ifmh/rl001_bad.py")
    rendered = result.findings[0].render()
    assert "RL001" in rendered
    assert "rl001_bad.py:9:" in rendered
    assert "repro.crypto.hashing" in result.findings[0].message
