"""[tool.reprolint] configuration: defaults, excludes, per-rule options,
and loud failure on typos."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, all_rules, lint_paths
from repro.analysis.config import LintConfigError, load_config

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "src" / "repro"
KNOWN = [rule.rule_id for rule in all_rules()]


def write_pyproject(tmp_path, body: str) -> Path:
    path = tmp_path / "pyproject.toml"
    path.write_text(body)
    return path


def test_missing_file_and_missing_table_yield_defaults(tmp_path):
    assert load_config(tmp_path / "nope.toml", KNOWN) == LintConfig()
    empty = write_pyproject(tmp_path, "[tool.other]\nx = 1\n")
    assert load_config(empty, KNOWN) == LintConfig()


def test_exclude_and_disable_parsed(tmp_path):
    path = write_pyproject(
        tmp_path,
        '[tool.reprolint]\nexclude = ["tests/analysis/fixtures"]\ndisable = ["rl006"]\n',
    )
    config = load_config(path, KNOWN)
    assert config.exclude == ("tests/analysis/fixtures",)
    assert config.disabled_rules == ("RL006",)
    assert config.is_excluded("tests/analysis/fixtures/src/repro/core/rl006_bad.py")
    assert not config.is_excluded("tests/analysis/test_config.py")


def test_unknown_key_raises(tmp_path):
    path = write_pyproject(tmp_path, "[tool.reprolint]\nexcludes = []\n")
    with pytest.raises(LintConfigError, match="unknown"):
        load_config(path, KNOWN)


def test_unknown_rule_in_disable_raises(tmp_path):
    path = write_pyproject(tmp_path, '[tool.reprolint]\ndisable = ["RL999"]\n')
    with pytest.raises(LintConfigError, match="RL999"):
        load_config(path, KNOWN)


def test_unknown_rule_section_raises(tmp_path):
    path = write_pyproject(tmp_path, "[tool.reprolint.rl999]\nscopes = []\n")
    with pytest.raises(LintConfigError, match="unknown rule"):
        load_config(path, KNOWN)


def test_rule_options_normalize_kebab_case(tmp_path):
    path = write_pyproject(
        tmp_path, '[tool.reprolint.rl001]\nallowed-modules = ["repro.crypto"]\n'
    )
    config = load_config(path, KNOWN)
    assert config.options_for("RL001") == {"allowed_modules": ("repro.crypto",)} or (
        config.options_for("RL001") == {"allowed_modules": ["repro.crypto"]}
    )


def test_unknown_rule_option_fails_at_lint_time():
    config = LintConfig(rule_options={"RL001": {"allowed_module": ["x"]}})
    with pytest.raises(LintConfigError, match="no option"):
        lint_paths([str(FIXTURES / "ifmh" / "rl001_ok.py")], config)


def test_disabled_rule_does_not_fire():
    config = LintConfig(disabled_rules=("RL005",))
    result = lint_paths([str(FIXTURES / "geometry" / "rl005_bad.py")], config)
    assert result.findings == []


def test_rule_option_override_changes_behaviour():
    # Widening RL001's allowlist to cover repro.ifmh silences the bad fixture.
    config = LintConfig(
        rule_options={"RL001": {"allowed_modules": ["repro.crypto", "repro.ifmh"]}}
    )
    result = lint_paths([str(FIXTURES / "ifmh" / "rl001_bad.py")], config)
    assert result.findings == []


def test_exclude_skips_files():
    target = FIXTURES / "geometry" / "rl005_bad.py"
    config = LintConfig(exclude=("tests/analysis/fixtures",))
    result = lint_paths([str(target)], config)
    assert result.files_checked == 0
    assert result.findings == []
