"""RL009 compliant: truncating writes live inside the atomic helpers;
appends and reads are legal anywhere."""

import io
import os

import numpy as np


def atomic_write_bytes(path, payload):
    temp = str(path) + ".tmp"
    descriptor = os.open(temp, os.O_WRONLY | os.O_CREAT)
    with os.fdopen(descriptor, "wb") as stream:
        stream.write(payload)
    os.replace(temp, path)


def _encode_npz(entries):
    buffer = io.BytesIO()
    np.savez(buffer, **entries)
    return buffer.getvalue()


def append_frame(path, frame):
    with open(path, "ab") as stream:
        stream.write(frame)


def read_back(path):
    with open(path, "rb") as stream:
        return stream.read()
