"""RL009 violations: bare truncating writes in a persistence module."""

import numpy as np


def publish(path, entries):
    np.savez(path, **entries)


def overwrite(path, payload):
    with open(path, "wb") as stream:
        stream.write(payload)


def exclusive_create(path, payload):
    stream = open(path, mode="xb")
    stream.write(payload)
    stream.close()
