"""RL006 fixture: lock-guarded state written without the lock."""

import threading


class Server:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: dict = {}
        self._results: list = []

    def execute_batch(self, batch) -> None:
        with self._lock:
            self._pending.update(batch)
            self._results.append(len(batch))

    def sneak_in(self, key, value) -> None:
        self._pending[key] = value  # line 18: guarded attr written lock-free

    def reset(self) -> None:
        self._results = []  # line 21: guarded attr rebound lock-free

    def drop(self, key) -> None:
        self._pending.pop(key, None)  # line 24: mutator call lock-free
