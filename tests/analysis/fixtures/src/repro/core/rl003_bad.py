"""RL003 fixture: mutating frozen configuration dataclasses."""

from repro.core.config import SystemConfig


def tweak(config: SystemConfig) -> None:
    config.fanout = 4  # line 7: attribute assignment on frozen dataclass


def escape_hatch(config: SystemConfig) -> None:
    object.__setattr__(config, "fanout", 4)  # line 11: __setattr__ escape


def builtin_setattr(config: SystemConfig) -> None:
    setattr(config, "fanout", 4)  # line 15: setattr escape


def from_constructor() -> None:
    config = SystemConfig()
    config.batch_hashing = False  # line 20: inferred from construction
