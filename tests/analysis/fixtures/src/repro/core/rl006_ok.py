"""RL006 fixture: every write to guarded state holds the lock."""

import threading


class Server:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: dict = {}
        self._results: list = []
        self._scratch: list = []  # never written under the lock: unguarded

    def execute_batch(self, batch) -> None:
        with self._lock:
            self._pending.update(batch)
            self._results.append(len(batch))

    def drop(self, key) -> None:
        with self._lock:
            self._pending.pop(key, None)

    def note(self, item) -> None:
        # _scratch is not lock-guarded anywhere, so lock-free writes are fine.
        self._scratch.append(item)
