"""RL003 fixture: frozen dataclasses are replaced, never mutated."""

from dataclasses import dataclass, replace

from repro.core.config import SystemConfig


def tweak(config: SystemConfig) -> SystemConfig:
    return replace(config, fanout=4)


@dataclass(frozen=True)
class SystemConfig:  # shadows the import for the __post_init__ case below
    fanout: int = 2

    def __post_init__(self) -> None:
        # Construction-time normalisation is the sanctioned escape hatch.
        object.__setattr__(self, "fanout", max(2, self.fanout))


class Mutable:
    def __init__(self) -> None:
        self.fanout = 2

    def tweak(self) -> None:
        self.fanout = 4  # plain mutable class: not in the frozen set
