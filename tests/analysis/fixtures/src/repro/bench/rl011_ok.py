"""RL011 fixture: scaling through the sanctioned affinity helper."""

from repro.core.parallel import available_cores, resolve_worker_count


def worker_pool_size(workers: int | None) -> int:
    return resolve_worker_count(workers)


def throughput_floor(per_core: float) -> float:
    return per_core * available_cores()
