"""RL011 fixture: scaling decisions derived from the host core count."""

import multiprocessing
import os


def worker_pool_size() -> int:
    return max(1, (os.cpu_count() or 1) - 1)  # line 8: host cores, not affinity


def throughput_floor(per_core: float) -> float:
    return per_core * multiprocessing.cpu_count()  # line 12: same via mp alias
