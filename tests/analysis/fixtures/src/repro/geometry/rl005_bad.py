"""RL005 fixture: tolerance-based predicates in exact geometry code."""

import math

import numpy as np


def same_point(a: float, b: float) -> bool:
    return math.isclose(a, b)  # line 9: math.isclose


def same_array(xs, ys) -> bool:
    return np.allclose(xs, ys)  # line 13: numpy.allclose


def snapped(x: float) -> float:
    return round(x, 6)  # line 17: builtin round
