"""Suppression fixture: a reasoned disable silences the finding."""

import math


def same_point(a: float, b: float) -> bool:
    return math.isclose(a, b)  # reprolint: disable=RL005 -- fixture demonstrating a sanctioned tolerance
