"""RL005 fixture: exact integer comparisons only."""

from fractions import Fraction


def same_point(a: int, b: int) -> bool:
    return a == b


def orientation(ax: int, ay: int, bx: int, by: int, cx: int, cy: int) -> int:
    cross = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def exact_midpoint(a: int, b: int) -> Fraction:
    return Fraction(a + b, 2)
