"""Suppression fixture: a directive with no matching finding is stale."""


def same_point(a: int, b: int) -> bool:
    return a == b  # reprolint: disable=RL005 -- left behind after the isclose call was removed
