"""Suppression fixture: a reasonless disable suppresses nothing."""

import math


def same_point(a: float, b: float) -> bool:
    return math.isclose(a, b)  # reprolint: disable=RL005
