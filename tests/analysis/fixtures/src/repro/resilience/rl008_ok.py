"""RL008 fixture (compliant): narrow handlers classify, broad ones re-raise."""


class ReplicaFault(Exception):
    pass


def retry_loop(pool, query):
    for replica in pool:
        try:
            return replica.execute(query)
        except ReplicaFault:  # narrow: catching the type IS the classification
            continue
    return None


def annotate_and_reraise(replica, query, log):
    try:
        return replica.execute(query)
    except Exception as err:  # broad, but every failure is re-raised
        log.append(str(err))
        raise
