"""RL008 fixture: broad exception handlers that swallow failures."""


def retry_loop(pool, query):
    for replica in pool:
        try:
            return replica.execute(query)
        except Exception:  # line 8: swallowed broad except in a retry loop
            continue
    return None


def probe(replica):
    try:
        replica.execute(None)
    except:  # noqa: E722  # line 16: bare except, swallowed
        pass


def classify(replica, query):
    try:
        return replica.execute(query)
    except (ValueError, BaseException):  # line 23: BaseException in a tuple
        return None
