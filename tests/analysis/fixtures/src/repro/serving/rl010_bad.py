"""RL010 violations: wall-clock and unseeded entropy outside the clock module."""

import random
import time


def pace(interval):
    time.sleep(interval)


def stamp():
    return time.time()


def jitter():
    return random.random()


def fresh_rng():
    return random.Random()
