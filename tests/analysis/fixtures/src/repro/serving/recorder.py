"""The designated clock module (``repro.serving.recorder``): exempt from
RL010 by module name, so direct wall-clock access is legal here."""

import time


def wall_now():
    return time.time()


def nap(seconds):
    time.sleep(seconds)
