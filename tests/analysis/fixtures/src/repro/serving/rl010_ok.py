"""RL010 compliant: pacing through the injected clock, seeded draws only,
durations from the monotonic counter (legal everywhere, as under RL004)."""

import random
import time


def pace(clock, deadline):
    clock.sleep_until(deadline)


def service_time(start):
    return time.perf_counter() - start


def draws(seed):
    rng = random.Random(seed)
    return [rng.expovariate(1.0) for _ in range(3)]
