"""RL004 fixture: unseeded entropy and wall-clock reads in digest code."""

import random
import time

import numpy as np


def shuffle_leaves(leaves: list) -> list:
    rng = random.Random()  # line 10: unseeded Random
    rng.shuffle(leaves)
    return leaves


def jitter() -> float:
    return random.random()  # line 16: global random

def numpy_noise(n: int):
    return np.random.rand(n)  # line 19: legacy numpy global RNG


def stamp() -> float:
    return time.time()  # line 23: wall clock
