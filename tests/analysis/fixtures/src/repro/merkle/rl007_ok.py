"""RL007 fixture: both sides of every toggle stay callable."""


def build_tree(leaves, hash_consing: bool):
    if hash_consing:
        return _build_fast(leaves)
    return _build_slow(leaves)


def hash_level(nodes, batch_hashing: bool):
    return _hash_batched(nodes) if batch_hashing else _hash_sequential(nodes)


def pick_builder(builder: str):
    if builder == "array":
        return _build_fast
    if builder == "pointer":
        return _build_slow
    # Rejecting an *invalid* toggle value is fine; only removing an
    # implementation with NotImplementedError is banned.
    raise ValueError(f"unknown builder {builder!r}")


def _build_fast(leaves):
    return leaves


def _build_slow(leaves):
    return leaves


def _hash_batched(nodes):
    return nodes


def _hash_sequential(nodes):
    return nodes
