"""RL004 fixture: seeded RNGs and monotonic clocks only."""

import random
import time

import numpy as np


def shuffle_leaves(leaves: list, seed: int) -> list:
    rng = random.Random(seed)
    rng.shuffle(leaves)
    return leaves


def numpy_noise(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def elapsed(start: float) -> float:
    return time.perf_counter() - start
