"""RL007 fixture: dead slow branches behind fast-path toggles."""


def build_tree(leaves, hash_consing: bool):
    if hash_consing or True:  # line 5: constant short-circuit
        return _build_fast(leaves)
    return _build_slow(leaves)


def hash_level(nodes, batch_hashing: bool):
    if batch_hashing:
        return _hash_batched(nodes)
    else:
        raise NotImplementedError("slow path removed")  # line 14: dead branch


def _build_fast(leaves):
    return leaves


def _build_slow(leaves):
    return leaves


def _hash_batched(nodes):
    return nodes
