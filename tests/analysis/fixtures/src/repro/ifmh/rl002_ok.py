"""RL002 fixture: every signed message flows through an allowlisted builder."""

import numpy as np

from repro.crypto.hashing import HashFunction
from repro.mesh.binding import epoch_bound_combine


def sign_root(signer, hash_function: HashFunction, root: bytes, epoch: int) -> bytes:
    message = epoch_bound_combine(hash_function, epoch, root)
    return signer.sign(message)


def verify_root(verifier, hash_function: HashFunction, root: bytes, epoch: int, signature: bytes) -> bool:
    return verifier.verify(epoch_bound_combine(hash_function, epoch, root), signature)


def unrelated_arity(client, query, result, vo) -> bool:
    # Three positional args: not a Verifier.verify(message, signature) call.
    return client.verify(query, result, vo)


def unrelated_module_function(x):
    # Module receiver: numpy's sign, not a Signer.
    return np.sign(x)
