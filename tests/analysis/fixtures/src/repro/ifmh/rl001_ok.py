"""RL001 fixture: digests routed through the counted wrappers."""

from repro.crypto.hashing import HashFunction, sha256, sha256_many


def leaf_digest(payload: bytes) -> bytes:
    return sha256(payload)


def many_digest(parts: list) -> bytes:
    return sha256_many(*parts)


def counted_digest(hash_function: HashFunction, payload: bytes) -> bytes:
    return hash_function(payload)
