"""RL002 fixture: signing a message not built by an epoch-binding helper."""


def sign_root(signer, root: bytes, epoch: int) -> bytes:
    message = root + epoch.to_bytes(8, "big")
    return signer.sign(message)  # line 6: message not epoch-bound


def verify_root(verifier, root: bytes, signature: bytes) -> bool:
    return verifier.verify(root, signature)  # line 10: raw root verified
