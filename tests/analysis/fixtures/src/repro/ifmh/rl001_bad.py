"""RL001 fixture: direct hashlib/hmac use outside repro.crypto."""

import hashlib
import hmac
from hashlib import sha256 as raw_sha256


def leaf_digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()  # line 9: hashlib.sha256


def tagged_digest(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, "sha256").digest()  # line 13: hmac.new


def aliased_digest(payload: bytes) -> bytes:
    return raw_sha256(payload).digest()  # line 17: aliased hashlib.sha256
