"""Suppression-directive semantics: rationale is mandatory, stale
directives surface under --strict, and the audit rules are unsuppressible."""

from pathlib import Path

from repro.analysis import LintConfig, lint_paths, lint_sources
from repro.analysis.findings import PARSE_RULE, SUPPRESSION_RULE

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "src" / "repro" / "geometry"


def lint_fixture(name: str, *, strict: bool = False):
    return lint_paths([str(FIXTURES / name)], LintConfig(strict=strict))


def test_reasoned_disable_suppresses_the_finding():
    result = lint_fixture("suppress_with_reason.py")
    assert result.findings == []
    assert result.suppressed == 1


def test_reasonless_disable_suppresses_nothing_and_is_a_finding():
    result = lint_fixture("suppress_no_reason.py")
    rules = [finding.rule for finding in result.findings]
    assert rules == ["RL005", SUPPRESSION_RULE]
    assert result.suppressed == 0
    audit = result.findings[1]
    assert "no rationale" in audit.message


def test_stale_suppression_silent_by_default_reported_under_strict():
    relaxed = lint_fixture("suppress_stale.py")
    assert relaxed.findings == []

    strict = lint_fixture("suppress_stale.py", strict=True)
    assert [finding.rule for finding in strict.findings] == [SUPPRESSION_RULE]
    assert "stale suppression" in strict.findings[0].message


def test_reasoned_suppression_not_stale_under_strict():
    result = lint_fixture("suppress_with_reason.py", strict=True)
    assert result.findings == []
    assert result.suppressed == 1


def test_audit_rules_cannot_be_suppressed():
    source = (
        "import math\n"
        "\n"
        "def f(a, b):\n"
        "    # reprolint: disable=RL000 -- trying to silence the audit\n"
        "    return math.isclose(a, b)  # reprolint: disable=RL005\n"
    )
    result = lint_sources({"src/repro/geometry/evil.py": source})
    rules = sorted(finding.rule for finding in result.findings)
    # RL005 survives (its disable has no reason), plus two RL000 audits:
    # one for the unsuppressible target, one for the missing rationale.
    assert rules == [SUPPRESSION_RULE, SUPPRESSION_RULE, "RL005"]


def test_multi_rule_directive_suppresses_each_named_rule():
    source = (
        "import math\n"
        "import time\n"
        "\n"
        "def f(a, b):\n"
        "    return math.isclose(a + time.time(), b)  # reprolint: disable=RL004,RL005 -- fixture covering a multi-rule line\n"
    )
    # geometry is in RL005 scope but not RL004's; use a module inside both.
    result = lint_sources({"src/repro/geometry/multi.py": source})
    assert result.findings == []
    assert result.suppressed >= 1


def test_unparsable_file_reports_parse_rule():
    result = lint_sources({"src/repro/core/broken.py": "def f(:\n"})
    assert [finding.rule for finding in result.findings] == [PARSE_RULE]


def test_parse_rule_cannot_be_suppressed():
    result = lint_sources(
        {
            "src/repro/core/broken.py": (
                "# reprolint: disable=RL900 -- nope\n" "def f(:\n"
            )
        }
    )
    assert PARSE_RULE in [finding.rule for finding in result.findings]
