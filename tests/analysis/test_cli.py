"""End-to-end CLI tests: exit codes, JSON format, --output, --list-rules,
and the acceptance gate that the real tree lints clean."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path("tests/analysis/fixtures/src/repro")


def run_cli(*argv: str, cwd: Path = REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_clean_tree_exits_zero():
    proc = run_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_findings_exit_one_with_text_report():
    proc = run_cli("--no-config", str(FIXTURES / "geometry" / "rl005_bad.py"))
    assert proc.returncode == 1
    assert "RL005" in proc.stdout
    assert "rl005_bad.py:9:" in proc.stdout


def test_json_report_shape():
    proc = run_cli(
        "--no-config", "--format", "json", str(FIXTURES / "ifmh" / "rl001_bad.py")
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["tool"] == "reprolint"
    assert payload["report_version"] == 1
    assert payload["files_checked"] == 1
    rules = [finding["rule"] for finding in payload["findings"]]
    assert rules == ["RL001", "RL001", "RL001"]
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "column", "rule", "message"}


def test_output_file_written_even_on_findings(tmp_path):
    report = tmp_path / "reprolint.json"
    proc = run_cli(
        "--no-config",
        "--format",
        "json",
        "--output",
        str(report),
        str(FIXTURES / "geometry" / "rl005_bad.py"),
    )
    assert proc.returncode == 1
    payload = json.loads(report.read_text())
    assert payload["findings"]


def test_config_error_exits_two(tmp_path):
    bad = tmp_path / "pyproject.toml"
    bad.write_text("[tool.reprolint]\nno_such_key = true\n")
    proc = run_cli("--config", str(bad), "src")
    assert proc.returncode == 2
    assert "configuration error" in proc.stderr


def test_list_rules_catalogue():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in [f"RL{n:03d}" for n in range(1, 11)] + ["RL000"]:
        assert rule_id in proc.stdout


def test_strict_mode_clean_on_real_tree():
    proc = run_cli("--strict", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
