"""Tests for KNN-on-score window selection."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.queryproc.knn import knn_window


def _bruteforce_distances(scores, k, target):
    ranked = sorted(range(len(scores)), key=lambda i: (abs(scores[i] - target), scores[i]))
    return sorted(abs(scores[i] - target) for i in ranked[:k])


def test_knn_window_is_contiguous_and_correct_size():
    scores = [1.0, 2.0, 4.0, 8.0, 16.0]
    window = knn_window(scores, k=3, target=5.0)
    assert window.length == 3
    assert list(window.indices()) == [1, 2, 3]


def test_knn_target_below_all_scores():
    scores = [5.0, 6.0, 7.0]
    window = knn_window(scores, k=2, target=0.0)
    assert list(window.indices()) == [0, 1]


def test_knn_target_above_all_scores():
    scores = [5.0, 6.0, 7.0]
    window = knn_window(scores, k=2, target=100.0)
    assert list(window.indices()) == [1, 2]


def test_knn_k_equals_size_returns_everything():
    scores = [1.0, 2.0, 3.0]
    window = knn_window(scores, k=3, target=2.0)
    assert list(window.indices()) == [0, 1, 2]


def test_knn_k_exceeds_size_returns_everything():
    scores = [1.0, 2.0, 3.0]
    window = knn_window(scores, k=9, target=2.0)
    assert list(window.indices()) == [0, 1, 2]


def test_knn_exact_hit_included():
    scores = [1.0, 2.0, 3.0, 4.0]
    window = knn_window(scores, k=1, target=3.0)
    assert list(window.indices()) == [2]


def test_knn_tie_prefers_lower_score():
    scores = [1.0, 3.0]
    window = knn_window(scores, k=1, target=2.0)
    assert list(window.indices()) == [0]


def test_knn_on_empty_list():
    assert knn_window([], k=2, target=0.0).is_empty


def test_knn_rejects_nonpositive_k():
    with pytest.raises(InvalidQueryError):
        knn_window([1.0], k=0, target=0.0)


def test_knn_distances_match_bruteforce():
    scores = [0.0, 0.5, 1.5, 2.5, 2.75, 6.0, 9.5]
    for target in (-1.0, 0.6, 2.6, 5.0, 12.0):
        for k in range(1, len(scores) + 1):
            window = knn_window(scores, k, target)
            assert window.length == k
            got = sorted(abs(scores[i] - target) for i in window.indices())
            assert got == pytest.approx(_bruteforce_distances(scores, k, target))
