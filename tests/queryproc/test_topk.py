"""Tests for top-k window selection."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.queryproc.topk import topk_window


def test_topk_selects_suffix():
    window = topk_window([1.0, 3.0, 5.0, 7.0, 9.0], k=2)
    assert (window.start, window.end) == (3, 4)


def test_topk_equal_to_size_returns_everything():
    window = topk_window([1.0, 2.0, 3.0], k=3)
    assert (window.start, window.end) == (0, 2)


def test_topk_larger_than_size_returns_everything():
    window = topk_window([1.0, 2.0, 3.0], k=10)
    assert (window.start, window.end) == (0, 2)
    assert window.length == 3


def test_topk_one():
    window = topk_window([1.0, 2.0, 3.0], k=1)
    assert (window.start, window.end) == (2, 2)


def test_topk_on_empty_list_is_empty():
    window = topk_window([], k=3)
    assert window.is_empty


def test_topk_rejects_nonpositive_k():
    with pytest.raises(InvalidQueryError):
        topk_window([1.0], k=0)


def test_topk_matches_bruteforce():
    scores = [0.5, 1.5, 1.5, 2.0, 7.25, 9.0]
    for k in range(1, len(scores) + 1):
        window = topk_window(scores, k)
        expected = sorted(scores, reverse=True)[:k]
        assert sorted((scores[i] for i in window.indices()), reverse=True) == expected
