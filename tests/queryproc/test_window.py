"""Tests for the ResultWindow container and the query dispatcher."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.core.queries import KNNQuery, RangeQuery, TopKQuery
from repro.queryproc.window import ResultWindow, select_window


def test_window_length_and_indices():
    window = ResultWindow(start=2, end=5, size=10)
    assert not window.is_empty
    assert window.length == 4
    assert list(window.indices()) == [2, 3, 4, 5]


def test_window_boundary_positions():
    window = ResultWindow(start=2, end=5, size=10)
    assert window.left_boundary_position == 1
    assert window.right_boundary_position == 6


def test_window_boundaries_can_fall_outside_list():
    window = ResultWindow(start=0, end=9, size=10)
    assert window.left_boundary_position == -1
    assert window.right_boundary_position == 10


def test_empty_window():
    window = ResultWindow.empty_at(3, 10)
    assert window.is_empty
    assert window.length == 0
    assert list(window.indices()) == []
    assert window.left_boundary_position == 2
    assert window.right_boundary_position == 3


def test_window_bounds_validation():
    with pytest.raises(ValueError):
        ResultWindow(start=0, end=10, size=10)
    with pytest.raises(ValueError):
        ResultWindow(start=-1, end=3, size=10)
    with pytest.raises(ValueError):
        ResultWindow(start=0, end=0, size=-1)


def test_single_element_window():
    window = ResultWindow(start=4, end=4, size=5)
    assert window.length == 1
    assert list(window.indices()) == [4]


def test_select_window_dispatches_topk():
    scores = [1.0, 2.0, 3.0, 4.0]
    window = select_window(TopKQuery(weights=(0.5,), k=2), scores)
    assert (window.start, window.end) == (2, 3)


def test_select_window_dispatches_range():
    scores = [1.0, 2.0, 3.0, 4.0]
    window = select_window(RangeQuery(weights=(0.5,), low=1.5, high=3.5), scores)
    assert (window.start, window.end) == (1, 2)


def test_select_window_dispatches_knn():
    scores = [1.0, 2.0, 3.0, 4.0]
    window = select_window(KNNQuery(weights=(0.5,), k=2, target=3.1), scores)
    assert (window.start, window.end) == (2, 3)


def test_select_window_rejects_unknown_query():
    class FakeQuery:
        pass

    with pytest.raises(InvalidQueryError):
        select_window(FakeQuery(), [1.0, 2.0])
