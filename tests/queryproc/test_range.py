"""Tests for score-range window selection."""

import pytest

from repro.core.errors import InvalidQueryError
from repro.queryproc.range_query import range_window


def test_range_inclusive_boundaries():
    scores = [1.0, 2.0, 3.0, 4.0, 5.0]
    window = range_window(scores, 2.0, 4.0)
    assert list(window.indices()) == [1, 2, 3]


def test_range_strictly_inside():
    scores = [1.0, 2.0, 3.0, 4.0, 5.0]
    window = range_window(scores, 1.5, 4.5)
    assert list(window.indices()) == [1, 2, 3]


def test_range_covering_everything():
    scores = [1.0, 2.0, 3.0]
    window = range_window(scores, 0.0, 10.0)
    assert list(window.indices()) == [0, 1, 2]


def test_range_empty_result_positions_gap():
    scores = [1.0, 2.0, 5.0, 6.0]
    window = range_window(scores, 3.0, 4.0)
    assert window.is_empty
    assert window.left_boundary_position == 1
    assert window.right_boundary_position == 2


def test_range_below_everything_is_empty_at_front():
    window = range_window([5.0, 6.0], 1.0, 2.0)
    assert window.is_empty
    assert window.left_boundary_position == -1


def test_range_above_everything_is_empty_at_back():
    window = range_window([5.0, 6.0], 8.0, 9.0)
    assert window.is_empty
    assert window.right_boundary_position == 2


def test_range_with_duplicate_scores():
    scores = [1.0, 2.0, 2.0, 2.0, 3.0]
    window = range_window(scores, 2.0, 2.0)
    assert list(window.indices()) == [1, 2, 3]


def test_range_point_query_single_match():
    scores = [1.0, 2.0, 3.0]
    window = range_window(scores, 2.0, 2.0)
    assert list(window.indices()) == [1]


def test_range_on_empty_list():
    assert range_window([], 0.0, 1.0).is_empty


def test_range_rejects_inverted_boundaries():
    with pytest.raises(InvalidQueryError):
        range_window([1.0], 2.0, 1.0)


def test_range_matches_bruteforce():
    scores = [0.1, 0.4, 0.4, 1.7, 2.3, 2.3, 9.0]
    cases = [(0.0, 0.4), (0.4, 2.3), (1.0, 1.5), (5.0, 10.0), (-5.0, -1.0)]
    for low, high in cases:
        window = range_window(scores, low, high)
        expected = [i for i, s in enumerate(scores) if low <= s <= high]
        assert list(window.indices()) == expected
