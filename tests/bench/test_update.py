"""Gates for the incremental-update (changed-path vs rebuild) benchmark.

The full acceptance run (``python -m repro.bench --update``) demands
single-record inserts *and* deletes >= 10x faster than a full rebuild at
n = 1000; these tests exercise the same code path at CI-friendly scale --
best-of-``repeats`` with ``gc.collect()`` per the repo's timing
convention -- and check the JSON trajectory report and the failure modes.
"""

import json

from repro.bench.update import run_update, run_update_smoke, update_point


def test_update_point_measures_and_guards():
    point = update_point(n_records=30, seed=0, repeats=2)
    assert point["n"] == 30
    assert point["build_seconds"] > 0
    assert point["insert_seconds"] > 0 and point["delete_seconds"] > 0
    assert point["insert_speedup"] == point["build_seconds"] / point["insert_seconds"]
    assert point["delete_speedup"] == point["build_seconds"] / point["delete_seconds"]
    # repeats inserts and repeats deletes, one epoch each
    assert point["epoch"] == 4
    assert point["strategies"] == ["incremental"]
    assert point["subdomains"] > 30


def test_run_update_writes_trajectory(tmp_path):
    output = tmp_path / "BENCH_update.json"
    results, failures = run_update(
        n_values=(20, 40),
        seed=0,
        repeats=1,
        speedup_floor=0.0,
        output_path=str(output),
    )
    assert failures == []
    (result,) = results
    assert [row["n"] for row in result.rows] == [20, 40]
    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "ifmh-incremental-update"
    assert payload["headline_n"] == 40
    assert (
        payload["headline_insert_speedup"]
        == payload["trajectory"][-1]["insert_speedup"]
    )
    assert (
        payload["headline_delete_speedup"]
        == payload["trajectory"][-1]["delete_speedup"]
    )


def test_run_update_reports_regression_below_floor(tmp_path):
    _results, failures = run_update(
        n_values=(15,),
        seed=0,
        repeats=1,
        speedup_floor=10_000.0,
        output_path=str(tmp_path / "out.json"),
    )
    assert len(failures) == 2  # both the insert and the delete miss the bar
    assert all("floor" in failure for failure in failures)


def test_run_update_smoke_writes_its_own_report(tmp_path, monkeypatch):
    import repro.bench.update as update

    monkeypatch.setattr(update, "SMOKE_UPDATE_N_VALUES", (24,))
    monkeypatch.setattr(update, "SMOKE_UPDATE_SPEEDUP_FLOOR", 0.0)
    output = tmp_path / "BENCH_update_smoke.json"
    results, failures = run_update_smoke(seed=0, output_path=str(output))
    assert failures == []
    payload = json.loads(output.read_text())
    assert [point["n"] for point in payload["trajectory"]] == [24]
    assert len(results) == 1
