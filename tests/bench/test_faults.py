"""Gates for the byzantine fault-injection benchmark.

The acceptance run (``python -m repro.bench --faults``) gates the
resilient-serving claims: zero tampered answers accepted, all accepted
answers verified, goodput above its floor despite an adversarial pool, all
required fault kinds exercised, and a bit-identical same-seed replay.
These tests run the same code path at a CI-friendly scale and check the
JSON outcome report plus the failure modes.
"""

import json

from repro.bench.faults import REQUIRED_FAULT_KINDS, run_faults, run_faults_smoke


def test_run_faults_passes_all_gates_at_small_scale(tmp_path):
    output = tmp_path / "BENCH_faults.json"
    results, failures = run_faults(
        n_records=48,
        query_count=24,
        seed=0,
        output_path=str(output),
    )
    assert failures == []
    (result,) = results
    (row,) = result.rows
    assert row["queries"] == 24
    assert row["accepted"] == row["queries"] - row["exhausted"]
    assert row["tampered_accepted"] == 0
    assert row["goodput"] >= 0.95
    assert row["attempts"] >= row["queries"]

    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "byzantine-fault-injection"
    assert payload["deterministic"] is True
    assert payload["epoch"] == 1
    outcome = payload["outcome"]
    for kind in REQUIRED_FAULT_KINDS:
        assert outcome["injected"].get(kind, 0) >= 1, f"{kind} never fired"
    assert outcome["accepted_unverified"] == 0
    assert outcome["attacks_vacuous"] == []
    # Every accepted query names its answering replica in the trace.
    assert len(outcome["replica_trace"]) == 24
    assert outcome["virtual_seconds"] > 0
    # The honest replica exists and the pool bookkeeping saw real faults.
    status = {entry["replica_id"]: entry for entry in outcome["pool_status"]}
    assert status[0]["faults"] == 0
    assert sum(entry["faults"] for entry in status.values()) > 0


def test_run_faults_detects_goodput_regression(tmp_path):
    _results, failures = run_faults(
        n_records=48,
        query_count=12,
        seed=0,
        goodput_floor=1.01,  # unreachable on purpose
        output_path=str(tmp_path / "out.json"),
    )
    assert any("goodput" in failure for failure in failures)


def test_run_faults_smoke_uses_reduced_scale(tmp_path):
    output = tmp_path / "BENCH_faults_smoke.json"
    results, failures = run_faults_smoke(seed=0, output_path=str(output))
    assert failures == []
    (result,) = results
    assert result.rows[0]["queries"] == 45
    assert json.loads(output.read_text())["n"] == 96
