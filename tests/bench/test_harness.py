"""Tests for the benchmark harness machinery."""

import pytest

from repro.bench.harness import (
    APPROACHES,
    BenchConfig,
    ExperimentResult,
    build_systems,
    queries_with_result_size,
)
from repro.bench.reporting import format_table, format_value, render_results
from repro.core.owner import SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE


@pytest.fixture(scope="module")
def tiny_config():
    return BenchConfig(
        n_values=(6, 8),
        fixed_n=8,
        result_sizes=(2, 4),
        queries_per_point=2,
        signature_algorithm="hmac",
        key_bits=None,
    )


@pytest.fixture(scope="module")
def tiny_systems(tiny_config):
    return build_systems(tiny_config, tiny_config.fixed_n)


def test_bench_config_workload_shape(tiny_config):
    workload = tiny_config.workload(12)
    assert workload.n_records == 12
    assert workload.dimension == tiny_config.dimension


def test_build_systems_builds_all_approaches(tiny_systems):
    assert set(tiny_systems.handles) == set(APPROACHES)
    for handle in tiny_systems:
        assert handle.build_seconds >= 0.0
        assert handle.signature_count >= 1


def test_systems_share_the_same_dataset(tiny_systems):
    datasets = {id(handle.owner.dataset) for handle in tiny_systems}
    assert len(datasets) == 1


def test_queries_with_result_size_produces_exact_windows(tiny_config, tiny_systems):
    for kind in ("topk", "range", "knn"):
        queries = queries_with_result_size(tiny_systems, kind, 3, count=3, seed=1)
        assert len(queries) == 3
        for query in queries:
            execution = tiny_systems[ONE_SIGNATURE].server.execute(query)
            assert len(execution.result) == 3


def test_queries_with_result_size_rejects_unknown_kind(tiny_config, tiny_systems):
    with pytest.raises(ValueError):
        queries_with_result_size(tiny_systems, "median", 3, count=1)


def test_all_approaches_agree_on_results(tiny_config, tiny_systems):
    queries = queries_with_result_size(tiny_systems, "range", 3, count=2, seed=2)
    for query in queries:
        ids = [
            tiny_systems[approach].server.execute(query).result.record_ids()
            for approach in (SIGNATURE_MESH, ONE_SIGNATURE, MULTI_SIGNATURE)
        ]
        assert ids[0] == ids[1] == ids[2]


def test_experiment_result_columns_and_series():
    result = ExperimentResult(
        experiment_id="t", title="test", parameters={}, columns=("n", "approach", "value")
    )
    result.add_row(n=1, approach="a", value=10)
    result.add_row(n=2, approach="a", value=20)
    result.add_row(n=1, approach="b", value=30)
    assert result.column("value") == [10, 20, 30]
    assert result.column("value", where={"approach": "b"}) == [30]
    assert result.series("n", "value", "a") == {1: 10, 2: 20}


def test_format_value_shapes():
    assert format_value(True) == "yes"
    assert format_value(3) == "3"
    assert format_value(0.25) == "0.25"
    assert "e-3" in format_value(0.0001)


def test_format_table_and_render_results():
    result = ExperimentResult(
        experiment_id="fig-x",
        title="demo",
        parameters={"n": 4},
        columns=("n", "value"),
    )
    result.add_row(n=4, value=1.5)
    text = format_table(result)
    assert "fig-x" in text and "n=4" in text and "1.5" in text
    combined = render_results([result, result])
    assert combined.count("fig-x") == 2
