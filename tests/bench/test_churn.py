"""Gates for the churn/recovery benchmark.

The acceptance run (``python -m repro.bench --churn``) gates the
crash-safe update pipeline end to end: bit-identical recovery at every
injected crash point, zero stale answers accepted after a completed
rolling swap, a quarantined laggard healed through resync + half-open
probation, zero queries dropped during live hot-swaps, and a
bit-identical same-seed replay.  These tests run the same code path at
the CI smoke scale and check the JSON outcome report and failure modes.
"""

import json

from repro.bench.churn import run_churn, run_churn_smoke


def test_run_churn_smoke_passes_all_gates(tmp_path):
    output = tmp_path / "BENCH_churn_smoke.json"
    results, failures = run_churn_smoke(seed=0, output_path=str(output))
    assert failures == []
    (result,) = results
    (row,) = result.rows
    assert row["crash_identical"] == row["crash_points"]
    assert row["crash_points"] >= 7  # 3 steps per batch + the publish crash
    assert row["stale_accepted"] == 0
    assert row["thread_dropped"] == 0
    assert row["accepted"] == row["issued"]
    assert row["goodput"] >= 0.9
    assert row["laggard_served"] > 0

    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "churn-recovery"
    assert payload["deterministic"] is True
    crash = payload["crash_phase"]
    assert crash["torn_tails_discarded"] > 0
    assert not crash["mismatched"]
    churn = payload["churn_phase"]
    assert churn["journal_recovery_matches"] is True
    assert churn["laggard_rejections"] > 0
    assert churn["laggard_served_after_resync"] > 0
    # Rolling swaps publish deltas against the epoch-0 base after round 1.
    assert churn["publishes"].count("delta") >= 1
    assert set(churn["resync_modes"]) <= {"hot-swap", "replace", "refresh"}
    threaded = payload["threaded_phase"]
    assert threaded["issued"] == threaded["completed"]
    assert threaded["errors"] == []
    assert threaded["unverified"] == 0
    # Every replica ends the run healthy and on the final epoch.
    final_epoch = payload["swap_rounds"]
    for entry in churn["pool_status"]:
        assert entry["epoch"] == final_epoch
        assert entry["quarantined"] is False


def test_run_churn_detects_goodput_regression(tmp_path):
    _results, failures = run_churn(
        n_records=72,
        swap_rounds=2,
        reads_per_round=6,
        seed=0,
        goodput_floor=1.01,  # unreachable on purpose
        output_path=str(tmp_path / "out.json"),
        readers=2,
        queries_per_reader=6,
    )
    assert any("goodput" in failure for failure in failures)


def test_run_churn_is_seed_sensitive_but_replay_stable(tmp_path):
    first, failures_a = run_churn_smoke(seed=0, output_path=str(tmp_path / "a.json"))
    again, failures_b = run_churn_smoke(seed=0, output_path=str(tmp_path / "b.json"))
    assert failures_a == failures_b == []
    assert first[0].rows == again[0].rows
    assert json.loads((tmp_path / "a.json").read_text()) == json.loads(
        (tmp_path / "b.json").read_text()
    )
