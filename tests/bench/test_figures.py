"""Smoke tests for the figure experiments (tiny scales, hmac signatures)."""

import pytest

from repro.bench import figures
from repro.bench.harness import BenchConfig
from repro.core.owner import SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE


@pytest.fixture(scope="module")
def config():
    figures.clear_cache()
    return BenchConfig(
        n_values=(6, 9),
        fixed_n=9,
        result_sizes=(2, 4),
        queries_per_point=2,
        signature_algorithm="hmac",
        key_bits=None,
        seed=3,
    )


def test_fig5_shapes(config):
    result = figures.fig5_data_owner(config)
    assert len(result.rows) == len(config.n_values) * 3
    one = result.series("n", "signatures", ONE_SIGNATURE)
    multi = result.series("n", "signatures", MULTI_SIGNATURE)
    mesh = result.series("n", "signatures", SIGNATURE_MESH)
    for n in config.n_values:
        assert one[n] == 1
        assert mesh[n] > multi[n] >= 1


def test_fig6_rows_cover_every_point(config):
    result = figures.fig6_server_fixed_result(config, kind="topk", result_size=2)
    assert {row["n"] for row in result.rows} == set(config.n_values)
    assert all(row["nodes_traversed"] > 0 for row in result.rows)


def test_fig7_signature_counts(config):
    result = figures.fig7_user_verification(config)
    largest = max(config.result_sizes)
    mesh = result.series("result_size", "signatures_verified", SIGNATURE_MESH)
    one = result.series("result_size", "signatures_verified", ONE_SIGNATURE)
    assert one[largest] == 1
    assert mesh[largest] == largest + 1


def test_fig8a_mesh_vo_grows_linearly(config):
    result = figures.fig8a_vo_size_vs_result_length(config)
    mesh = result.series("result_size", "vo_bytes", SIGNATURE_MESH)
    assert mesh[max(config.result_sizes)] > mesh[min(config.result_sizes)]


def test_fig8b_mesh_vo_flat_in_n(config):
    result = figures.fig8b_vo_size_vs_database_size(config, result_size=3)
    mesh = result.series("n", "vo_bytes", SIGNATURE_MESH)
    values = list(mesh.values())
    assert max(values) <= min(values) * 1.3


def test_security_matrix_all_detected(config):
    result = figures.security_attack_matrix(config)
    assert result.rows
    assert all(row["detected"] in (True, "n/a") for row in result.rows)


def test_ablation_mesh_sharing(config):
    result = figures.ablation_mesh_sharing(config, n_records=8)
    rows = {row["share_signatures"]: row for row in result.rows}
    assert rows[True]["signatures"] < rows[False]["signatures"]
