"""Gates for the shared-structure construction benchmark.

The full acceptance run (``python -m repro.bench --construction``) sweeps
up to n = 200 and demands a >= 5x physical-hash reduction; these tests
exercise the same code path at CI-friendly scale and check the JSON
trajectory report.
"""

import json

import pytest

from repro.bench.fastpath import (
    CONSTRUCTION_REDUCTION_FLOOR,
    construction_comparison,
    run_construction,
)


def test_construction_comparison_rows_and_invariants():
    result = construction_comparison(n_records=40, seed=0)
    rows = {row["hash_consing"]: row for row in result.rows}
    assert rows[False]["subdomains"] == rows[True]["subdomains"]
    assert rows[False]["logical_hashes"] == rows[True]["logical_hashes"]
    assert rows[False]["physical_hashes"] == rows[False]["logical_hashes"]
    assert rows[True]["physical_hashes"] < rows[True]["logical_hashes"]
    assert rows[True]["physical_reduction"] >= CONSTRUCTION_REDUCTION_FLOOR
    stats = result.parameters["engine_stats"]
    assert stats["leaf_pool_entries"] == 40 + 2  # records + the two tokens
    assert stats["leaf_pool_misses"] == stats["leaf_pool_entries"]


def test_run_construction_writes_trajectory(tmp_path):
    output = tmp_path / "BENCH_construction.json"
    results, failures = run_construction(n_values=(20, 40), seed=0, output_path=str(output))
    assert len(results) == 2
    assert failures == []
    payload = json.loads(output.read_text())
    assert payload["headline_n"] == 40
    assert payload["headline_physical_reduction"] >= CONSTRUCTION_REDUCTION_FLOOR
    assert [point["n"] for point in payload["trajectory"]] == [20, 40]
    for point in payload["trajectory"]:
        assert point["naive"]["logical_hashes"] == point["hash_consing"]["logical_hashes"]
        assert (
            point["hash_consing"]["physical_hashes"] < point["naive"]["physical_hashes"]
        )


def test_run_construction_reports_regression_below_floor(monkeypatch, tmp_path):
    import repro.bench.fastpath as fastpath

    monkeypatch.setattr(fastpath, "CONSTRUCTION_REDUCTION_FLOOR", 10_000.0)
    _results, failures = run_construction(
        n_values=(20,), seed=0, output_path=str(tmp_path / "out.json")
    )
    assert len(failures) == 1
    assert "below" in failures[0] or "floor" in failures[0]


@pytest.mark.fastpath
def test_construction_gate_at_n200():
    """The acceptance benchmark: >= 5x fewer physical SHA-256 calls at n=200.

    ``repeats=1``: the gate is on the (deterministic) physical-hash
    reduction, so repeating the builds would only slow the suite down.
    """
    result = construction_comparison(n_records=200, seed=0, repeats=1)
    rows = {row["hash_consing"]: row for row in result.rows}
    assert rows[True]["physical_reduction"] >= 5.0, (
        f"shared-structure engine only cut physical hashing "
        f"{rows[True]['physical_reduction']:.1f}x at n=200"
    )