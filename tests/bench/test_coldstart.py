"""Gates for the cold-start (build vs artifact-load) benchmark.

The full acceptance run (``python -m repro.bench --coldstart``) sweeps
n up to 1000 and demands loading >= 10x faster than rebuilding; these
tests exercise the same code path at CI-friendly scale and check the JSON
trajectory report.
"""

import json

from repro.bench.coldstart import coldstart_point, run_coldstart, run_coldstart_smoke


def test_coldstart_point_measures_and_guards(tmp_path):
    artifact = tmp_path / "point.npz"
    point = coldstart_point(
        n_records=30, seed=0, repeats=1, artifact_path=str(artifact)
    )
    assert point["n"] == 30
    assert point["build_seconds"] > 0 and point["load_seconds"] > 0
    assert point["speedup"] == point["build_seconds"] / point["load_seconds"]
    assert point["artifact_bytes"] == artifact.stat().st_size
    assert point["subdomains"] > 30


def test_coldstart_point_cleans_up_its_temp_artifact():
    import glob
    import tempfile

    before = set(glob.glob(tempfile.gettempdir() + "/coldstart-*.npz"))
    coldstart_point(n_records=12, seed=1, repeats=1)
    after = set(glob.glob(tempfile.gettempdir() + "/coldstart-*.npz"))
    assert after == before


def test_run_coldstart_writes_trajectory(tmp_path):
    output = tmp_path / "BENCH_coldstart.json"
    results, failures = run_coldstart(
        n_values=(15, 30),
        seed=0,
        repeats=1,
        speedup_floor=0.0,
        output_path=str(output),
    )
    assert failures == []
    (result,) = results
    assert [row["n"] for row in result.rows] == [15, 30]
    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "ads-artifact-coldstart"
    assert payload["headline_n"] == 30
    assert payload["headline_speedup"] == payload["trajectory"][-1]["speedup"]


def test_run_coldstart_reports_regression_below_floor(tmp_path):
    _results, failures = run_coldstart(
        n_values=(15,),
        seed=0,
        repeats=1,
        speedup_floor=10_000.0,
        output_path=str(tmp_path / "out.json"),
    )
    assert len(failures) == 1
    assert "floor" in failures[0]


def test_run_coldstart_smoke_writes_its_own_report(tmp_path, monkeypatch):
    import repro.bench.coldstart as coldstart

    monkeypatch.setattr(coldstart, "SMOKE_COLDSTART_N_VALUES", (12, 24))
    monkeypatch.setattr(coldstart, "SMOKE_COLDSTART_SPEEDUP_FLOOR", 0.0)
    output = tmp_path / "BENCH_coldstart_smoke.json"
    results, failures = run_coldstart_smoke(seed=0, output_path=str(output))
    assert failures == []
    payload = json.loads(output.read_text())
    assert [point["n"] for point in payload["trajectory"]] == [12, 24]
    assert len(results) == 1
