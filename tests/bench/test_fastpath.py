"""Fast-path benchmark gates: bulk construction speedup and batch throughput.

These are the acceptance benchmarks for the vectorized hot paths: at the
paper-plus scale of n = 200 records the bulk build must be at least 5x
faster than the incremental reference, and ``execute_batch`` must out-run
per-query execution on a shared-weights workload.  Both assertions compare
wall-clock ratios measured in the same process, so they are robust to a
loaded CI machine.
"""

import pytest

from repro.bench.fastpath import batch_comparison, build_comparison, run_smoke


@pytest.mark.fastpath
def test_bulk_build_at_least_5x_faster_at_n200():
    result = build_comparison(n_records=200, seed=0)
    rows = {row["builder"]: row for row in result.rows}
    assert rows["incremental"]["subdomains"] == rows["bulk"]["subdomains"]
    assert rows["bulk"]["height"] <= rows["incremental"]["height"]
    assert rows["bulk"]["speedup"] >= 5.0, (
        f"bulk build only {rows['bulk']['speedup']:.1f}x faster than incremental at n=200"
    )


@pytest.mark.fastpath
def test_batch_execution_beats_per_query_throughput():
    result = batch_comparison(n_records=80, unique_weights=12, queries_per_weight=9, seed=0)
    rows = {row["mode"]: row for row in result.rows}
    assert rows["execute_batch"]["queries_per_second"] > rows["execute"]["queries_per_second"], (
        "execute_batch must out-run per-query execution on shared-weights workloads"
    )


@pytest.mark.fastpath
def test_smoke_gate_passes():
    """The CI smoke target (python -m repro.bench --smoke) must be green."""
    results, failures = run_smoke()
    assert len(results) == 3
    assert failures == []
