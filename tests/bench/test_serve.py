"""Gates for the serving-tier benchmark.

The acceptance run (``python -m repro.bench --serve``) gates the
multi-worker front-end end to end: seed-deterministic open-loop traffic,
the hardware-scaled N-over-1 throughput floor, bounded paced p99 with zero
drops and 100% sampled verification, and a churn phase where a mid-run
epoch swap plus a deterministic worker crash lose nothing.  These tests
run the same code path at a reduced scale and check the JSON outcome
report, the floor scaling logic and failure wiring.
"""

import json

from repro.bench.serve import (
    SINGLE_CORE_OVERHEAD_FLOOR,
    run_serve,
    throughput_floor,
)


def test_throughput_floor_is_hardware_scaled():
    # The issue's headline gate: 4x at 8 workers -- on >= 8 cores.
    assert throughput_floor(8, smoke=False, cores=8) == 4.0
    assert throughput_floor(8, smoke=False, cores=16) == 4.0
    # Fewer cores than workers: the floor follows the cores.
    assert throughput_floor(8, smoke=False, cores=4) == 2.0
    assert throughput_floor(4, smoke=True, cores=2) == 0.9
    # One core: a multi-process front-end cannot scale, so the gate bounds
    # overhead instead of demanding impossible parallel speedup.
    assert throughput_floor(8, smoke=False, cores=1) == SINGLE_CORE_OVERHEAD_FLOOR
    assert throughput_floor(1, smoke=False, cores=8) == SINGLE_CORE_OVERHEAD_FLOOR


def test_run_serve_small_passes_all_gates(tmp_path):
    output = tmp_path / "BENCH_serve_test.json"
    results, failures = run_serve(
        workers=2,
        n_records=40,
        sat_count=60,
        paced_count=60,
        rate=60.0,
        seed=0,
        smoke=True,
        output_path=str(output),
    )
    assert failures == []
    (result,) = results
    (row,) = result.rows
    assert row["dropped"] == 0
    assert row["churn_dropped"] == 0
    assert row["respawns"] >= 1
    assert row["verified"] == "60/60"
    assert row["churn_verified"] == "60/60"

    payload = json.loads(output.read_text())
    assert payload["benchmark"] == "serve-frontend"
    determinism = payload["determinism"]
    assert determinism["same_seed_identical"] is True
    assert determinism["different_seed_differs"] is True
    assert len(determinism["fingerprint"]) == 64
    throughput = payload["throughput"]
    assert throughput["floor_met"] is True
    assert throughput["single_completed"] == 60
    assert throughput["multi_completed"] == 60
    paced = payload["paced"]
    assert paced["dropped"] == 0
    assert paced["verified"] == paced["sampled"] == 60
    assert paced["latency"]["p99"] <= payload["p99_bound"]
    assert set(paced["per_worker"]) == {"0", "1"}
    churn = payload["churn"]
    assert churn["dropped"] == 0 and churn["errored"] == 0
    assert churn["verified"] == churn["issued"] == 60
    assert churn["swap"]["complete"] is True
    assert set(churn["by_epoch"]) == {"0", "1"}, "both epochs must serve"
    assert churn["requeued"] > 0
    assert churn["respawns"] >= 1
    assert churn["crashed_worker_served_again"] is True
