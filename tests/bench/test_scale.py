"""Gates for the thousand-record scale benchmark.

The full acceptance run (``python -m repro.bench --scale``) sweeps n up to
2000 and demands a >= 3x wall-clock speedup at n = 1000; these tests
exercise the same code path at CI-friendly scale and check the JSON
trajectory report.
"""

import json

import repro.bench.scale as scale
from repro.bench.scale import run_scale, run_scale_smoke, scale_point


def test_scale_point_compares_engines_and_matches_counters():
    point = scale_point(n_records=40, seed=0, repeats=1, compare=True)
    assert point["n"] == 40
    assert point["node_engine"] is not None
    assert point["speedup"] == (
        point["node_engine"]["build_seconds"] / point["batched"]["build_seconds"]
    )
    # Batching reschedules hashes; it must not change which hashes run.
    assert point["batched"]["physical_hashes"] == point["node_engine"]["physical_hashes"]
    assert point["batched"]["physical_hashes"] < point["logical_hashes"]
    stats = point["engine_stats"]
    assert stats["leaf_pool_entries"] == 40 + 2
    assert stats["leaf_pool_misses"] == stats["leaf_pool_entries"]


def test_scale_point_without_comparison_skips_node_engine():
    point = scale_point(n_records=20, seed=0, repeats=1, compare=False)
    assert point["node_engine"] is None
    assert point["speedup"] is None


_TINY_PARALLEL = {
    # Reduced parallel points (the full run builds n = 1000 and a 10k-leaf
    # forest) with floors at zero: the gating logic is exercised, the
    # identity assertions inside the points still run at full strength.
    "parallel_workers": 2,
    "parallel_ads_n": 30,
    "forest_leaf_count": 34,
    "forest_tree_cap": 12,
    "parallel_per_worker": 0.0,
    "parallel_cap": 0.0,
    "parallel_single_core": 0.0,
}


def test_run_scale_writes_trajectory_and_caps_comparison(tmp_path):
    output = tmp_path / "BENCH_scale.json"
    results, failures = run_scale(
        n_values=(20, 40, 60),
        seed=0,
        repeats=1,
        compare_max_n=40,
        speedup_floor=0.0,
        output_path=str(output),
        **_TINY_PARALLEL,
    )
    assert failures == []
    result, parallel_result = results
    engines = [(row["n"], row["engine"]) for row in result.rows]
    assert (20, "node-at-a-time") in engines and (40, "node-at-a-time") in engines
    assert (60, "node-at-a-time") not in engines  # beyond the comparison cap
    assert (60, "batched") in engines
    assert [row["stage"] for row in parallel_result.rows] == ["full-ads", "forest-10k"]
    payload = json.loads(output.read_text())
    assert payload["headline_n"] == 40  # largest *compared* n gates the speedup
    assert [point["n"] for point in payload["trajectory"]] == [20, 40, 60]
    assert payload["trajectory"][-1]["node_engine"] is None
    for point in payload["trajectory"][:2]:
        assert point["batched"]["physical_hashes"] == point["node_engine"]["physical_hashes"]
    parallel = payload["parallel"]
    assert parallel["workers"] == 2
    assert parallel["full_ads"]["n"] == 30
    assert parallel["forest_stage"]["leaf_count"] == 34


def test_run_scale_reports_regression_below_floor(tmp_path):
    _results, failures = run_scale(
        n_values=(20,),
        seed=0,
        repeats=1,
        compare_max_n=20,
        speedup_floor=10_000.0,
        output_path=str(tmp_path / "out.json"),
        **_TINY_PARALLEL,
    )
    assert len(failures) == 1
    assert "floor" in failures[0]


def test_run_scale_reports_parallel_regression_below_floor(tmp_path):
    knobs = dict(_TINY_PARALLEL)
    knobs["parallel_per_worker"] = 10_000.0
    knobs["parallel_cap"] = 10_000.0
    knobs["parallel_single_core"] = 10_000.0
    _results, failures = run_scale(
        n_values=(20,),
        seed=0,
        repeats=1,
        compare_max_n=20,
        speedup_floor=0.0,
        output_path=str(tmp_path / "out.json"),
        **knobs,
    )
    assert len(failures) == 2  # both parallel stages, not the batched gate
    assert all("affinity-scaled floor" in failure for failure in failures)


def test_run_scale_smoke_uses_reduced_configuration(tmp_path, monkeypatch):
    monkeypatch.setattr(scale, "SMOKE_SCALE_N_VALUES", (15, 30))
    monkeypatch.setattr(scale, "SMOKE_SCALE_SPEEDUP_FLOOR", 0.0)
    # Timing floors are not under test here (and fork is far slower inside
    # the big-heap pytest process than in the fresh-process CI gate).
    monkeypatch.setattr(scale, "SMOKE_PARALLEL_PER_WORKER", 0.0)
    monkeypatch.setattr(scale, "SMOKE_PARALLEL_FLOOR_CAP", 0.0)
    monkeypatch.setattr(scale, "SMOKE_PARALLEL_SINGLE_CORE_FLOOR", 0.0)
    output = tmp_path / "BENCH_scale_smoke.json"
    results, failures = run_scale_smoke(seed=0, output_path=str(output))
    assert failures == []
    payload = json.loads(output.read_text())
    assert [point["n"] for point in payload["trajectory"]] == [15, 30]
    assert payload["trajectory"][-1]["speedup"] is not None
    assert len(results) == 2
    assert payload["parallel"]["workers"] == scale.SMOKE_PARALLEL_WORKERS