"""Fig. 7 -- user (client) overhead.

The paper's Fig. 7 reports, as a function of the result length, (a) the
number of hashing operations, (b) the time spent hashing, (c) the time spent
verifying signatures under RSA and DSA, and (d) the total verification time.
Expected shape: the mesh performs the *fewest* hash operations (it only
hashes record pairs) but has to verify ``O(|q|)`` signatures, so its total
verification time is the worst and the gap grows with the result length; the
two IFMH modes verify exactly one signature each and stay close together.
"""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.bench.figures import _systems, fig7_user_verification, fig7c_signature_algorithms
from repro.bench.harness import queries_with_result_size
from repro.core.owner import SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE


@pytest.fixture(scope="module")
def fig7(bench_config):
    result = fig7_user_verification(bench_config)
    record_table(result)
    return result


def _verify_benchmark(benchmark, bench_config, approach, result_size):
    systems = _systems(bench_config, bench_config.fixed_n)
    handle = systems[approach]
    query = queries_with_result_size(systems, "range", result_size, 1, seed=17)[0]
    execution = handle.server.execute(query)

    def run():
        report = handle.client.verify(query, execution.result, execution.verification_object)
        assert report.is_valid
        return report

    benchmark(run)


def test_fig7a_hash_count(fig7, bench_config, benchmark):
    """Fig. 7a: hash counts grow with |q|; one signature verified for IFMH."""
    largest = max(bench_config.result_sizes)
    smallest = min(bench_config.result_sizes)
    for approach in (SIGNATURE_MESH, ONE_SIGNATURE, MULTI_SIGNATURE):
        series = fig7.series("result_size", "hash_operations", approach)
        assert series[largest] > series[smallest]
    # IFMH verifies exactly one signature; the mesh verifies O(|q|).
    mesh_signatures = fig7.series("result_size", "signatures_verified", SIGNATURE_MESH)
    one_signatures = fig7.series("result_size", "signatures_verified", ONE_SIGNATURE)
    assert one_signatures[largest] == 1
    assert mesh_signatures[largest] >= largest
    _verify_benchmark(benchmark, bench_config, ONE_SIGNATURE, largest)


def test_fig7b_hash_time(fig7, bench_config, benchmark):
    """Fig. 7b: hashing time grows with |q| and stays tiny for every approach."""
    largest = max(bench_config.result_sizes)
    smallest = min(bench_config.result_sizes)
    for approach in (SIGNATURE_MESH, ONE_SIGNATURE, MULTI_SIGNATURE):
        series = fig7.series("result_size", "hash_seconds", approach)
        assert series[largest] >= 0.0
        assert series[largest] >= series[smallest] * 0.5  # monotone up to noise
    _verify_benchmark(benchmark, bench_config, MULTI_SIGNATURE, largest)


def test_fig7c_signature_algorithms(bench_config, benchmark):
    """Fig. 7c: signature verification measured under both RSA and DSA."""
    result = fig7c_signature_algorithms(bench_config)
    record_table(result)
    largest = max(bench_config.result_sizes)
    algorithms = {row["algorithm"] for row in result.rows}
    assert algorithms == {"rsa", "dsa"}
    # The mesh's signature-verification time grows with |q| under both
    # algorithms; the IFMH modes' does not (one signature regardless of |q|).
    for algorithm in ("rsa", "dsa"):
        mesh = {
            row["result_size"]: row["signature_seconds"]
            for row in result.rows
            if row["approach"] == SIGNATURE_MESH and row["algorithm"] == algorithm
        }
        assert mesh[largest] > mesh[min(bench_config.result_sizes)] * 1.2
    _verify_benchmark(benchmark, bench_config, SIGNATURE_MESH, largest)


def test_fig7d_total_verification_time(fig7, bench_config, benchmark):
    """Fig. 7d: with real signatures the mesh's total verification time is worst."""
    largest = max(bench_config.result_sizes)
    mesh = fig7.series("result_size", "total_seconds", SIGNATURE_MESH)
    one = fig7.series("result_size", "total_seconds", ONE_SIGNATURE)
    multi = fig7.series("result_size", "total_seconds", MULTI_SIGNATURE)
    assert mesh[largest] > 0 and one[largest] > 0 and multi[largest] > 0
    if bench_config.signature_algorithm != "hmac":
        # O(|q|) signature verifications versus exactly one.
        assert mesh[largest] > one[largest]
        assert mesh[largest] > multi[largest]
    _verify_benchmark(benchmark, bench_config, MULTI_SIGNATURE, min(bench_config.result_sizes))
