"""Fig. 5 -- data owner overhead.

The paper's Fig. 5 reports, as a function of the database size, (a) the
number of signatures the owner creates, (b) the time to construct the
verification structure and (c) the structure's size, for the signature mesh
and both IFMH modes.  Expected shape: the mesh needs orders of magnitude
more signatures (up to ``#subdomains * n``), which also makes it the slowest
to build and the largest; one-signature always creates exactly one
signature; multi-signature creates one per subdomain.
"""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.bench.figures import fig5_data_owner
from repro.core.owner import DataOwner, SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.workloads.generator import make_dataset, make_template


@pytest.fixture(scope="module")
def fig5(bench_config):
    result = fig5_data_owner(bench_config)
    record_table(result)
    return result


def _series(result, column, approach):
    return result.series("n", column, approach)


def test_fig5a_signature_count(fig5, bench_config, benchmark):
    """Fig. 5a: mesh >> multi-signature >> one-signature, at every scale."""
    largest = max(bench_config.n_values)
    mesh = _series(fig5, "signatures", SIGNATURE_MESH)
    multi = _series(fig5, "signatures", MULTI_SIGNATURE)
    one = _series(fig5, "signatures", ONE_SIGNATURE)
    for n in bench_config.n_values:
        assert one[n] == 1
        assert multi[n] >= 1
        assert mesh[n] > multi[n] >= one[n]
    # The gap grows with the database size (mesh signatures ~ subdomains * n).
    assert mesh[largest] / multi[largest] >= mesh[min(bench_config.n_values)] / max(
        1, multi[min(bench_config.n_values)]
    )

    # Representative timed operation: counting signatures of a fresh
    # multi-signature build at the smallest scale.
    workload = bench_config.workload(min(bench_config.n_values))
    dataset = make_dataset(workload)
    template = make_template(workload)

    def build_and_count():
        owner = DataOwner(
            dataset, template, scheme=MULTI_SIGNATURE, signature_algorithm="hmac"
        )
        return owner.signature_count

    count = benchmark.pedantic(build_and_count, rounds=1, iterations=1)
    assert count >= 1


def test_fig5b_construction_time(fig5, bench_config, benchmark):
    """Fig. 5b: construction time grows fastest for the signature mesh."""
    largest = max(bench_config.n_values)
    smallest = min(bench_config.n_values)
    mesh = _series(fig5, "build_seconds", SIGNATURE_MESH)
    one = _series(fig5, "build_seconds", ONE_SIGNATURE)
    # Construction cost must grow with n for every approach.
    assert mesh[largest] > mesh[smallest]
    assert one[largest] > one[smallest]
    # With real (non-hmac) signatures the mesh is the slowest builder at scale.
    if bench_config.signature_algorithm != "hmac":
        assert mesh[largest] >= one[largest]

    workload = bench_config.workload(smallest)
    dataset = make_dataset(workload)
    template = make_template(workload)

    def build_one_signature():
        return DataOwner(
            dataset, template, scheme=ONE_SIGNATURE, signature_algorithm="hmac"
        )

    benchmark.pedantic(build_one_signature, rounds=1, iterations=1)


def test_fig5c_structure_size(fig5, bench_config, benchmark):
    """Fig. 5c: every structure grows with n; the mesh carries the signature bulk."""
    largest = max(bench_config.n_values)
    smallest = min(bench_config.n_values)
    for approach in (SIGNATURE_MESH, ONE_SIGNATURE, MULTI_SIGNATURE):
        series = _series(fig5, "size_bytes", approach)
        assert series[largest] > series[smallest]
    mesh = _series(fig5, "size_bytes", SIGNATURE_MESH)
    one = _series(fig5, "size_bytes", ONE_SIGNATURE)
    # The unshared mesh (the paper's measured configuration) is the largest
    # structure once the arrangement is non-trivial.
    assert mesh[largest] > one[largest]

    workload = bench_config.workload(smallest)
    dataset = make_dataset(workload)
    template = make_template(workload)
    owner = DataOwner(dataset, template, scheme=ONE_SIGNATURE, signature_algorithm="hmac")

    size = benchmark(owner.ads_size_bytes)
    assert size > 0
