"""Fig. 6 -- server overhead.

The paper's Fig. 6 reports the number of ADS nodes (or mesh cells) the
server traverses to process a query and build its verification object:
(a) top-3 queries, (b) 3NN queries, (c) range queries with 3 results, each
as a function of the database size, and (d) as a function of the result
length at a fixed database size.  Expected shape: the mesh's linear scan
over the cells makes it grow super-linearly in ``n`` and always the worst at
scale, while both IFMH modes stay near-logarithmic and close to each other.
"""

from __future__ import annotations

from conftest import record_table
from repro.bench.figures import fig6_server_fixed_result, fig6d_result_length, _systems
from repro.bench.harness import queries_with_result_size
from repro.core.owner import SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.metrics.counters import Counters


def _assert_mesh_grows_fastest(result, bench_config):
    """The mesh's traversal count must grow faster than the IFMH modes'."""
    smallest = min(bench_config.n_values)
    largest = max(bench_config.n_values)
    mesh = result.series("n", "nodes_traversed", SIGNATURE_MESH)
    one = result.series("n", "nodes_traversed", ONE_SIGNATURE)
    multi = result.series("n", "nodes_traversed", MULTI_SIGNATURE)
    mesh_growth = mesh[largest] / max(mesh[smallest], 1)
    one_growth = one[largest] / max(one[smallest], 1)
    assert mesh_growth > one_growth
    # At the largest scale the linear scan has overtaken both tree searches
    # (only meaningful once the arrangement has clearly more cells than the
    # tree is deep, i.e. beyond the quick smoke scales).
    if largest >= 30:
        assert mesh[largest] > one[largest]
        assert mesh[largest] > multi[largest]


def _benchmark_one_query(benchmark, bench_config, kind, approach):
    systems = _systems(bench_config, bench_config.fixed_n)
    handle = systems[approach]
    query = queries_with_result_size(systems, kind, 3, 1, seed=9)[0]

    def run():
        counters = Counters()
        return handle.server.execute(query, counters=counters).nodes_traversed

    nodes = benchmark(run)
    assert nodes > 0


def test_fig6a_topk(bench_config, benchmark):
    """Fig. 6a: top-3 queries."""
    result = fig6_server_fixed_result(bench_config, kind="topk", result_size=3)
    record_table(result)
    _assert_mesh_grows_fastest(result, bench_config)
    _benchmark_one_query(benchmark, bench_config, "topk", ONE_SIGNATURE)


def test_fig6b_knn(bench_config, benchmark):
    """Fig. 6b: 3NN queries."""
    result = fig6_server_fixed_result(bench_config, kind="knn", result_size=3)
    record_table(result)
    _assert_mesh_grows_fastest(result, bench_config)
    _benchmark_one_query(benchmark, bench_config, "knn", MULTI_SIGNATURE)


def test_fig6c_range(bench_config, benchmark):
    """Fig. 6c: range queries with 3 results."""
    result = fig6_server_fixed_result(bench_config, kind="range", result_size=3)
    record_table(result)
    _assert_mesh_grows_fastest(result, bench_config)
    _benchmark_one_query(benchmark, bench_config, "range", ONE_SIGNATURE)


def test_fig6d_result_length(bench_config, benchmark):
    """Fig. 6d: traversal cost grows with the result length for every approach."""
    result = fig6d_result_length(bench_config)
    record_table(result)
    smallest = min(bench_config.result_sizes)
    largest = max(bench_config.result_sizes)
    # The IFMH traversal grows with |q| (the FV covers the whole window); the
    # mesh's count is dominated by where the linear scan stops, so only a
    # positivity check is meaningful for it.
    for approach in (ONE_SIGNATURE, MULTI_SIGNATURE):
        series = result.series("result_size", "nodes_traversed", approach)
        assert series[largest] >= series[smallest]
    mesh_series = result.series("result_size", "nodes_traversed", SIGNATURE_MESH)
    assert all(value > 0 for value in mesh_series.values())
    # The mesh stays the most expensive constructor at the largest |q|
    # (meaningful once the arrangement dominates the tree depth).
    if bench_config.fixed_n >= 30:
        mesh = result.series("result_size", "nodes_traversed", SIGNATURE_MESH)
        one = result.series("result_size", "nodes_traversed", ONE_SIGNATURE)
        assert mesh[largest] >= one[largest]
    _benchmark_one_query(benchmark, bench_config, "range", SIGNATURE_MESH)
