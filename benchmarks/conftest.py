"""Shared fixtures for the figure benchmarks.

Every benchmark file reproduces one figure of the paper's evaluation.  The
experiment tables are computed once per session (the underlying ADSs are
cached inside :mod:`repro.bench.figures`), the pytest-benchmark fixture
times a representative operation of that figure, and the reproduced tables
are printed in the terminal summary so ``pytest benchmarks/
--benchmark-only`` leaves a readable record of every figure.

Set ``REPRO_BENCH_QUICK=1`` to shrink the scales (CI smoke run).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchConfig
from repro.bench.reporting import format_table

#: Tables collected by the benchmark tests, printed in the terminal summary.
_TABLES: list[str] = []


def record_table(result) -> None:
    """Register an experiment table for the end-of-run summary."""
    _TABLES.append(format_table(result))


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """Scales used by every figure benchmark."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return BenchConfig(
            n_values=(8, 12, 16),
            fixed_n=16,
            result_sizes=(2, 4, 8),
            queries_per_point=2,
            signature_algorithm="hmac",
            key_bits=None,
        )
    return BenchConfig()


def pytest_terminal_summary(terminalreporter, exitstatus, config):  # pragma: no cover
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "reproduced paper figures")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
