"""Ablation benchmarks for the design choices documented in DESIGN.md.

These are not figures of the paper; they quantify the reproduction's own
design decisions: the choice of geometry engine, the one- versus
multi-signature trade-off, the hardened intersection binding, the mesh's
shared-signature optimization and the end-to-end attack-detection matrix
backing the paper's security analysis (section 4.1).
"""

from __future__ import annotations

from conftest import record_table
from repro.bench.figures import (
    ablation_geometry_engine,
    ablation_intersection_binding,
    ablation_mesh_sharing,
    ablation_signing_modes,
    security_attack_matrix,
)
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE


def test_ablation_geometry_engine(bench_config, benchmark):
    """A1: the interval engine builds the univariate I-tree far faster than the LP engine."""
    result = benchmark.pedantic(
        ablation_geometry_engine, args=(bench_config, 12), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row["engine"]: row for row in result.rows}
    assert rows["interval"]["subdomains"] == rows["lp"]["subdomains"]
    assert rows["interval"]["insertion_checks"] == rows["lp"]["insertion_checks"]
    assert rows["interval"]["build_seconds"] < rows["lp"]["build_seconds"]
    # The bulk fast path carves the same partition with one check per split.
    assert rows["interval-bulk"]["subdomains"] == rows["interval"]["subdomains"]
    assert rows["interval-bulk"]["insertion_checks"] < rows["interval"]["insertion_checks"]


def test_ablation_signing_modes(bench_config, benchmark):
    """A2: multi-signature ships smaller VOs, one-signature signs only once."""
    result = benchmark.pedantic(ablation_signing_modes, args=(bench_config,), rounds=1, iterations=1)
    record_table(result)
    rows = {row["approach"]: row for row in result.rows}
    assert rows[ONE_SIGNATURE]["owner_signatures"] == 1
    assert rows[MULTI_SIGNATURE]["owner_signatures"] > 1
    assert rows[MULTI_SIGNATURE]["vo_bytes"] <= rows[ONE_SIGNATURE]["vo_bytes"]
    assert rows[MULTI_SIGNATURE]["client_hashes"] <= rows[ONE_SIGNATURE]["client_hashes"]


def test_ablation_intersection_binding(bench_config, benchmark):
    """A3: binding the intersections changes the root but not the hash count."""
    result = benchmark.pedantic(
        ablation_intersection_binding, args=(bench_config, 16), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row["bind_intersections"]: row for row in result.rows}
    assert rows[True]["root_hash_prefix"] != rows[False]["root_hash_prefix"]
    assert rows[True]["owner_hashes"] == rows[False]["owner_hashes"]


def test_ablation_mesh_sharing(bench_config, benchmark):
    """A4: the shared-signature optimization cuts the mesh's signature count."""
    result = benchmark.pedantic(
        ablation_mesh_sharing, args=(bench_config, 16), rounds=1, iterations=1
    )
    record_table(result)
    rows = {row["share_signatures"]: row for row in result.rows}
    assert rows[True]["signatures"] < rows[False]["signatures"]
    assert rows[True]["cells"] == rows[False]["cells"]


def test_security_attack_matrix(bench_config, benchmark):
    """Section 4.1: every applicable attack is detected under every scheme."""
    result = benchmark.pedantic(security_attack_matrix, args=(bench_config,), rounds=1, iterations=1)
    record_table(result)
    assert result.rows
    for row in result.rows:
        assert row["detected"] in (True, "n/a"), (
            f"{row['attack']} went undetected under {row['approach']}"
        )
