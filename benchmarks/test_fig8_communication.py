"""Fig. 8 -- communication overhead (verification object size).

The paper's Fig. 8 reports the VO size (a) as a function of the result
length at a fixed database size and (b) as a function of the database size
at a fixed result length.  Expected shape: the mesh's VO grows linearly with
the result length (one signature per consecutive pair) and is insensitive to
the database size; the IFMH VOs grow only logarithmically with both and the
one-signature VO is slightly larger than the multi-signature VO (it carries
the IMH search path).
"""

from __future__ import annotations

from conftest import record_table
from repro.bench.figures import (
    _systems,
    fig8a_vo_size_vs_result_length,
    fig8b_vo_size_vs_database_size,
)
from repro.bench.harness import queries_with_result_size
from repro.core.owner import SIGNATURE_MESH
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE


def _vo_size_benchmark(benchmark, bench_config, approach):
    systems = _systems(bench_config, bench_config.fixed_n)
    handle = systems[approach]
    dimension = systems.template.dimension
    query = queries_with_result_size(systems, "range", 4, 1, seed=23)[0]
    execution = handle.server.execute(query)

    def run():
        return execution.verification_object.size_bytes(dimension, bench_config.size_model)

    size = benchmark(run)
    assert size > 0


def test_fig8a_vo_size_vs_result_length(bench_config, benchmark):
    """Fig. 8a: mesh VO grows linearly with |q|; IFMH VOs grow sub-linearly."""
    result = fig8a_vo_size_vs_result_length(bench_config)
    record_table(result)
    sizes = bench_config.result_sizes
    smallest, largest = min(sizes), max(sizes)
    scale = largest / smallest

    mesh = result.series("result_size", "vo_bytes", SIGNATURE_MESH)
    one = result.series("result_size", "vo_bytes", ONE_SIGNATURE)
    multi = result.series("result_size", "vo_bytes", MULTI_SIGNATURE)

    mesh_growth = mesh[largest] / mesh[smallest]
    one_growth = one[largest] / one[smallest]
    multi_growth = multi[largest] / multi[smallest]
    # Linear growth for the mesh (within a factor of the |q| scale), much
    # slower growth for the IFMH modes.
    assert mesh_growth > 0.5 * scale
    assert one_growth < mesh_growth
    assert multi_growth < mesh_growth
    # At the largest result length the mesh ships by far the biggest VO.
    assert mesh[largest] > one[largest]
    assert mesh[largest] > multi[largest]
    # One signature per consecutive pair versus exactly one.
    mesh_signatures = result.series("result_size", "vo_signatures", SIGNATURE_MESH)
    assert mesh_signatures[largest] == largest + 1
    _vo_size_benchmark(benchmark, bench_config, SIGNATURE_MESH)


def test_fig8b_vo_size_vs_database_size(bench_config, benchmark):
    """Fig. 8b: mesh VO size is flat in n; IFMH VOs grow slowly with n."""
    result = fig8b_vo_size_vs_database_size(bench_config, result_size=8)
    record_table(result)
    smallest, largest = min(bench_config.n_values), max(bench_config.n_values)

    mesh = result.series("n", "vo_bytes", SIGNATURE_MESH)
    one = result.series("n", "vo_bytes", ONE_SIGNATURE)
    multi = result.series("n", "vo_bytes", MULTI_SIGNATURE)

    # Flat curve for the mesh: the VO depends on |q|, not on n.  The very
    # smallest scale is excluded because there the per-pair subdomain
    # descriptions (the B_i constraint sets) are still shorter than usual.
    n_values = sorted(mesh)
    reference = n_values[1] if len(n_values) > 1 else n_values[0]
    assert mesh[largest] <= mesh[reference] * 1.25
    # The IFMH VOs grow (slowly) with the database size: deeper IMH path and
    # taller FMH trees.
    assert one[largest] >= one[smallest]
    assert multi[largest] >= multi[smallest]
    # One-signature carries the IMH path, so it is at least as large as
    # multi-signature at the same scale.
    assert one[largest] >= multi[largest]
    _vo_size_benchmark(benchmark, bench_config, ONE_SIGNATURE)
