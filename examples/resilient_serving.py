#!/usr/bin/env python3
"""Resilient serving: a replica pool survives tampering and crashing replicas.

The paper's client can *detect* a misbehaving server -- every answer
carries a verification object.  This example shows what to do with that
power at serving time:

1. the data owner builds the IFMH-tree once and **publishes one artifact**;
2. three replicas cold-start from it -- but replica 0 **tampers** with
   results (via the ``repro.attacks`` registry) and replica 1 **crashes**,
   leaving replica 2 as the only honest one;
3. a :class:`repro.ResilientClient` drives queries through the pool:
   every rejected or crashed attempt fails over to another replica,
   repeat offenders are quarantined, and **every answer handed back is
   client-verified** -- the faulty majority costs latency, never
   correctness.

All timing runs on a virtual clock and all fault decisions come from
seeded RNGs, so the run below is exactly reproducible.

Run with::

    python examples/resilient_serving.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import (
    Client,
    Dataset,
    Domain,
    FaultInjector,
    FaultSpec,
    KNNQuery,
    OutsourcedSystem,
    RangeQuery,
    ReplicaPool,
    ResilientClient,
    RetryPolicy,
    Server,
    SystemConfig,
    TopKQuery,
    UtilityTemplate,
    VirtualClock,
)

ROLES = {0: "tampering", 1: "crashing", 2: "honest"}


def build_sensor_table() -> Dataset:
    """A small telemetry table: (throughput, reliability) per edge node."""
    rng = random.Random(7)
    rows = [
        (round(rng.uniform(1.0, 9.0), 2), round(rng.uniform(0.0, 4.0), 2))
        for _ in range(24)
    ]
    labels = [f"edge-node-{i:02d}" for i in range(len(rows))]
    return Dataset.from_rows(("throughput", "reliability"), rows, labels=labels)


def main() -> None:
    dataset = build_sensor_table()
    template = UtilityTemplate(
        attributes=("throughput", "reliability"), domain=Domain.unit_box(2)
    )

    print("== owner: build once, publish one artifact ==")
    system = OutsourcedSystem.setup(
        dataset,
        template,
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        rng=random.Random(42),
    )
    handle, artifact_path = tempfile.mkstemp(suffix=".npz", prefix="resilient-ads-")
    os.close(handle)
    try:
        system.owner.publish(artifact_path)
        print(f"   artifact ... {os.path.getsize(artifact_path):,} bytes")

        print("\n== three replicas cold-start from the same artifact ==")
        clock = VirtualClock()
        tampering = FaultInjector(
            Server.from_artifact(artifact_path),
            (FaultSpec(kind="tamper", rate=0.9),),
            seed=1,
            clock=clock,
            replica_id=0,
        )
        crashing = FaultInjector(
            Server.from_artifact(artifact_path),
            (FaultSpec(kind="crash", rate=0.9),),
            seed=2,
            clock=clock,
            replica_id=1,
        )
        honest = FaultInjector(
            Server.from_artifact(artifact_path), (), clock=clock, replica_id=2
        )
        for replica_id, role in ROLES.items():
            print(f"   replica {replica_id}: {role}")

        pool = ReplicaPool(
            [tampering, crashing, honest],
            clock=clock,
            quarantine_threshold=2,
            quarantine_period=5.0,
        )
        resilient = ResilientClient(
            pool, Client.from_artifact(artifact_path), RetryPolicy(), seed=0
        )

        print("\n== queries fail over until a verified answer comes back ==")
        queries = [
            TopKQuery(weights=(0.7, 0.3), k=3),
            RangeQuery(weights=(0.5, 0.5), low=2.0, high=5.0),
            KNNQuery(weights=(0.6, 0.4), k=4, target=4.5),
            TopKQuery(weights=(0.2, 0.8), k=5),
            RangeQuery(weights=(0.9, 0.1), low=3.0, high=7.0),
            KNNQuery(weights=(0.4, 0.6), k=3, target=2.5),
        ]
        for query in queries:
            outcome = resilient.execute(query)
            assert outcome.accepted, "the pool still has an honest replica"
            assert outcome.report.is_valid, "only verified answers are accepted"
            print(f"   {query.describe()}")
            for attempt in outcome.attempts:
                role = ROLES[attempt.replica_id]
                detail = f" ({attempt.detail})" if attempt.outcome != "accepted" else ""
                print(
                    f"      replica {attempt.replica_id} [{role:9s}] "
                    f"-> {attempt.outcome}{detail}"
                )
            names = [record.label for record in outcome.execution.result]
            print(f"      verified answer from replica {outcome.replica_id}: {names}")

        print("\n== pool health after the run ==")
        for entry in pool.status():
            print(
                f"   replica {entry['replica_id']} [{ROLES[entry['replica_id']]:9s}] "
                f"served={entry['served']} faults={entry['faults']} "
                f"quarantines={entry['quarantines']} "
                f"quarantined={entry['quarantined']}"
            )
        print(f"   virtual seconds elapsed: {clock.now():.2f}")
        print(
            "\nEvery answer above was client-verified; the tampering and crashing"
            "\nreplicas only cost retries, never a wrong result."
        )
    finally:
        os.unlink(artifact_path)


if __name__ == "__main__":
    main()
