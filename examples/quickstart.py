#!/usr/bin/env python3
"""Quickstart: outsource a table, run analytic queries, verify the answers.

This walks through the paper's three-party model end to end on the Fig. 1
applicant table:

1. the **data owner** builds the IFMH-tree over its table (one
   :class:`repro.SystemConfig` describes the whole build) and uploads both
   to the (untrusted) cloud server, publishing only its public key and the
   utility-function template;
2. the **server** answers a top-k, a range and a KNN query, attaching a
   verification object to each result;
3. the **data user** verifies every result with public information only,
   and -- to show why this matters -- catches a tampered result;
4. the owner **publishes the ADS to disk** and a second server cold-starts
   from the artifact -- no rebuild, no re-hashing, identical answers.

Where to go next: ``examples/resilient_serving.py`` turns step 3's
detection into a serving strategy -- a pool of replicas cold-started from
one artifact, with failover and quarantine around tampering and crashing
replicas -- and ``examples/serving_demo.py`` scales step 4 out to a
multi-process front-end under open-loop load (``docs/serving.md``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import (
    Dataset,
    Domain,
    KNNQuery,
    OutsourcedSystem,
    RangeQuery,
    Server,
    SystemConfig,
    TopKQuery,
    UtilityTemplate,
)
from repro.attacks import drop_record


def build_applicant_table() -> Dataset:
    """The paper's Fig. 1 table: applicant ID, GPA, awards, papers."""
    rows = [
        # (gpa, awards, papers)
        (3.9, 2, 4),
        (3.5, 1, 7),
        (3.2, 0, 2),
        (3.8, 3, 1),
        (2.9, 1, 0),
        (3.6, 4, 5),
        (3.1, 2, 3),
        (3.7, 0, 6),
        (2.8, 1, 2),
        (3.4, 2, 1),
    ]
    labels = [f"applicant-{i}" for i in range(len(rows))]
    return Dataset.from_rows(("gpa", "award", "paper"), rows, labels=labels)


def main() -> None:
    dataset = build_applicant_table()
    # Score(X) = GPA * w1 + Award * w2  (weights chosen by the query issuer).
    template = UtilityTemplate(attributes=("gpa", "award"), domain=Domain.unit_box(2))

    print("== data owner: build the IFMH-tree and outsource the table ==")
    config = SystemConfig(
        scheme="one-signature", signature_algorithm="rsa", key_bits=1024
    )
    system = OutsourcedSystem.setup(
        dataset,
        template,
        config=config,
        rng=random.Random(42),
    )
    owner = system.owner
    print(f"   records ............ {len(dataset)}")
    print(f"   subdomains ......... {owner.ads.subdomain_count}")
    print(f"   owner signatures ... {owner.signature_count}")
    print(f"   ADS size ........... {owner.ads_size_bytes():,} bytes")

    queries = [
        TopKQuery(weights=(0.7, 0.3), k=3),
        RangeQuery(weights=(0.5, 0.5), low=1.8, high=2.6),
        KNNQuery(weights=(0.6, 0.4), k=4, target=2.3),
    ]

    print("\n== server answers, client verifies ==")
    for query in queries:
        execution, report = system.query_and_verify(query)
        names = [record.label for record in execution.result]
        print(f"   {query.describe()}")
        print(f"      result   : {names}")
        print(f"      server   : {execution.nodes_traversed} tree nodes traversed")
        print(f"      verified : {report.summary()} in {report.total_time * 1000:.2f} ms")
        report.raise_if_invalid()

    print("\n== a dishonest server drops a record ==")
    query = queries[0]
    execution = system.server.execute(query)
    tampered = drop_record(execution.result, execution.verification_object, random.Random(0))
    assert tampered is not None
    tampered_result, tampered_vo = tampered
    report = system.client.verify(query, tampered_result, tampered_vo)
    print(f"   tampered result  : {[record.label for record in tampered_result]}")
    print(f"   verification     : {report.summary()}")
    for failure in report.failures:
        print(f"      - {failure}")
    assert not report.is_valid, "the tampered result must be rejected"
    print("\nThe dropped record was detected -- the query result is rejected.")

    print("\n== publish the ADS; a second server cold-starts from disk ==")
    handle, artifact_path = tempfile.mkstemp(suffix=".npz", prefix="quickstart-ads-")
    os.close(handle)
    try:
        owner.publish(artifact_path)
        print(f"   artifact ........... {os.path.getsize(artifact_path):,} bytes")
        cold_server = Server.from_artifact(artifact_path)
        query = queries[0]
        warm = system.server.execute(query)
        cold = cold_server.execute(query)
        assert warm.result == cold.result
        assert warm.verification_object == cold.verification_object
        report = system.client.verify(query, cold.result, cold.verification_object)
        report.raise_if_invalid()
        print("   cold-start server answers verified, bit-identical to the build")
    finally:
        os.unlink(artifact_path)

    print(
        "\nNext: examples/resilient_serving.py runs a replica pool with"
        "\ntampering and crashing replicas -- failover keeps every answer verified."
        "\nexamples/serving_demo.py drives a multi-process front-end under"
        "\nopen-loop load from this same kind of artifact."
    )


if __name__ == "__main__":
    main()
