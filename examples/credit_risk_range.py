#!/usr/bin/env python3
"""Credit-risk screening: verifiable range queries against a compromised server.

A lender outsources its customer table and screens customers whose tunable
risk score falls inside a campaign-specific band (a score-range query).  A
compromised server tries several manipulations -- dropping a qualifying
customer, injecting a fake one, inflating an attribute -- and the example
shows that every manipulation is rejected by the client's verification,
while the honest answers verify cleanly.

Run with::

    python examples/credit_risk_range.py
"""

from __future__ import annotations

import random

from repro import OutsourcedSystem, RangeQuery, SystemConfig
from repro.attacks import all_attacks
from repro.workloads import credit_risk_scenario


def main() -> None:
    scenario = credit_risk_scenario(n_customers=50, seed=99)
    print(f"scenario: {scenario.name} -- {scenario.description}")
    print(f"customers: {len(scenario.dataset)}\n")

    system = OutsourcedSystem.setup(
        scenario.dataset,
        scenario.template,
        config=SystemConfig(
            scheme="multi-signature", signature_algorithm="rsa", key_bits=1024
        ),
        rng=random.Random(5),
    )

    campaigns = [
        ("prime offer", RangeQuery(weights=(0.3,), low=2.0, high=4.0)),
        ("standard offer", RangeQuery(weights=(0.5,), low=4.0, high=7.0)),
        ("review queue", RangeQuery(weights=(0.8,), low=7.0, high=11.0)),
    ]

    print("== honest server ==")
    executions = {}
    for name, query in campaigns:
        execution, report = system.query_and_verify(query)
        report.raise_if_invalid()
        executions[name] = (query, execution)
        print(
            f"   {name:15s} {query.describe():55s} "
            f"{len(execution.result):2d} customers, verified: {report.summary()}"
        )

    print("\n== compromised server ==")
    rng = random.Random(1)
    campaign_name, (query, execution) = list(executions.items())[0]
    detected = 0
    applicable = 0
    for attack in all_attacks():
        tampered = attack(execution.result, execution.verification_object, rng)
        if tampered is None:
            continue
        applicable += 1
        report = system.client.verify(query, tampered[0], tampered[1])
        status = "REJECTED" if not report.is_valid else "ACCEPTED (!)"
        reason = report.failures[0] if report.failures else ""
        print(f"   {attack.name:18s} [{attack.violates:12s}] -> {status:12s} {reason}")
        if not report.is_valid:
            detected += 1
    print(f"\n{detected}/{applicable} applicable manipulations detected on campaign '{campaign_name}'.")
    assert detected == applicable, "every manipulation must be detected"


if __name__ == "__main__":
    main()
