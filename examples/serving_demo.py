#!/usr/bin/env python3
"""Serving demo: a multi-process front-end under open-loop load.

``examples/quickstart.py`` ends with one server cold-starting from a
published artifact.  This demo scales that out to a **serving tier**
(``docs/serving.md``):

1. the owner publishes an epoch-0 artifact, applies a couple of updates
   and delta-publishes epoch 1;
2. a :class:`repro.ServingFrontEnd` forks **4 worker processes** off the
   epoch-0 artifact; a seeded open-loop trace (Poisson arrivals, a
   topk/range/kNN mix, hot/cold weight skew) is paced at its offered
   rate;
3. mid-stream the demo **crashes a worker** (its queries are requeued,
   the worker respawns from the artifact) and **hot-swaps every worker
   to epoch 1** -- no query is dropped by either;
4. every answer is client-verified against the epoch that served it,
   and the :class:`repro.LatencyRecorder` prints the percentile table
   the ``--serve`` bench gates on.

The trace is a pure function of its seed -- rerunning the demo offers
the exact same load, whatever the machine speed.

Run with::

    python examples/serving_demo.py
"""

from __future__ import annotations

import os
import random
import tempfile

from repro import (
    Client,
    Dataset,
    Domain,
    LatencyRecorder,
    OutsourcedSystem,
    Record,
    ServingFrontEnd,
    SystemConfig,
    TrafficConfig,
    UtilityTemplate,
    generate_trace,
    run_trace,
)

WORKERS = 4


def build_sensor_table() -> Dataset:
    """A small telemetry table: (throughput, reliability) per edge node."""
    rng = random.Random(7)
    rows = [
        (round(rng.uniform(1.0, 9.0), 2), round(rng.uniform(0.0, 4.0), 2))
        for _ in range(32)
    ]
    labels = [f"edge-node-{i:02d}" for i in range(len(rows))]
    return Dataset.from_rows(("throughput", "reliability"), rows, labels=labels)


def main() -> None:
    dataset = build_sensor_table()
    template = UtilityTemplate(
        attributes=("throughput", "reliability"), domain=Domain.unit_box(2)
    )

    print("== owner: publish epoch 0, delta-publish epoch 1 ==")
    system = OutsourcedSystem.setup(
        dataset,
        template,
        config=SystemConfig(scheme="one-signature", signature_algorithm="hmac"),
        rng=random.Random(42),
    )
    owner = system.owner
    with tempfile.TemporaryDirectory(prefix="serving-demo-") as directory:
        epoch0 = os.path.join(directory, "ads-epoch0.npz")
        owner.publish(epoch0)
        owner.apply_updates(
            inserts=[Record(record_id=len(dataset), values=(8.5, 3.5))],
            deletes=[3],
        )
        epoch1 = os.path.join(directory, "ads-epoch1.npz")
        owner.publish(epoch1, base=epoch0)
        clients = {0: Client.from_artifact(epoch0), 1: Client.from_artifact(epoch1)}
        print(f"   epoch 0 ... {os.path.getsize(epoch0):,} bytes")
        print(f"   epoch 1 ... {os.path.getsize(epoch1):,} bytes (delta-published)")

        print(f"\n== {WORKERS} workers cold-start; open-loop load at 120 q/s ==")
        trace = generate_trace(
            dataset,
            template,
            TrafficConfig(
                rate=120.0,
                count=180,
                hot_fraction=0.8,
                hot_vectors=3,
                cold_vectors=12,
                seed=11,
            ),
        )
        print(
            f"   trace ...... {len(trace)} arrivals over {trace.duration:.2f} s, "
            f"mix {trace.kind_counts()}"
        )
        print(f"   fingerprint  {trace.fingerprint()[:16]}... (seeded: replays exactly)")

        recorder = LatencyRecorder()
        with ServingFrontEnd(epoch0, workers=WORKERS) as frontend:
            actions = {
                len(trace) // 4: lambda: frontend.inject_crash(WORKERS - 1),
                len(trace) // 2: lambda: frontend.broadcast_swap(epoch1, base=epoch0),
            }
            print(
                f"   arrival {len(trace) // 4}: worker {WORKERS - 1} crashes "
                "(requeue + respawn)"
            )
            print(f"   arrival {len(trace) // 2}: hot-swap broadcast to epoch 1")
            tickets = run_trace(frontend, trace, actions=actions)
            frontend.drain(tickets, timeout=120.0)
            stats = frontend.worker_stats()
            requeued = frontend.requeued
        recorder.observe_all(tickets)

        print("\n== every answer verifies against the epoch that served it ==")
        by_epoch = {0: 0, 1: 0}
        for ticket in tickets:
            reply = ticket.reply
            assert reply is not None, "zero drops across crash and swap"
            report = clients[reply.epoch].verify(
                reply.query, reply.result, reply.verification_object
            )
            report.raise_if_invalid()
            by_epoch[reply.epoch] += 1
        print(f"   verified ... {len(tickets)}/{len(tickets)}")
        print(f"   epoch 0 .... {by_epoch[0]} answers (queued before the swap)")
        print(f"   epoch 1 .... {by_epoch[1]} answers (after the swap)")
        print(
            f"   requeued ... {requeued} queries re-dispatched after the crash "
            "(whatever the dead worker still owed)"
        )

        summary = recorder.summary(offered_rate=120.0, worker_stats=stats)
        latency = summary["latency"]
        queue_delay = summary["queue_delay"]
        print("\n== latency (enqueue -> verified reply) ==")
        print("              p50      p95      p99      max")
        for name, row in (("latency", latency), ("queue delay", queue_delay)):
            print(
                f"   {name:<11s}"
                + "".join(f"{row[q] * 1000.0:7.2f}ms" for q in ("p50", "p95", "p99", "max"))
            )
        print(
            f"   achieved ... {summary['achieved_rate']:.1f} q/s of "
            f"{summary['offered_rate']:.1f} q/s offered"
        )
        print("\n== per-worker ==")
        for worker_id, row in sorted(summary["per_worker"].items()):
            print(
                f"   worker {worker_id}: served={row['served']:3d} "
                f"batches={row['batches']:3d} "
                f"utilisation={row['utilisation']:.0%} respawns={row['respawns']}"
            )
        print(
            "\nZero drops across a worker crash and a live epoch swap;"
            "\npython -m repro.bench --serve gates exactly this behaviour."
        )


if __name__ == "__main__":
    main()
