#!/usr/bin/env python3
"""Patient-risk monitoring: verifiable KNN queries and a baseline comparison.

A clinic outsources a patient risk table.  Clinicians tune the weight of the
modifiable risk factors and retrieve the k patients whose scores are nearest
to a screening threshold (a KNN-on-score query), verifying every answer.
The example runs the same workload against the IFMH one-signature scheme and
against the signature-mesh baseline, and prints the head-to-head costs the
paper's evaluation reports: server nodes/cells traversed, verification-object
size and client verification time.

Run with::

    python examples/patient_knn_monitoring.py
"""

from __future__ import annotations

import random

from repro import KNNQuery, OutsourcedSystem, SystemConfig
from repro.metrics import Counters
from repro.workloads import patient_risk_scenario


def main() -> None:
    scenario = patient_risk_scenario(n_patients=45, seed=3)
    print(f"scenario: {scenario.name} -- {scenario.description}")
    print(f"patients: {len(scenario.dataset)}\n")

    screenings = [
        KNNQuery(weights=(0.8,), k=5, target=6.0),
        KNNQuery(weights=(1.2,), k=5, target=8.0),
        KNNQuery(weights=(1.8,), k=7, target=10.0),
    ]

    systems = {}
    for scheme in ("one-signature", "signature-mesh"):
        systems[scheme] = OutsourcedSystem.setup(
            scenario.dataset,
            scenario.template,
            config=SystemConfig(
                scheme=scheme, signature_algorithm="rsa", key_bits=1024
            ),
            rng=random.Random(11),
        )

    print(f"{'scheme':16s} {'owner sigs':>10s} {'ADS bytes':>12s}")
    for scheme, system in systems.items():
        print(
            f"{scheme:16s} {system.owner.signature_count:>10,d} "
            f"{system.owner.ads_size_bytes():>12,d}"
        )

    print("\nper-screening comparison (server nodes, VO bytes, client verification):")
    header = f"   {'query':40s} {'scheme':16s} {'nodes':>6s} {'VO B':>8s} {'verify ms':>10s}"
    print(header)
    print("   " + "-" * (len(header) - 3))
    dimension = scenario.template.dimension
    for query in screenings:
        reference_ids = None
        for scheme, system in systems.items():
            server_counters = Counters()
            client_counters = Counters()
            execution, report = system.query_and_verify(
                query, server_counters=server_counters, client_counters=client_counters
            )
            report.raise_if_invalid()
            ids = execution.result.record_ids()
            if reference_ids is None:
                reference_ids = ids
            else:
                assert ids == reference_ids, "both schemes must return the same patients"
            vo_bytes = execution.verification_object.size_bytes(dimension)
            print(
                f"   {query.describe():40s} {scheme:16s} "
                f"{server_counters.nodes_traversed:>6d} {vo_bytes:>8,d} "
                f"{report.total_time * 1000:>10.2f}"
            )
    print("\nBoth schemes return identical patients; the IFMH-tree does it with a")
    print("logarithmic search and a single signature to verify, while the mesh")
    print("scans its cells linearly and ships one signature per consecutive pair.")


if __name__ == "__main__":
    main()
