#!/usr/bin/env python3
"""University admissions: verifiable top-k shortlists under changing weights.

The admissions committee outsources its applicant table to a cloud provider.
Different committee members weigh GPA and awards differently; each asks for
their own top-k shortlist and verifies the answer before using it.  The
example also compares the one-signature and multi-signature modes on the
same workload (owner signatures, verification-object size, verification
time), illustrating the trade-off discussed in section 3.1 of the paper.

Run with::

    python examples/admissions_topk.py
"""

from __future__ import annotations

import random

from repro import OutsourcedSystem, SystemConfig, TopKQuery
from repro.metrics import Counters
from repro.workloads import admissions_scenario


def main() -> None:
    # 12 applicants keeps the bivariate (LP-engine) arrangement small enough
    # for an interactive example; the benchmarks sweep larger scales on the
    # univariate template.
    scenario = admissions_scenario(n_applicants=12, seed=2024)
    print(f"scenario: {scenario.name} -- {scenario.description}")
    print(f"applicants: {len(scenario.dataset)}\n")

    committee_weights = [
        ("research-focused", (0.3, 0.7)),
        ("gpa-focused", (0.8, 0.2)),
        ("balanced", (0.5, 0.5)),
    ]

    for scheme in ("one-signature", "multi-signature"):
        system = OutsourcedSystem.setup(
            scenario.dataset,
            scenario.template,
            config=SystemConfig(
                scheme=scheme, signature_algorithm="rsa", key_bits=1024
            ),
            rng=random.Random(7),
        )
        owner = system.owner
        print(f"== {scheme} ==")
        print(f"   owner signatures : {owner.signature_count}")
        print(f"   ADS size         : {owner.ads_size_bytes():,} bytes")

        total_vo_bytes = 0
        total_verify_ms = 0.0
        for member, weights in committee_weights:
            query = TopKQuery(weights=weights, k=5)
            counters = Counters()
            execution, report = system.query_and_verify(query, client_counters=counters)
            report.raise_if_invalid()
            shortlist = [record.label for record in reversed(execution.result.records)]
            vo_bytes = execution.verification_object.size_bytes(scenario.template.dimension)
            total_vo_bytes += vo_bytes
            total_verify_ms += report.total_time * 1000
            print(f"   {member:18s} weights={weights}  top-5 = {shortlist}")
            print(
                f"   {'':18s} VO {vo_bytes:,} B, verified with "
                f"{counters.hash_operations} hashes + {counters.signatures_verified} signature "
                f"in {report.total_time * 1000:.2f} ms"
            )
        print(
            f"   totals           : {total_vo_bytes:,} VO bytes, "
            f"{total_verify_ms:.2f} ms verification across {len(committee_weights)} members\n"
        )


if __name__ == "__main__":
    main()
