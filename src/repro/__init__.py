"""repro -- Verifiable analytic query results.

Reproduction of Nosrati & Cai, *"Verifying the Correctness of Analytic Query
Results"* (TKDE 2020 / ICDE 2023): the IFMH-tree authenticated data
structure (one-signature and multi-signature modes) for verifying top-k,
score-range and KNN query results over outsourced databases, plus the
signature-mesh baseline it is compared against.

Quick start
-----------
>>> from repro import Dataset, UtilityTemplate, OutsourcedSystem, TopKQuery
>>> dataset = Dataset.from_rows(("gpa", "award", "paper"),
...                             [(3.9, 2, 4), (3.5, 1, 7), (3.2, 0, 2)])
>>> template = UtilityTemplate(attributes=("gpa", "award"))
>>> system = OutsourcedSystem.setup(dataset, template, scheme="one-signature",
...                                 signature_algorithm="hmac")
>>> execution, report = system.query_and_verify(TopKQuery(weights=(0.6, 0.4), k=2))
>>> report.is_valid
True
"""

from repro.core import (
    AnalyticQuery,
    Client,
    ConstructionError,
    DataOwner,
    Dataset,
    InvalidQueryError,
    KNNQuery,
    OutsourcedSystem,
    PublicParameters,
    QueryExecution,
    QueryProcessingError,
    QueryResult,
    RangeQuery,
    Record,
    ReproError,
    SCHEMES,
    SIGNATURE_MESH,
    Server,
    ServerPackage,
    TopKQuery,
    UtilityTemplate,
    VerificationError,
    VerificationReport,
)
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalyticQuery",
    "Client",
    "ConstructionError",
    "DataOwner",
    "Dataset",
    "Domain",
    "InvalidQueryError",
    "KNNQuery",
    "MULTI_SIGNATURE",
    "ONE_SIGNATURE",
    "OutsourcedSystem",
    "PublicParameters",
    "QueryExecution",
    "QueryProcessingError",
    "QueryResult",
    "RangeQuery",
    "Record",
    "ReproError",
    "SCHEMES",
    "SIGNATURE_MESH",
    "Server",
    "ServerPackage",
    "TopKQuery",
    "UtilityTemplate",
    "VerificationError",
    "VerificationReport",
]
