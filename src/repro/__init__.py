"""repro -- Verifiable analytic query results.

Reproduction of Nosrati & Cai, *"Verifying the Correctness of Analytic Query
Results"* (TKDE 2020 / ICDE 2023): the IFMH-tree authenticated data
structure (one-signature and multi-signature modes) for verifying top-k,
score-range and KNN query results over outsourced databases, plus the
signature-mesh baseline it is compared against.

Quick start
-----------
>>> from repro import Dataset, UtilityTemplate, OutsourcedSystem, TopKQuery
>>> dataset = Dataset.from_rows(("gpa", "award", "paper"),
...                             [(3.9, 2, 4), (3.5, 1, 7), (3.2, 0, 2)])
>>> template = UtilityTemplate(attributes=("gpa", "award"))
>>> system = OutsourcedSystem.setup(dataset, template, scheme="one-signature",
...                                 signature_algorithm="hmac")
>>> execution, report = system.query_and_verify(TopKQuery(weights=(0.6, 0.4), k=2))
>>> report.is_valid
True

Fast paths
----------
For the univariate interval configuration (the paper's benchmark setting)
the IFMH-tree is built by a vectorized **bulk builder**: all pairwise
breakpoints are computed in one numpy pass, sorted once, and assembled into
a *balanced* I-tree -- no per-hyperplane BFS insertion.  The paper's
incremental insertion remains the reference implementation and is used
automatically for d >= 2 (the LP-engine configuration) and for ablations;
select it explicitly with ``build_mode="incremental"`` on
:class:`DataOwner` / :class:`~repro.ifmh.IFMHTree`, or validate the bulk
assembly with ``build_mode="balanced-incremental"`` (the property tests
check bit-identical root hashes between the two).

On the query side, servers score a subdomain with a single cached
``A @ w + b`` matvec and expose ``Server.execute_batch(queries)``, which
amortizes the subdomain search and scoring across queries sharing a weight
vector while keeping per-query cost counters isolated;
``OutsourcedSystem.query_and_verify_batch`` runs the batched pipeline end to
end.  Benchmark both fast paths with ``python -m repro.bench --fastpath``
(or the CI gate ``python -m repro.bench --smoke``).

Publishable artifacts
---------------------
Construction is configured by one frozen :class:`SystemConfig` threaded
through every layer, and the finished ADS can be published to disk and
cold-started without rebuilding:

>>> system = OutsourcedSystem.setup(dataset, template,
...                                 config=SystemConfig(scheme="one-signature"))
>>> system.owner.publish("ads.npz")                      # doctest: +SKIP
>>> server = Server.from_artifact("ads.npz")             # doctest: +SKIP

Loading re-hashes nothing and answers queries bit-identically to the
in-process build (``python -m repro.bench --coldstart`` gates load >= 10x
faster than rebuild at n = 1000); see ``docs/artifacts.md``.

Incremental updates
-------------------
The live ADS absorbs record changes without a rebuild:

>>> system.owner.insert(Record(record_id=99, values=(3.3, 2.5)))  # doctest: +SKIP
>>> system.owner.delete(42)                                       # doctest: +SKIP
>>> system.owner.publish("ads-epoch2.npz", base="ads.npz")        # doctest: +SKIP

Each batch rebuilds only the changed paths against the persisted Merkle
arena, bumps the ADS epoch (bound into every signed message, so stale
servers fail verification) and stays bit-identical to a from-scratch
build of the final dataset (``python -m repro.bench --update`` gates
single-record updates >= 10x faster than a rebuild at n = 1000); see
``docs/updates.md``.

Byzantine-resilient serving
---------------------------
Because every answer is client-verified, replica faults -- crashes, stale
epochs, outright tampering -- reduce to "try another replica".  The
:mod:`repro.resilience` package serves from a pool of N replicas
cold-started from one artifact, with bounded retries, deterministic
backoff and quarantine of repeat offenders:

>>> rc = OutsourcedSystem.resilient_from_artifact("ads.npz", replicas=3)  # doctest: +SKIP
>>> outcome = rc.execute(TopKQuery(weights=(0.6, 0.4), k=2))              # doctest: +SKIP
>>> outcome.accepted, outcome.flags()                                     # doctest: +SKIP

The seeded :class:`FaultInjector` drives the adversarial benchmark
``python -m repro.bench --faults`` (zero tampered answers accepted, all
accepted answers verified, goodput floor); see ``docs/resilience.md``.

Multi-worker serving
--------------------
The :mod:`repro.serving` package runs N worker *processes*, each
cold-started from the same published artifact, behind a batching dispatcher
(same-weight queries share one ``execute_batch`` call), with an open-loop
seeded-Poisson load harness and a latency/throughput recorder:

>>> with ServingFrontEnd("ads.npz", workers=4) as frontend:      # doctest: +SKIP
...     trace = generate_trace(dataset, template, TrafficConfig(seed=7))
...     tickets = run_trace(frontend, trace)
...     frontend.drain(tickets)

Worker crashes respawn from the artifact with every owed query requeued,
and ``broadcast_swap`` hot-swaps all workers to a new epoch mid-load
without dropping a query.  Gated by ``python -m repro.bench --serve``; see
``docs/serving.md``.
"""

from repro.core import (
    AnalyticQuery,
    Client,
    ConstructionError,
    DataOwner,
    Dataset,
    InvalidQueryError,
    KNNQuery,
    OutsourcedSystem,
    PublicParameters,
    QueryExecution,
    QueryProcessingError,
    QueryResult,
    RangeQuery,
    Record,
    ReproError,
    SCHEMES,
    SIGNATURE_MESH,
    Server,
    ServerPackage,
    SystemConfig,
    TopKQuery,
    UpdateReport,
    UtilityTemplate,
    VerificationError,
    VerificationReport,
)
from repro.geometry.domain import Domain
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ReplicaPool,
    ResilientClient,
    ResilientExecution,
    RetryPolicy,
    VirtualClock,
)
from repro.serving import (
    LatencyRecorder,
    ServingClock,
    ServingFrontEnd,
    ServingTicket,
    TrafficConfig,
    TrafficTrace,
    WorkerProxy,
    generate_trace,
    run_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalyticQuery",
    "Client",
    "ConstructionError",
    "DataOwner",
    "Dataset",
    "Domain",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InvalidQueryError",
    "KNNQuery",
    "LatencyRecorder",
    "ServingClock",
    "ServingFrontEnd",
    "ServingTicket",
    "TrafficConfig",
    "TrafficTrace",
    "WorkerProxy",
    "generate_trace",
    "run_trace",
    "MULTI_SIGNATURE",
    "ONE_SIGNATURE",
    "OutsourcedSystem",
    "ReplicaPool",
    "ResilientClient",
    "ResilientExecution",
    "RetryPolicy",
    "VirtualClock",
    "PublicParameters",
    "QueryExecution",
    "QueryProcessingError",
    "QueryResult",
    "RangeQuery",
    "Record",
    "ReproError",
    "SCHEMES",
    "SIGNATURE_MESH",
    "Server",
    "ServerPackage",
    "SystemConfig",
    "TopKQuery",
    "UpdateReport",
    "UtilityTemplate",
    "VerificationError",
    "VerificationReport",
]
