"""DSA signatures implemented from scratch.

Fig. 7c of the paper compares the time to verify RSA versus DSA signatures.
This module implements classic FIPS-186 style DSA over a prime-order
subgroup:

* parameter generation (p, q, g) for configurable sizes;
* per-key generation (x, y = g^x mod p);
* deterministic per-message nonces derived HMAC-style from the private key
  and the digest (in the spirit of RFC 6979) so signing is reproducible and
  never reuses a nonce.

Small parameter sizes (e.g. ``p`` of 512 bits, ``q`` of 160 bits) are allowed
for unit tests; the benchmarks default to 1024/160, the configuration most
commonly paired with SHA-256 truncation in legacy deployments and the one the
paper's timing comparison implies.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import sha256
from repro.crypto.primes import generate_prime, is_probable_prime

__all__ = [
    "DSAParameters",
    "DSAPublicKey",
    "DSAPrivateKey",
    "DSAKeyPair",
    "generate_dsa_parameters",
    "generate_dsa_keypair",
]


@dataclass(frozen=True)
class DSAParameters:
    """Domain parameters ``(p, q, g)`` shared by a DSA key pair."""

    p: int
    q: int
    g: int

    @property
    def p_bits(self) -> int:
        return self.p.bit_length()

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()

    @property
    def signature_size(self) -> int:
        """Size in bytes of an (r, s) signature pair."""
        q_len = (self.q.bit_length() + 7) // 8
        return 2 * q_len


@dataclass(frozen=True)
class DSAPublicKey:
    """A DSA public key ``y = g^x mod p`` plus its domain parameters."""

    parameters: DSAParameters
    y: int

    @property
    def signature_size(self) -> int:
        return self.parameters.signature_size

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.verify_digest(sha256(message), signature)

    def verify_digest(self, digest: bytes, signature: bytes) -> bool:
        params = self.parameters
        q_len = (params.q.bit_length() + 7) // 8
        if len(signature) != 2 * q_len:
            return False
        r = int.from_bytes(signature[:q_len], "big")
        s = int.from_bytes(signature[q_len:], "big")
        if not (0 < r < params.q and 0 < s < params.q):
            return False
        w = pow(s, -1, params.q)
        z = _bits_to_int(digest, params.q)
        u1 = (z * w) % params.q
        u2 = (r * w) % params.q
        v = ((pow(params.g, u1, params.p) * pow(self.y, u2, params.p)) % params.p) % params.q
        return v == r


@dataclass(frozen=True)
class DSAPrivateKey:
    """A DSA private key ``x`` plus its domain parameters."""

    parameters: DSAParameters
    x: int

    @property
    def signature_size(self) -> int:
        return self.parameters.signature_size

    def public_key(self) -> DSAPublicKey:
        params = self.parameters
        return DSAPublicKey(parameters=params, y=pow(params.g, self.x, params.p))

    def sign(self, message: bytes) -> bytes:
        return self.sign_digest(sha256(message))

    def sign_digest(self, digest: bytes) -> bytes:
        params = self.parameters
        q_len = (params.q.bit_length() + 7) // 8
        z = _bits_to_int(digest, params.q)
        counter = 0
        while True:
            k = _deterministic_nonce(self.x, digest, params.q, counter)
            counter += 1
            r = pow(params.g, k, params.p) % params.q
            if r == 0:
                continue
            k_inv = pow(k, -1, params.q)
            s = (k_inv * (z + self.x * r)) % params.q
            if s == 0:
                continue
            return r.to_bytes(q_len, "big") + s.to_bytes(q_len, "big")


@dataclass(frozen=True)
class DSAKeyPair:
    """A matching private/public DSA key pair."""

    private: DSAPrivateKey
    public: DSAPublicKey


def _bits_to_int(digest: bytes, q: int) -> int:
    """Convert a digest to an integer, truncated to the bit length of q."""
    value = int.from_bytes(digest, "big")
    excess = 8 * len(digest) - q.bit_length()
    if excess > 0:
        value >>= excess
    return value % q


def _deterministic_nonce(x: int, digest: bytes, q: int, counter: int) -> int:
    """Derive a nonce in [1, q-1] from the key, digest and retry counter."""
    q_len = (q.bit_length() + 7) // 8
    key = x.to_bytes((x.bit_length() + 7) // 8 or 1, "big")
    data = digest + counter.to_bytes(4, "big")
    stream = b""
    block_index = 0
    while len(stream) < q_len + 8:
        stream += hmac.new(key, data + block_index.to_bytes(4, "big"), hashlib.sha256).digest()
        block_index += 1
    return 1 + int.from_bytes(stream, "big") % (q - 1)


def generate_dsa_parameters(
    p_bits: int = 1024,
    q_bits: int = 160,
    rng: Optional[random.Random] = None,
) -> DSAParameters:
    """Generate DSA domain parameters ``(p, q, g)``.

    ``q`` is a random prime of ``q_bits`` bits; ``p`` is searched as
    ``p = k*q + 1`` until prime; ``g`` is ``h^((p-1)/q) mod p`` for the first
    ``h`` that yields a generator of the order-``q`` subgroup.
    """
    if q_bits < 64:
        raise ValueError(f"q must be at least 64 bits, got {q_bits}")
    if p_bits <= q_bits + 16:
        raise ValueError("p must be substantially larger than q")
    rng = rng or random.SystemRandom()
    q = generate_prime(q_bits, rng)
    while True:
        m = rng.getrandbits(p_bits) | (1 << (p_bits - 1))
        p = m - (m % (2 * q)) + 1
        if p.bit_length() != p_bits:
            continue
        if is_probable_prime(p, rng=rng):
            break
    exponent = (p - 1) // q
    h = 2
    while True:
        g = pow(h, exponent, p)
        if g > 1:
            return DSAParameters(p=p, q=q, g=g)
        h += 1


def generate_dsa_keypair(
    p_bits: int = 1024,
    q_bits: int = 160,
    rng: Optional[random.Random] = None,
    parameters: Optional[DSAParameters] = None,
) -> DSAKeyPair:
    """Generate a DSA key pair (optionally reusing existing parameters)."""
    rng = rng or random.SystemRandom()
    params = parameters or generate_dsa_parameters(p_bits, q_bits, rng)
    x = rng.randrange(1, params.q)
    private = DSAPrivateKey(parameters=params, x=x)
    return DSAKeyPair(private=private, public=private.public_key())
