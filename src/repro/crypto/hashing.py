"""One-way hashing used throughout the verification data structures.

The paper uses SHA-256 both for Merkle node digests and for the signature
mesh pair digests.  All hashing performed on behalf of a party (owner, server
or client) is routed through a :class:`HashFunction` instance so the number
of hash operations can be counted exactly -- Fig. 7a of the paper reports
"number of hashing operations", and the benchmark harness reproduces that
figure from these counters rather than from estimates.

Counting semantics
------------------
The shared-structure construction engine (:mod:`repro.merkle.engine`) can
satisfy a hash the algorithm asks for from a cache instead of invoking
SHA-256.  Two counters therefore coexist:

* **logical** operations (:attr:`HashFunction.call_count`,
  ``Counters.hash_operations``) -- every hash the paper's algorithm
  *performs*, whether it was computed or served from a cache.  The Fig. 5a
  and Fig. 7a experiments report this number, so reproduced figures are
  unchanged by any caching the implementation does.
* **physical** invocations (:attr:`HashFunction.physical_count`,
  ``Counters.physical_hash_operations``) -- SHA-256 compressions that
  actually ran.  The construction benchmark gates its speedup on this
  number.

:meth:`digest` and :meth:`combine` count one logical *and* one physical
operation; a cache that answers a request without hashing calls
:meth:`note_cached` to record the logical operation alone.  Code that never
touches a cache (all client-side verification) keeps the two counts equal.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence

__all__ = [
    "HashFunction",
    "sha256",
    "sha256_hex",
    "sha256_many",
    "epoch_token",
    "epoch_bound_combine",
    "DIGEST_SIZE",
]

#: Size in bytes of a SHA-256 digest.  Used by the size accounting in
#: :mod:`repro.metrics.sizes`.
DIGEST_SIZE = 32


def epoch_token(epoch: int) -> bytes:
    """Canonical byte encoding of an ADS epoch, bound into signed messages.

    Epoch 0 (the initial build) signs the legacy message with no token, so
    every pre-update digest and signature is unchanged; from epoch 1 on the
    token is combined into the message, which is what lets a verifying
    client -- who learns the current epoch from the owner's public
    parameters -- reject responses served from a stale (pre-update) ADS
    even though their signatures were once genuine.
    """
    if epoch < 0:
        raise ValueError(f"epoch must be >= 0, got {epoch}")
    return b"repro:ads:epoch:" + str(int(epoch)).encode("ascii")


def epoch_bound_combine(
    hash_function: "HashFunction", epoch: int, *parts: bytes
) -> bytes:
    """``combine(*parts)`` with the epoch token appended from epoch 1 on.

    The single place that encodes the "epoch 0 keeps the legacy message"
    rule for every multi-part signed message (multi-signature subdomain
    digests, mesh pair digests): signers and verifiers both call this, so
    the two sides cannot drift.
    """
    if epoch == 0:
        return hash_function.combine(*parts)
    return hash_function.combine(*parts, epoch_token(epoch))


def sha256(data: bytes) -> bytes:
    """Return the raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the hexadecimal SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def sha256_many(preimages: Iterable[bytes]) -> List[bytes]:
    """Digest every preimage in one tight pass.

    This is the bulk-hashing primitive behind the level-order batched
    Merkle construction (:mod:`repro.merkle.arena`): the caller gathers all
    uncached preimages of one tree level into a contiguous buffer and hands
    the row slices here, so the per-hash Python overhead is one loop
    iteration instead of a counting-wrapper method call per node.  Accepts
    any iterable of buffer-like objects (``bytes``, ``memoryview`` slices,
    numpy rows).
    """
    _sha256 = hashlib.sha256
    return [_sha256(preimage).digest() for preimage in preimages]


class HashFunction:
    """A counting wrapper around SHA-256.

    Parameters
    ----------
    counter:
        Optional :class:`repro.metrics.counters.Counters` instance (or any
        object with an ``add_hash()`` method).  Every call to :meth:`digest`
        or :meth:`combine` increments it by one, matching the paper's
        definition of a "hashing operation" (one invocation of the one-way
        hash, however many bytes it consumes).  If the counter also exposes
        ``add_physical_hash()``, physical SHA-256 invocations are reported
        to it as well (cache hits recorded via :meth:`note_cached` are
        logical-only).
    """

    digest_size = DIGEST_SIZE

    def __init__(self, counter: Optional[object] = None) -> None:
        # The counter's methods are bound once here; swapping a counter in
        # afterwards is not supported (construct a new HashFunction instead).
        self._add_hash = counter.add_hash if counter is not None else None
        self._add_physical = getattr(counter, "add_physical_hash", None)
        self.call_count = 0
        self.physical_count = 0

    # ------------------------------------------------------------------ API
    def digest(self, data: bytes) -> bytes:
        """Hash a single byte string."""
        self._count()
        return hashlib.sha256(data).digest()

    def combine(self, *parts: bytes) -> bytes:
        """Hash the concatenation of ``parts`` (a single hash operation).

        This implements the ``H(x | y | ...)`` notation of the paper: the
        parts are concatenated with an unambiguous length prefix so that
        ``combine(b"ab", b"c")`` and ``combine(b"a", b"bc")`` differ.
        """
        self._count()
        h = hashlib.sha256()
        for part in parts:
            h.update(len(part).to_bytes(8, "big"))
            h.update(part)
        return h.digest()

    def digest_many(self, items: Iterable[bytes]) -> bytes:
        """Hash an iterable of byte strings as a single operation."""
        return self.combine(*items)

    def digest_batch(self, preimages: Sequence[bytes]) -> List[bytes]:
        """Hash many independent preimages in one bulk pass.

        Each preimage is one logical *and* one physical operation, exactly
        as if :meth:`digest` had been called once per entry; only the
        per-call counting overhead is amortized (one counter update for the
        whole batch).  Used by the level-order batched Merkle construction.
        """
        digests = sha256_many(preimages)
        count = len(digests)
        if count:
            self.call_count += count
            self.physical_count += count
            if self._add_hash is not None:
                self._add_hash(count)
                if self._add_physical is not None:
                    self._add_physical(count)
        return digests

    def note_computed(self, count: int = 1) -> None:
        """Record ``count`` hash operations physically performed elsewhere.

        Both the logical and the physical counters advance, exactly as if
        :meth:`digest` had run ``count`` times here -- but the SHA-256 work
        happened in another process (the parallel forest build's workers
        hash their shards with throwaway ``HashFunction`` instances and the
        parent credits the distinct-node total through this method, keeping
        the counters bit-identical to the single-process build).
        """
        if count:
            self.call_count += count
            self.physical_count += count
            if self._add_hash is not None:
                self._add_hash(count)
                if self._add_physical is not None:
                    self._add_physical(count)

    def note_cached(self, count: int = 1) -> None:
        """Record ``count`` logical hash operations served from a cache.

        The algorithm performed the operations (they appear in
        ``call_count`` / ``Counters.hash_operations`` exactly as if they had
        been computed), but no SHA-256 invocation ran, so the physical
        counters are untouched.
        """
        self.call_count += count
        if self._add_hash is not None:
            self._add_hash(count)

    # ------------------------------------------------------------ internals
    def _count(self) -> None:
        self.call_count += 1
        self.physical_count += 1
        if self._add_hash is not None:
            self._add_hash()
            if self._add_physical is not None:
                self._add_physical()

    def reset(self) -> None:
        """Reset the local call counters (the shared counter is untouched)."""
        self.call_count = 0
        self.physical_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HashFunction(calls={self.call_count}, physical={self.physical_count})"
