"""Pluggable signature schemes.

The data owner signs Merkle roots (one-signature), subdomain digests
(multi-signature) or pair digests (signature mesh).  All three code paths go
through the :class:`Signer` / :class:`Verifier` interfaces defined here so
the signature algorithm can be swapped by name -- which is exactly what the
paper's Fig. 7c experiment does when it compares RSA and DSA verification
time.

Available schemes
-----------------
``"rsa"``
    From-scratch RSA (PKCS#1-v1.5 style) -- the paper's default.
``"dsa"``
    From-scratch DSA with deterministic nonces.
``"hmac"``
    A keyed-hash scheme used only to keep unit tests fast.  It is *not* a
    public-key scheme (the verifier holds the same secret), so it must never
    be used when modelling a genuinely untrusted verifier; tests that do use
    it only exercise structural logic, not the trust model.
"""

from __future__ import annotations

import hashlib
import hmac
import random
import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.crypto.dsa import DSAKeyPair, generate_dsa_keypair
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair

__all__ = [
    "Signer",
    "Verifier",
    "KeyPair",
    "SignatureScheme",
    "make_signer",
    "available_schemes",
    "register_scheme",
]


@runtime_checkable
class Signer(Protocol):
    """Anything that can produce signatures over byte strings."""

    scheme: str

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` and return the signature bytes."""

    @property
    def signature_size(self) -> int:
        """Size in bytes of a signature produced by this signer."""


@runtime_checkable
class Verifier(Protocol):
    """Anything that can check signatures over byte strings."""

    scheme: str

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True when ``signature`` is valid for ``message``."""

    @property
    def signature_size(self) -> int:
        """Size in bytes of signatures this verifier accepts."""


@dataclass
class KeyPair:
    """A signer/verifier pair produced by :func:`make_signer`."""

    scheme: str
    signer: Signer
    verifier: Verifier

    @property
    def signature_size(self) -> int:
        return self.signer.signature_size


# --------------------------------------------------------------------- RSA
@dataclass
class _RSASigner:
    keypair: RSAKeyPair
    scheme: str = "rsa"

    def sign(self, message: bytes) -> bytes:
        return self.keypair.private.sign(message)

    @property
    def signature_size(self) -> int:
        return self.keypair.public.signature_size


@dataclass
class _RSAVerifier:
    keypair: RSAKeyPair
    scheme: str = "rsa"

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.keypair.public.verify(message, signature)

    @property
    def signature_size(self) -> int:
        return self.keypair.public.signature_size


# --------------------------------------------------------------------- DSA
@dataclass
class _DSASigner:
    keypair: DSAKeyPair
    scheme: str = "dsa"

    def sign(self, message: bytes) -> bytes:
        return self.keypair.private.sign(message)

    @property
    def signature_size(self) -> int:
        return self.keypair.public.signature_size


@dataclass
class _DSAVerifier:
    keypair: DSAKeyPair
    scheme: str = "dsa"

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.keypair.public.verify(message, signature)

    @property
    def signature_size(self) -> int:
        return self.keypair.public.signature_size


# -------------------------------------------------------------------- HMAC
@dataclass
class _HMACSigner:
    key: bytes
    scheme: str = "hmac"

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self.key, message, hashlib.sha256).digest()

    @property
    def signature_size(self) -> int:
        return 32


@dataclass
class _HMACVerifier:
    key: bytes
    scheme: str = "hmac"

    def verify(self, message: bytes, signature: bytes) -> bool:
        expected = hmac.new(self.key, message, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature)

    @property
    def signature_size(self) -> int:
        return 32


# ----------------------------------------------------------------- factory
@dataclass
class SignatureScheme:
    """Registry entry describing how to build a key pair for a scheme."""

    name: str
    factory: Callable[..., KeyPair]
    description: str = ""


_REGISTRY: Dict[str, SignatureScheme] = {}


def register_scheme(name: str, factory: Callable[..., KeyPair], description: str = "") -> None:
    """Register a signature scheme under ``name`` (overwrites any previous)."""
    _REGISTRY[name] = SignatureScheme(name=name, factory=factory, description=description)


def available_schemes() -> list[str]:
    """Names of all registered signature schemes."""
    return sorted(_REGISTRY)


def make_signer(
    scheme: str = "rsa",
    *,
    rng: Optional[random.Random] = None,
    key_bits: Optional[int] = None,
) -> KeyPair:
    """Create a fresh signer/verifier pair for the named scheme.

    Parameters
    ----------
    scheme:
        One of :func:`available_schemes` (``"rsa"``, ``"dsa"`` or ``"hmac"``).
    rng:
        Seeded random source for reproducible key generation.
    key_bits:
        Optional key-size override (RSA modulus bits, DSA ``p`` bits).  The
        defaults are 2048 for RSA and 1024 for DSA; tests pass smaller sizes
        to stay fast.
    """
    try:
        entry = _REGISTRY[scheme]
    except KeyError:
        raise ValueError(
            f"unknown signature scheme {scheme!r}; available: {available_schemes()}"
        ) from None
    return entry.factory(rng=rng, key_bits=key_bits)


def _rsa_factory(rng: Optional[random.Random] = None, key_bits: Optional[int] = None) -> KeyPair:
    keypair = generate_rsa_keypair(bits=key_bits or 2048, rng=rng)
    return KeyPair(scheme="rsa", signer=_RSASigner(keypair), verifier=_RSAVerifier(keypair))


def _dsa_factory(rng: Optional[random.Random] = None, key_bits: Optional[int] = None) -> KeyPair:
    p_bits = key_bits or 1024
    q_bits = 160 if p_bits >= 512 else max(64, p_bits // 4)
    keypair = generate_dsa_keypair(p_bits=p_bits, q_bits=q_bits, rng=rng)
    return KeyPair(scheme="dsa", signer=_DSASigner(keypair), verifier=_DSAVerifier(keypair))


def _hmac_factory(rng: Optional[random.Random] = None, key_bits: Optional[int] = None) -> KeyPair:
    # Key material must come from the OS CSPRNG by default: a Mersenne
    # Twister key is recoverable from outputs.  The seeded ``rng`` injection
    # path stays available for deterministic tests.
    key = (
        secrets.token_bytes(32) if rng is None else rng.getrandbits(256).to_bytes(32, "big")
    )
    return KeyPair(scheme="hmac", signer=_HMACSigner(key), verifier=_HMACVerifier(key))


register_scheme("rsa", _rsa_factory, "RSA with PKCS#1-v1.5 style padding (paper default)")
register_scheme("dsa", _dsa_factory, "DSA with deterministic nonces (paper's Fig. 7c comparison)")
register_scheme("hmac", _hmac_factory, "Keyed hash, test-only (not a public-key scheme)")
