"""Canonical byte encodings used before hashing and signing.

The owner, server and client all need to compute identical digests of
records, score functions, subdomains and tree nodes.  These helpers provide
an unambiguous, deterministic encoding: every value is prefixed with a type
tag and a length so concatenation ambiguities (the classic ``H(a | b)``
pitfall) cannot occur, and floating point values are encoded from their IEEE
754 bit pattern so the encoding is exact.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

__all__ = [
    "encode_int",
    "encode_float",
    "encode_str",
    "encode_bytes",
    "encode_float_vector",
    "encode_sequence",
]

_TAG_INT = b"\x01"
_TAG_FLOAT = b"\x02"
_TAG_STR = b"\x03"
_TAG_BYTES = b"\x04"
_TAG_VEC = b"\x05"
_TAG_SEQ = b"\x06"


def _with_length(tag: bytes, payload: bytes) -> bytes:
    return tag + len(payload).to_bytes(8, "big") + payload


def encode_int(value: int) -> bytes:
    """Encode a (possibly negative, arbitrarily large) integer."""
    length = max(1, (value.bit_length() + 8) // 8)
    payload = value.to_bytes(length, "big", signed=True)
    return _with_length(_TAG_INT, payload)


def encode_float(value: float) -> bytes:
    """Encode a float from its IEEE 754 double bit pattern (exact)."""
    return _with_length(_TAG_FLOAT, struct.pack(">d", float(value)))


def encode_str(value: str) -> bytes:
    """Encode a unicode string as UTF-8."""
    return _with_length(_TAG_STR, value.encode("utf-8"))


def encode_bytes(value: bytes) -> bytes:
    """Encode raw bytes (length-prefixed)."""
    return _with_length(_TAG_BYTES, bytes(value))


def encode_float_vector(values: Sequence[float]) -> bytes:
    """Encode a sequence of floats as a single vector blob."""
    payload = b"".join(struct.pack(">d", float(v)) for v in values)
    return _with_length(_TAG_VEC, payload)


def encode_sequence(parts: Iterable[bytes]) -> bytes:
    """Encode a sequence of already-encoded parts as a composite blob."""
    payload = b"".join(parts)
    return _with_length(_TAG_SEQ, payload)
