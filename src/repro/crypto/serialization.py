"""Canonical byte encodings used before hashing and signing.

The owner, server and client all need to compute identical digests of
records, score functions, subdomains and tree nodes.  These helpers provide
an unambiguous, deterministic encoding: every value is prefixed with a type
tag and a length so concatenation ambiguities (the classic ``H(a | b)``
pitfall) cannot occur, and floating point values are encoded from their IEEE
754 bit pattern so the encoding is exact.

This module also hosts the *verification-key codec* used by published ADS
artifacts (:mod:`repro.core.artifact`): :func:`verifier_to_payload` turns a
:class:`repro.crypto.signer.Verifier` into a JSON-safe dict of public key
material, and :func:`verifier_from_payload` rebuilds a verify-only object
from it.  Only public information crosses this boundary for the public-key
schemes; the test-only ``"hmac"`` scheme is symmetric, so its payload
necessarily contains the shared secret (never use it when the artifact
leaves a trusted machine).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

__all__ = [
    "encode_int",
    "encode_float",
    "encode_str",
    "encode_bytes",
    "encode_float_vector",
    "encode_sequence",
    "verifier_to_payload",
    "verifier_from_payload",
]

_TAG_INT = b"\x01"
_TAG_FLOAT = b"\x02"
_TAG_STR = b"\x03"
_TAG_BYTES = b"\x04"
_TAG_VEC = b"\x05"
_TAG_SEQ = b"\x06"


def _with_length(tag: bytes, payload: bytes) -> bytes:
    return tag + len(payload).to_bytes(8, "big") + payload


def encode_int(value: int) -> bytes:
    """Encode a (possibly negative, arbitrarily large) integer."""
    length = max(1, (value.bit_length() + 8) // 8)
    payload = value.to_bytes(length, "big", signed=True)
    return _with_length(_TAG_INT, payload)


def encode_float(value: float) -> bytes:
    """Encode a float from its IEEE 754 double bit pattern (exact)."""
    return _with_length(_TAG_FLOAT, struct.pack(">d", float(value)))


def encode_str(value: str) -> bytes:
    """Encode a unicode string as UTF-8."""
    return _with_length(_TAG_STR, value.encode())


def encode_bytes(value: bytes) -> bytes:
    """Encode raw bytes (length-prefixed)."""
    return _with_length(_TAG_BYTES, bytes(value))


def encode_float_vector(values: Sequence[float]) -> bytes:
    """Encode a sequence of floats as a single vector blob."""
    payload = b"".join(struct.pack(">d", float(v)) for v in values)
    return _with_length(_TAG_VEC, payload)


def encode_sequence(parts: Iterable[bytes]) -> bytes:
    """Encode a sequence of already-encoded parts as a composite blob."""
    payload = b"".join(parts)
    return _with_length(_TAG_SEQ, payload)


# ---------------------------------------------------------------------------
# Verification-key codec (ADS artifacts)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoadedRSAVerifier:
    """Verify-only RSA key rebuilt from an artifact (public material only)."""

    public: "object"  # repro.crypto.rsa.RSAPublicKey
    scheme: str = "rsa"

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public.verify(message, signature)

    @property
    def signature_size(self) -> int:
        return self.public.signature_size


@dataclass(frozen=True)
class LoadedDSAVerifier:
    """Verify-only DSA key rebuilt from an artifact (public material only)."""

    public: "object"  # repro.crypto.dsa.DSAPublicKey
    scheme: str = "dsa"

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.public.verify(message, signature)

    @property
    def signature_size(self) -> int:
        return self.public.signature_size


def verifier_to_payload(verifier: "object") -> Dict[str, str]:
    """JSON-safe public-key material of a verifier.

    Large integers are encoded as lowercase hex strings.  Raises
    :class:`TypeError` for verifier objects whose key material cannot be
    introspected (custom registered schemes must provide their own codec).
    """
    scheme = getattr(verifier, "scheme", None)
    if scheme == "rsa":
        public = verifier.public if hasattr(verifier, "public") else verifier.keypair.public
        return {"scheme": "rsa", "n": format(public.n, "x"), "e": format(public.e, "x")}
    if scheme == "dsa":
        public = verifier.public if hasattr(verifier, "public") else verifier.keypair.public
        params = public.parameters
        return {
            "scheme": "dsa",
            "p": format(params.p, "x"),
            "q": format(params.q, "x"),
            "g": format(params.g, "x"),
            "y": format(public.y, "x"),
        }
    if scheme == "hmac":
        return {"scheme": "hmac", "key": verifier.key.hex()}
    raise TypeError(f"cannot serialize verifier for scheme {scheme!r}")


def verifier_from_payload(payload: Dict[str, str]) -> "object":
    """Rebuild a verify-only object from :func:`verifier_to_payload` output."""
    scheme = payload.get("scheme")
    if scheme == "rsa":
        from repro.crypto.rsa import RSAPublicKey

        return LoadedRSAVerifier(
            public=RSAPublicKey(n=int(payload["n"], 16), e=int(payload["e"], 16))
        )
    if scheme == "dsa":
        from repro.crypto.dsa import DSAParameters, DSAPublicKey

        parameters = DSAParameters(
            p=int(payload["p"], 16), q=int(payload["q"], 16), g=int(payload["g"], 16)
        )
        return LoadedDSAVerifier(
            public=DSAPublicKey(parameters=parameters, y=int(payload["y"], 16))
        )
    if scheme == "hmac":
        # Symmetric, so the rebuilt verifier IS the scheme's own verifier.
        from repro.crypto.signer import _HMACVerifier

        return _HMACVerifier(key=bytes.fromhex(payload["key"]))
    raise TypeError(f"cannot rebuild verifier for scheme {scheme!r}")
