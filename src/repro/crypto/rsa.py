"""RSA signatures implemented from scratch.

The paper's experiments sign digests with RSA (and compare against DSA in
Fig. 7c).  This module provides key generation, signing and verification in
pure Python:

* key generation via :mod:`repro.crypto.primes` (Miller-Rabin);
* signing of a SHA-256 digest using EMSA-PKCS1-v1_5 style padding
  (``0x00 0x01 FF..FF 0x00 || DigestInfo || digest``);
* constant public exponent ``e = 65537``.

The goal is functional fidelity and honest relative cost (signature creation
and verification dominate the user-side verification time exactly as in the
paper), not side-channel resistance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import sha256
from repro.crypto.primes import generate_prime

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAKeyPair",
    "generate_rsa_keypair",
]

#: DER prefix of the SHA-256 ``DigestInfo`` structure (RFC 8017, section 9.2).
_SHA256_DIGEST_INFO_PREFIX = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_PUBLIC_EXPONENT = 65537


def _int_from_bytes(data: bytes) -> int:
    return int.from_bytes(data, "big")


def _int_to_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


def _emsa_pkcs1_v15_encode(digest: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of an already-computed SHA-256 digest."""
    t = _SHA256_DIGEST_INFO_PREFIX + digest
    if em_len < len(t) + 11:
        raise ValueError("RSA modulus too small for SHA-256 signatures")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bits(self) -> int:
        return self.n.bit_length()

    @property
    def signature_size(self) -> int:
        """Signature size in bytes (the byte length of the modulus)."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a signature over ``message`` (hashed internally)."""
        return self.verify_digest(sha256(message), signature)

    def verify_digest(self, digest: bytes, signature: bytes) -> bool:
        """Verify a signature over an already-computed SHA-256 digest."""
        k = self.signature_size
        if len(signature) != k:
            return False
        s = _int_from_bytes(signature)
        if s >= self.n:
            return False
        em = _int_to_bytes(pow(s, self.e, self.n), k)
        try:
            expected = _emsa_pkcs1_v15_encode(digest, k)
        except ValueError:
            return False
        return em == expected


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def signature_size(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` (hashed internally with SHA-256)."""
        return self.sign_digest(sha256(message))

    def sign_digest(self, digest: bytes) -> bytes:
        """Sign an already-computed SHA-256 digest."""
        k = self.signature_size
        em = _emsa_pkcs1_v15_encode(digest, k)
        m = _int_from_bytes(em)
        # CRT exponentiation: ~4x faster than a single modular exponentiation.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(m % self.p, dp, self.p)
        m2 = pow(m % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        s = m2 + h * self.q
        return _int_to_bytes(s, k)


@dataclass(frozen=True)
class RSAKeyPair:
    """A matching private/public RSA key pair."""

    private: RSAPrivateKey
    public: RSAPublicKey


def generate_rsa_keypair(bits: int = 2048, rng: Optional[random.Random] = None) -> RSAKeyPair:
    """Generate an RSA key pair with a modulus of approximately ``bits`` bits.

    Parameters
    ----------
    bits:
        Modulus size.  The benchmarks use 2048; unit tests use 512/768 to
        stay fast.  Values below 384 are rejected because SHA-256 signatures
        no longer fit.
    rng:
        Seeded :class:`random.Random` for reproducible key generation.
    """
    if bits < 384:
        raise ValueError(f"RSA modulus must be at least 384 bits, got {bits}")
    rng = rng or random.SystemRandom()
    e = _PUBLIC_EXPONENT
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        private = RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)
        public = RSAPublicKey(n=n, e=e)
        # Self-test the pair before handing it out.
        probe = sha256(b"rsa-keygen-self-test")
        if public.verify_digest(probe, private.sign_digest(probe)):
            return RSAKeyPair(private=private, public=public)
