"""Prime generation for the RSA and DSA key generators.

Implements deterministic trial division for small primes plus the
Miller-Rabin probabilistic primality test, and prime generation from a
caller-supplied pseudo-random source so key generation is reproducible in
tests and benchmarks.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "generate_prime",
    "generate_safe_prime",
]

# Primes below 1000, used for cheap trial division before Miller-Rabin.
def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            flags[p * p :: p] = bytearray(len(flags[p * p :: p]))
    return [i for i, f in enumerate(flags) if f]


SMALL_PRIMES: tuple[int, ...] = tuple(_sieve(1000))


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Return True if ``n`` is prime with overwhelming probability.

    Uses trial division by the small primes followed by ``rounds`` rounds of
    Miller-Rabin with random bases.  ``rounds=40`` gives an error bound of
    at most 4^-40, far below any practical concern for the key sizes used in
    the benchmarks.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(
    bits: int,
    rng: Optional[random.Random] = None,
    *,
    congruent_to: Optional[tuple[int, int]] = None,
) -> int:
    """Generate a random probable prime of exactly ``bits`` bits.

    Parameters
    ----------
    bits:
        Bit length of the prime; must be at least 8.
    rng:
        Pseudo-random source.  The OS-backed :class:`random.SystemRandom`
        is used when omitted; pass a seeded :class:`random.Random` for
        reproducible generation.
    congruent_to:
        Optional ``(remainder, modulus)`` pair: only candidates ``p`` with
        ``p % modulus == remainder`` are considered.  DSA parameter
        generation uses this to force ``p = 1 (mod q)``.
    """
    if bits < 8:
        raise ValueError(f"prime bit length must be >= 8, got {bits}")
    rng = rng or random.SystemRandom()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if congruent_to is not None:
            remainder, modulus = congruent_to
            candidate += (remainder - candidate) % modulus
            if candidate.bit_length() != bits or candidate % 2 == 0:
                continue
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a safe prime ``p`` (``(p - 1) / 2`` is also prime).

    Not needed by RSA/DSA but exposed because several downstream experiments
    (e.g. alternative signature schemes) want it; kept small and tested.
    """
    rng = rng or random.SystemRandom()
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p
