"""Leaf-digest intern pool for shared-structure Merkle construction.

Building one FMH-tree per subdomain re-hashes the *same* records over and
over: the 1-D configuration has Theta(n^2) subdomains whose sorted lists are
permutations of the same n records, so the naive construction performs
Theta(n^3) canonical ``to_bytes()`` encodings and SHA-256 leaf digests.  The
pool interns each item's leaf digest the first time it is requested and
serves every later request from the table, collapsing the leaf work to one
encoding + one digest per distinct record (and exactly one digest per
boundary token).

Counting semantics: a pool hit still records one *logical* hash operation on
the supplied :class:`~repro.crypto.hashing.HashFunction` (the algorithm
performed the hash; see that module's docstring), but no physical SHA-256
runs, so the reproduced Fig. 5a/7a counter values are bit-for-bit unchanged
while the construction benchmark sees the physical savings.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.crypto.hashing import HashFunction

__all__ = ["LeafDigestPool"]


class LeafDigestPool:
    """Interns canonical byte encodings and their SHA-256 leaf digests.

    Items are keyed by object identity, not by value: hashing the item's
    canonical bytes to build a value key would cost exactly the encoding the
    pool exists to avoid.  The pool keeps a strong reference to every
    interned item, so an ``id()`` can never be recycled while its entry is
    alive; the pool's lifetime is one ADS construction, after which the
    whole table is dropped.
    """

    __slots__ = ("_items", "_tokens", "hits", "misses")

    def __init__(self) -> None:
        #: ``id(item) -> (item, leaf_digest)`` -- the item reference pins the id.
        self._items: Dict[int, Tuple[object, bytes]] = {}
        #: ``token_bytes -> digest`` for the ``f_min`` / ``f_max`` tokens.
        self._tokens: Dict[bytes, bytes] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ API
    def item_digest(self, item: object, hash_function: HashFunction) -> bytes:
        """Leaf digest of ``item`` (``H(item.to_bytes())``), interned.

        The first request encodes and hashes the item; every later request
        for the same object is a logical-only cache hit.
        """
        entry = self._items.get(id(item))
        if entry is None:
            self.misses += 1
            digest = hash_function.digest(item.to_bytes())
            self._items[id(item)] = (item, digest)
            return digest
        self.hits += 1
        hash_function.note_cached()
        return entry[1]

    def token_digest(self, token: bytes, hash_function: HashFunction) -> bytes:
        """Digest of a public boundary token, computed exactly once."""
        digest = self._tokens.get(token)
        if digest is None:
            self.misses += 1
            digest = hash_function.digest(token)
            self._tokens[token] = digest
            return digest
        self.hits += 1
        hash_function.note_cached()
        return digest

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        """Number of distinct interned digests (items plus tokens)."""
        return len(self._items) + len(self._tokens)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/entry counts for benchmark reporting."""
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }
