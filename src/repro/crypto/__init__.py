"""Cryptographic substrate for the verification data structures.

The paper signs Merkle roots (one-signature mode), subdomain digests
(multi-signature mode) and consecutive-pair digests (signature mesh baseline)
with RSA or DSA, and uses SHA-256 as its one-way hash.  Everything here is
implemented from scratch on top of the standard library so the reproduction
has no external crypto dependency:

* :mod:`repro.crypto.hashing` -- SHA-256 digests with operation counting
  (split into logical operations and physical invocations).
* :mod:`repro.crypto.intern_pool` -- the leaf-digest intern pool used by the
  shared-structure Merkle construction engine.
* :mod:`repro.crypto.primes` -- Miller-Rabin primality testing and prime
  generation used by the key generators.
* :mod:`repro.crypto.rsa` -- RSA key generation, PKCS#1-v1.5 style signing.
* :mod:`repro.crypto.dsa` -- DSA key generation and signing with
  deterministic (RFC-6979 style) nonces.
* :mod:`repro.crypto.signer` -- a pluggable :class:`Signer` interface and a
  registry so the data owner can pick ``"rsa"``, ``"dsa"`` or the test-only
  ``"hmac"`` scheme by name.
* :mod:`repro.crypto.serialization` -- canonical byte encodings of records,
  functions and subdomains so digests are stable across processes.
"""

from repro.crypto.hashing import HashFunction, sha256_hex, sha256, sha256_many
from repro.crypto.intern_pool import LeafDigestPool
from repro.crypto.primes import is_probable_prime, generate_prime
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSAPrivateKey, generate_rsa_keypair
from repro.crypto.dsa import DSAKeyPair, DSAPublicKey, DSAPrivateKey, DSAParameters, generate_dsa_keypair
from repro.crypto.signer import (
    Signer,
    Verifier,
    SignatureScheme,
    KeyPair,
    make_signer,
    available_schemes,
)
from repro.crypto.serialization import (
    encode_bytes,
    encode_float,
    encode_int,
    encode_str,
    encode_float_vector,
    encode_sequence,
)

__all__ = [
    "HashFunction",
    "LeafDigestPool",
    "sha256_hex",
    "sha256",
    "sha256_many",
    "is_probable_prime",
    "generate_prime",
    "RSAKeyPair",
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_rsa_keypair",
    "DSAKeyPair",
    "DSAPublicKey",
    "DSAPrivateKey",
    "DSAParameters",
    "generate_dsa_keypair",
    "Signer",
    "Verifier",
    "SignatureScheme",
    "KeyPair",
    "make_signer",
    "available_schemes",
    "encode_bytes",
    "encode_float",
    "encode_int",
    "encode_str",
    "encode_float_vector",
    "encode_sequence",
]
