"""Deterministic, seeded fault injection for replica servers.

:class:`FaultInjector` wraps any :class:`~repro.core.server.Server` (or
anything with its ``execute``/``execute_batch`` surface) and misbehaves the
way a faulty or Byzantine replica would:

* ``crash``    -- raise :class:`~repro.core.errors.QueryProcessingError`
  instead of answering;
* ``latency``  -- answer, but only after ``delay`` extra *virtual* seconds
  (the retry layer's per-attempt timeout then treats it as a fault);
* ``stale-epoch`` -- answer from a pre-update ADS (a server loaded from an
  old artifact): the signatures were genuine once, so only the client-side
  epoch binding catches it;
* ``tamper``   -- apply one of the registered adversary transforms from
  :mod:`repro.attacks.tamper` to the honest ``(result, VO)`` pair.

Every decision -- whether a fault fires this query, which tamper transform
runs -- comes from one seeded ``random.Random``; time comes from the shared
:class:`~repro.resilience.policy.VirtualClock`.  Two runs with the same
seeds misbehave identically, which is what lets the fault bench gate on
bit-identical outcomes.

Faults compose: the specs of one replica are evaluated in declaration
order, latency accumulates, ``stale-epoch`` reroutes, ``tamper`` rewrites
the output and ``crash`` preempts the answer (after any injected delay, as
a real hung-then-killed replica would).  Named mixes are
:class:`FaultPlan` objects; :meth:`FaultPlan.byzantine` builds the
standard adversarial pool used by ``python -m repro.bench --faults``.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.tamper import (
    ATTACK_REGISTRY,
    AttackApplicability,
    apply_attack,
)
from repro.core.errors import QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.server import QueryExecution
from repro.metrics.counters import Counters
from repro.resilience.policy import VirtualClock

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLANS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
]

#: Recognized fault kinds, in the order an injector evaluates them.
FAULT_KINDS = ("latency", "stale-epoch", "tamper", "crash")


@dataclass(frozen=True)
class FaultSpec:
    """One failure behavior of a replica.

    ``rate`` is the per-query probability the fault fires (drawn from the
    injector's seeded rng); ``delay`` is the extra virtual-seconds latency
    of a ``latency`` fault; ``attack`` optionally pins a ``tamper`` fault
    to one named transform (default: a seeded choice over the registry).
    """

    kind: str
    rate: float = 1.0
    delay: float = 0.0
    attack: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind == "latency" and self.delay <= 0:
            raise ValueError("a latency fault needs delay > 0")
        if self.kind != "latency" and self.delay:
            raise ValueError(f"delay only applies to latency faults, not {self.kind!r}")
        if self.attack is not None:
            if self.kind != "tamper":
                raise ValueError(f"attack only applies to tamper faults, not {self.kind!r}")
            if self.attack not in ATTACK_REGISTRY:
                raise ValueError(f"unknown attack {self.attack!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A named assignment of fault behaviors to replica slots.

    ``replica_faults[i]`` holds the specs for replica ``i``; replicas past
    the end of the tuple are honest.  Plans are static data -- wiring them
    onto live servers (and the stale server a ``stale-epoch`` slot needs)
    happens where the pool is assembled.
    """

    name: str
    replica_faults: Tuple[Tuple[FaultSpec, ...], ...] = ()

    def faults_for(self, replica_index: int) -> Tuple[FaultSpec, ...]:
        """The fault specs of one replica slot (empty = honest)."""
        if 0 <= replica_index < len(self.replica_faults):
            return self.replica_faults[replica_index]
        return ()

    @property
    def faulty_replicas(self) -> Tuple[int, ...]:
        """Indices of slots with at least one fault spec."""
        return tuple(
            index for index, faults in enumerate(self.replica_faults) if faults
        )

    def kinds(self) -> Tuple[str, ...]:
        """Every fault kind the plan injects somewhere, sorted."""
        return tuple(
            sorted({spec.kind for faults in self.replica_faults for spec in faults})
        )

    def needs_stale_server(self) -> bool:
        """True when some slot serves a stale-epoch ADS."""
        return any(
            spec.kind == "stale-epoch"
            for faults in self.replica_faults
            for spec in faults
        )

    @classmethod
    def byzantine(
        cls,
        replicas: int = 5,
        *,
        tamper_rate: float = 1.0,
        crash_rate: float = 1.0,
        stale_rate: float = 1.0,
        latency_rate: float = 0.5,
        latency_delay: float = 5.0,
    ) -> "FaultPlan":
        """The standard adversarial pool: replica 0 honest, then one
        tampering, one crashing, one stale-epoch and (from 5 replicas up)
        one high-latency slot; any further slots are honest."""
        if replicas < 4:
            raise ValueError(
                f"a byzantine plan needs a pool of >= 4 replicas, got {replicas}"
            )
        slots: List[Tuple[FaultSpec, ...]] = [() for _ in range(replicas)]
        slots[1] = (FaultSpec(kind="tamper", rate=tamper_rate),)
        slots[2] = (FaultSpec(kind="crash", rate=crash_rate),)
        slots[3] = (FaultSpec(kind="stale-epoch", rate=stale_rate),)
        if replicas >= 5:
            slots[4] = (
                FaultSpec(kind="latency", rate=latency_rate, delay=latency_delay),
            )
        return cls(name=f"byzantine-{replicas}", replica_faults=tuple(slots))


#: Named plans usable off the shelf (examples, tests, the fault bench).
FAULT_PLANS: Dict[str, FaultPlan] = {
    "all-honest": FaultPlan(name="all-honest"),
    "byzantine-mix": FaultPlan.byzantine(5),
}


class FaultInjector:
    """A replica front that misbehaves deterministically.

    Wraps ``server`` and exposes the same ``execute`` / ``execute_batch``
    surface, so a :class:`~repro.resilience.pool.ReplicaPool` (or a test)
    cannot tell it from a real replica.  All shared mutable state (the
    seeded rng, injection counts, applicability stats) is lock-guarded, so
    concurrent callers are as safe as against a real ``Server``.

    Parameters
    ----------
    server:
        The honest replica underneath.
    faults:
        The :class:`FaultSpec` mix this replica exhibits.
    seed:
        Seed of the injector's private ``random.Random``.
    clock:
        Shared :class:`VirtualClock`; every execution advances it by
        ``service_time`` plus any injected latency.
    service_time:
        Simulated honest service time per execution, in virtual seconds.
    stale_server:
        The pre-update replica a ``stale-epoch`` fault answers from
        (required iff such a fault is configured).
    replica_id:
        Optional id stamped into the structured context of injected
        crash errors.
    applicability:
        Optional shared :class:`AttackApplicability` recorder; defaults to
        a private one exposed as :attr:`applicability`.
    """

    def __init__(
        self,
        server,
        faults: Sequence[FaultSpec] = (),
        *,
        seed: int = 0,
        clock: Optional[VirtualClock] = None,
        service_time: float = 0.01,
        stale_server=None,
        replica_id: Optional[int] = None,
        applicability: Optional[AttackApplicability] = None,
    ):
        self.server = server
        self.faults = tuple(faults)
        self.clock = clock if clock is not None else VirtualClock()
        self.service_time = float(service_time)
        self.stale_server = stale_server
        self.replica_id = replica_id
        self.applicability = (
            applicability if applicability is not None else AttackApplicability()
        )
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._injected: Dict[str, int] = {}
        if any(spec.kind == "stale-epoch" for spec in self.faults) and (
            stale_server is None
        ):
            raise ValueError("a stale-epoch fault needs a stale_server to answer from")
        if self.service_time < 0:
            raise ValueError("service_time must be non-negative")

    # ------------------------------------------------------------- metadata
    @property
    def scheme(self) -> str:
        return self.server.scheme

    @property
    def epoch(self) -> int:
        return self.server.epoch

    @property
    def counters(self) -> Counters:
        """The wrapped server's cumulative counters (honest executions only)."""
        return self.server.counters

    def injected_counts(self) -> Dict[str, int]:
        """How often each fault kind actually fired, as a plain dict."""
        with self._lock:
            return dict(self._injected)

    # ------------------------------------------------------------ execution
    def _draw_faults(self) -> Tuple[Tuple[FaultSpec, ...], random.Random]:
        """Decide this interaction's faults; one rng draw per spec, in order.

        Returns the active specs plus a child rng (seeded from the main
        stream) for any per-interaction choices a fault still has to make
        -- keeping the number of main-stream draws fixed per call, so one
        replica's behavior never depends on how many choices another fault
        consumed.
        """
        with self._lock:
            active = tuple(
                spec for spec in self.faults if self._rng.random() < spec.rate
            )
            child = random.Random(self._rng.getrandbits(64))
            return active, child

    def _note(self, kind: str) -> None:
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + 1

    def _tamper(
        self, execution: QueryExecution, spec: FaultSpec, rng: random.Random
    ) -> QueryExecution:
        """Rewrite one execution through a tamper transform.

        A pinned attack that is inapplicable to this result shape falls
        back to the honest answer (recorded as skipped); an unpinned
        tamper tries registry attacks in a seeded rotation until one
        applies.
        """
        attacks = (
            [ATTACK_REGISTRY[spec.attack]]
            if spec.attack is not None
            else sorted(ATTACK_REGISTRY.values(), key=lambda attack: attack.name)
        )
        if spec.attack is None:
            start = rng.randrange(len(attacks))
            attacks = attacks[start:] + attacks[:start]
        with self._lock:
            for attack in attacks:
                tampered = apply_attack(
                    attack,
                    execution.result,
                    execution.verification_object,
                    rng,
                    self.applicability,
                )
                if tampered is not None:
                    self._injected["tamper"] = self._injected.get("tamper", 0) + 1
                    return QueryExecution(
                        query=execution.query,
                        result=tampered[0],
                        verification_object=tampered[1],
                        counters=execution.counters,
                    )
        return execution

    def _apply(self, active: Sequence[FaultSpec], rng: random.Random, query_kind):
        """Common pre-answer phase: latency, rerouting, crash.

        Returns the target server to answer from and the tamper specs to
        apply to its output.
        """
        delay = 0.0
        target = self.server
        tampers: List[FaultSpec] = []
        crash = False
        for spec in active:
            if spec.kind == "latency":
                delay += spec.delay
            elif spec.kind == "stale-epoch":
                target = self.stale_server
            elif spec.kind == "tamper":
                tampers.append(spec)
            elif spec.kind == "crash":
                crash = True
        self.clock.advance(self.service_time + delay)
        if delay:
            self._note("latency")
        if target is not self.server:
            self._note("stale-epoch")
        if crash:
            self._note("crash")
            raise QueryProcessingError(
                "injected replica crash",
                query_kind=query_kind,
                scheme=self.scheme,
                epoch=self.epoch,
                replica_id=self.replica_id,
            )
        return target, tampers

    def execute(
        self, query: AnalyticQuery, counters: Optional[Counters] = None
    ) -> QueryExecution:
        """Process one query, subject to this replica's fault mix."""
        active, rng = self._draw_faults()
        target, tampers = self._apply(active, rng, query.kind)
        execution = target.execute(query, counters=counters)
        for spec in tampers:
            execution = self._tamper(execution, spec, rng)
        return execution

    def execute_batch(self, queries: Sequence[AnalyticQuery]) -> List[QueryExecution]:
        """Process a batch as one service interaction.

        Faults are drawn once for the whole batch (a crashed replica drops
        the entire batch, exactly like a real one); tampering rewrites
        every execution of the batch.
        """
        active, rng = self._draw_faults()
        target, tampers = self._apply(active, rng, None)
        executions = target.execute_batch(queries)
        for spec in tampers:
            executions = [self._tamper(execution, spec, rng) for execution in executions]
        return executions
