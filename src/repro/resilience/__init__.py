"""Byzantine-resilient serving: fault injection, retry policy, replica pool.

The three-party protocol makes the server untrusted but gives the client a
sound acceptance test (the verification object).  This package turns that
into an availability story: run N replicas from one published artifact,
verify every answer, and treat verification failure exactly like a crash --
fail over, back off, quarantine repeat offenders.

* :mod:`repro.resilience.policy` -- :class:`VirtualClock` and
  :class:`RetryPolicy` (bounded retries, exponential backoff with
  deterministic jitter, per-attempt timeout, per-query deadline);
* :mod:`repro.resilience.faults` -- :class:`FaultInjector`, a seeded
  wrapper that makes a replica crash, lag, serve a stale epoch or tamper
  with results, plus named :class:`FaultPlan` mixes;
* :mod:`repro.resilience.pool` -- :class:`ReplicaPool` (round-robin with
  quarantine, half-open probing and :meth:`~repro.resilience.pool.ReplicaPool.resync`
  self-healing) and :class:`ResilientClient` (the verify-failover-retry
  front-end returning :class:`ResilientExecution`);
* :mod:`repro.resilience.journal` -- :class:`UpdateJournal`, the owner's
  checksummed, fsynced write-ahead journal backing
  :meth:`repro.core.owner.DataOwner.recover`;
* :mod:`repro.resilience.recovery` -- the differential crash harness that
  proves recovery bit-identical at every pipeline crash point.

Everything is deterministic under a fixed seed: timing runs on the virtual
clock, every random choice comes from an injected seeded rng.  See
``docs/resilience.md``, ``docs/updates.md`` and
``python -m repro.bench --faults`` / ``--churn``.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PLANS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.journal import (
    JournalBatch,
    JournalScan,
    UpdateJournal,
    lineage_fingerprint,
)
from repro.resilience.policy import RetryPolicy, VirtualClock
from repro.resilience.pool import (
    Attempt,
    ReplicaHandle,
    ReplicaPool,
    ResilientClient,
    ResilientExecution,
    ResyncReport,
    pool_from_artifact,
    pool_from_artifacts,
)
from repro.resilience.recovery import (
    CrashPoint,
    DifferentialOutcome,
    UpdateBatch,
    crash_points,
    run_crash_matrix,
    run_pipeline,
    state_fingerprint,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLANS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "VirtualClock",
    "ReplicaHandle",
    "ReplicaPool",
    "ResyncReport",
    "Attempt",
    "ResilientExecution",
    "ResilientClient",
    "pool_from_artifact",
    "pool_from_artifacts",
    "JournalBatch",
    "JournalScan",
    "UpdateJournal",
    "lineage_fingerprint",
    "CrashPoint",
    "DifferentialOutcome",
    "UpdateBatch",
    "crash_points",
    "run_crash_matrix",
    "run_pipeline",
    "state_fingerprint",
]
