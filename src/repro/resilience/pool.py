"""Replica pool with retry, failover and quarantine over verifying clients.

The trust model makes resilience unusually clean: a client never has to
*guess* whether a replica misbehaved, because every answer carries a
verification object and the client-side check is sound.  A replica answer
is therefore one of exactly four things -- accepted (verified), rejected
(verification failed), a replica error (the query raised
:class:`~repro.core.errors.QueryProcessingError`) or a timeout -- and the
last three are all just "replica fault, try another one".

:class:`ReplicaPool` tracks N replicas cold-started from one shared
artifact (or handed in live), selects them round-robin and quarantines
repeat offenders with half-open probing.  :class:`ResilientClient` drives
the retry/failover loop under a :class:`~repro.resilience.policy.RetryPolicy`
and returns a :class:`ResilientExecution` recording every attempt, which
replica finally answered and whether the answer is degraded (accepted, but
only after failovers).

All timing runs on the pool's :class:`VirtualClock` and all jitter comes
from a seeded rng, so a fault-injected run is exactly reproducible.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.client import Client
from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.results import VerificationReport
from repro.core.server import QueryExecution, Server
from repro.resilience.policy import RetryPolicy, VirtualClock

__all__ = [
    "ReplicaHandle",
    "ReplicaPool",
    "ResyncReport",
    "Attempt",
    "ResilientExecution",
    "ResilientClient",
    "pool_from_artifact",
    "pool_from_artifacts",
]

#: Outcomes an attempt against one replica can have.
ATTEMPT_OUTCOMES = ("accepted", "rejected", "replica-error", "timeout")


@dataclass
class ReplicaHandle:
    """One replica slot of the pool, with its health bookkeeping.

    Mutable state is only ever touched under the owning pool's lock.
    ``quarantined_until`` is ``None`` while healthy; once set, the replica
    is skipped until that virtual time, then offered again as a *half-open
    probe* (a single failure re-quarantines it, a success clears it).
    """

    replica_id: int
    server: object
    consecutive_failures: int = 0
    quarantined_until: Optional[float] = None
    served: int = 0
    faults: int = 0
    quarantines: int = 0
    resyncs: int = 0

    @property
    def epoch(self) -> Optional[int]:
        """The ADS epoch this replica serves (``None`` if it has no notion)."""
        return getattr(self.server, "epoch", None)


@dataclass(frozen=True)
class ResyncReport:
    """Outcome of one :meth:`ReplicaPool.resync` call.

    ``mode`` is ``"hot-swap"`` when the replica's live server swapped
    epochs in place (no dropped in-flight queries), ``"replace"`` when
    the server had no hot-swap surface and was cold-started anew from the
    artifact, and ``"refresh"`` when the replica already served the
    artifact's epoch and only its health bookkeeping was reset.
    ``rejoined_as_probe`` is true when the replica was quarantined and now
    re-enters service through half-open probation.
    """

    replica_id: int
    mode: str
    old_epoch: Optional[int]
    new_epoch: int
    rejoined_as_probe: bool


class ReplicaPool:
    """Round-robin replica selection with quarantine and half-open probing.

    ``replicas`` can be real :class:`~repro.core.server.Server` objects,
    :class:`~repro.resilience.faults.FaultInjector` wrappers or anything
    else with the server's ``execute`` surface.  A replica that fails
    ``quarantine_threshold`` consecutive times is quarantined for
    ``quarantine_period`` virtual seconds; after that it is offered again
    as a probe, and only a verified success restores it fully.
    """

    def __init__(
        self,
        replicas: Sequence[object],
        *,
        clock: Optional[VirtualClock] = None,
        quarantine_threshold: int = 2,
        quarantine_period: float = 5.0,
    ):
        if not replicas:
            raise ValueError("a replica pool needs at least one replica")
        if quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got {quarantine_threshold}"
            )
        if quarantine_period <= 0:
            raise ValueError(
                f"quarantine_period must be positive, got {quarantine_period}"
            )
        self.clock = clock if clock is not None else VirtualClock()
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_period = quarantine_period
        self.handles = tuple(
            ReplicaHandle(replica_id=index, server=server)
            for index, server in enumerate(replicas)
        )
        self._lock = threading.Lock()
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.handles)

    # ------------------------------------------------------------ selection
    def select(self, exclude: Optional[Set[int]] = None) -> Optional[ReplicaHandle]:
        """Pick the next replica to try, or ``None`` if none is eligible.

        Healthy replicas and *expired-quarantine probes* share one
        deterministic round-robin rotation (ordered by distance from the
        cursor).  Folding probes into the rotation is what makes half-open
        probation terminate: a recovered replica gets trial traffic even
        while healthier peers exist, instead of waiting for every healthy
        replica to fail first -- one verified success restores it fully,
        one failure re-quarantines it.  Still-quarantined and excluded
        replicas are never returned.
        """
        excluded = exclude or set()
        with self._lock:
            now = self.clock.now()
            count = len(self.handles)
            eligible = [
                handle
                for handle in self.handles
                if handle.replica_id not in excluded
                and (
                    handle.quarantined_until is None
                    or handle.quarantined_until <= now
                )
            ]
            if not eligible:
                return None
            chosen = min(
                eligible,
                key=lambda handle: (handle.replica_id - self._cursor) % count,
            )
            self._cursor = (chosen.replica_id + 1) % count
            return chosen

    # ------------------------------------------------------------ reporting
    def report_success(self, handle: ReplicaHandle) -> None:
        """A verified answer: reset failure state, clear any quarantine."""
        with self._lock:
            handle.consecutive_failures = 0
            handle.quarantined_until = None
            handle.served += 1

    def report_failure(self, handle: ReplicaHandle) -> None:
        """A fault (error / rejection / timeout): maybe quarantine.

        A replica reaching ``quarantine_threshold`` consecutive failures --
        which includes a failed half-open probe, since a probe's failure
        count was never reset -- is quarantined until
        ``now + quarantine_period``.
        """
        with self._lock:
            handle.faults += 1
            handle.consecutive_failures += 1
            if handle.consecutive_failures >= self.quarantine_threshold:
                handle.quarantined_until = self.clock.now() + self.quarantine_period
                handle.quarantines += 1

    # ---------------------------------------------------------- self-healing
    def handle(self, replica_id: int) -> ReplicaHandle:
        """The handle with the given id (raises ``KeyError`` if absent)."""
        for candidate in self.handles:
            if candidate.replica_id == replica_id:
                return candidate
        raise KeyError(f"no replica with id {replica_id} in this pool")

    def stale_replicas(self, epoch: int) -> List[int]:
        """Ids of replicas serving an epoch older than ``epoch``."""
        with self._lock:
            return [
                handle.replica_id
                for handle in self.handles
                if handle.epoch is not None and handle.epoch < epoch
            ]

    def resync(
        self,
        replica_id: int,
        path,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
    ) -> ResyncReport:
        """Bring one replica back in step with the newest published artifact.

        Hot-swaps the replica's live server to the artifact's epoch when it
        supports :meth:`~repro.core.server.Server.swap_epoch_from_artifact`
        (in-flight queries finish on the old epoch); otherwise cold-starts
        a fresh server from the artifact and replaces the handle's server.
        Either way the handle's failure counter resets and, if the replica
        was quarantined, its quarantine expires **now** -- it re-enters the
        rotation as a half-open probe, where one verified success restores
        it fully and one failure re-quarantines it.  This is the pool's
        self-healing exit from the quarantine dead-end: without a resync, a
        replica stuck on a stale epoch fails every probe forever.

        Artifact loading errors propagate *before* any state changes, so a
        corrupt or stale file never resets a replica's health bookkeeping.
        """
        handle = self.handle(replica_id)
        old_epoch = handle.epoch
        server = handle.server
        replacement = None
        if expected_epoch is None:
            from repro.core.artifact import load_public_parameters

            expected_epoch = load_public_parameters(path).epoch
        if old_epoch == expected_epoch:
            # Already serving the artifact's epoch: a quarantined replica
            # that recovered out of band, or one that never was stale --
            # only its health bookkeeping needs resetting.
            mode, new_epoch = "refresh", expected_epoch
        elif hasattr(server, "swap_epoch_from_artifact"):
            swap = server.swap_epoch_from_artifact(
                path, base=base, expected_epoch=expected_epoch
            )
            mode, new_epoch = "hot-swap", swap.new_epoch
        else:
            replacement = Server.from_artifact(
                path, base=base, expected_epoch=expected_epoch
            )
            mode, new_epoch = "replace", replacement.epoch
        with self._lock:
            if replacement is not None:
                handle.server = replacement
            handle.consecutive_failures = 0
            rejoined_as_probe = handle.quarantined_until is not None
            if rejoined_as_probe:
                handle.quarantined_until = self.clock.now()
            handle.resyncs += 1
        return ResyncReport(
            replica_id=replica_id,
            mode=mode,
            old_epoch=old_epoch,
            new_epoch=new_epoch,
            rejoined_as_probe=rejoined_as_probe,
        )

    def rolling_swap(
        self,
        path,
        *,
        base=None,
        expected_epoch: Optional[int] = None,
    ) -> List[ResyncReport]:
        """Resync every stale replica to the artifact's epoch, one at a time.

        The swap is *rolling*: replicas move one by one (lowest id first),
        so at every instant the rest of the pool keeps serving -- clients
        holding the old parameters are answered by not-yet-swapped
        replicas, clients holding the new parameters by already-swapped
        ones, and the verifying front-end routes around the mismatches.
        Replicas already at (or past) the target epoch are left alone.
        """
        if expected_epoch is None:
            from repro.core.artifact import load_public_parameters

            expected_epoch = load_public_parameters(path).epoch
        return [
            self.resync(
                replica_id, path, base=base, expected_epoch=expected_epoch
            )
            for replica_id in self.stale_replicas(expected_epoch)
        ]

    # ------------------------------------------------------------ inspection
    def status(self) -> List[Dict[str, object]]:
        """Per-replica health snapshot (for benches and debugging)."""
        with self._lock:
            now = self.clock.now()
            return [
                {
                    "replica_id": handle.replica_id,
                    "epoch": handle.epoch,
                    "served": handle.served,
                    "faults": handle.faults,
                    "quarantines": handle.quarantines,
                    "resyncs": handle.resyncs,
                    "quarantined": (
                        handle.quarantined_until is not None
                        and handle.quarantined_until > now
                    ),
                }
                for handle in self.handles
            ]


@dataclass(frozen=True)
class Attempt:
    """One attempt of one query against one replica."""

    replica_id: int
    outcome: str  # one of ATTEMPT_OUTCOMES
    detail: str
    started: float
    elapsed: float
    backoff: float  # virtual seconds slept after this attempt (0.0 if none)


@dataclass(frozen=True)
class ResilientExecution:
    """The outcome of running one query through the resilient front-end.

    ``execution``/``report`` are the accepted answer and its verification
    report (``None`` when every attempt failed); ``attempts`` records the
    full trail, including the accepting attempt.
    """

    query: AnalyticQuery
    execution: Optional[QueryExecution]
    report: Optional[VerificationReport]
    attempts: Tuple[Attempt, ...]
    replica_id: Optional[int]
    started: float
    finished: float

    @property
    def accepted(self) -> bool:
        """True when some replica's answer passed client verification."""
        return self.report is not None and self.report.is_valid

    @property
    def degraded(self) -> bool:
        """Accepted, but only after at least one failed attempt."""
        return self.accepted and len(self.attempts) > 1

    @property
    def exhausted(self) -> bool:
        """No replica produced a verifiable answer within the budget."""
        return not self.accepted

    @property
    def elapsed(self) -> float:
        """Virtual seconds from first attempt to final outcome."""
        return self.finished - self.started

    def flags(self) -> Dict[str, object]:
        """The degradation flags as a plain dict (bench/report friendly)."""
        return {
            "accepted": self.accepted,
            "degraded": self.degraded,
            "exhausted": self.exhausted,
            "attempts": len(self.attempts),
            "replica_id": self.replica_id,
        }


class ResilientClient:
    """Verifying front-end that retries and fails over across a pool.

    Every replica answer is client-verified before acceptance; rejected,
    erroring and timed-out attempts all count as replica faults and move on
    to the next replica under the :class:`RetryPolicy`'s backoff schedule.
    One instance is meant to serve one logical caller (its retry rng is a
    single seeded stream); concurrent callers should each hold their own.
    """

    def __init__(
        self,
        pool: ReplicaPool,
        client: Client,
        policy: Optional[RetryPolicy] = None,
        *,
        seed: int = 0,
    ):
        self.pool = pool
        self.client = client
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = pool.clock
        self._rng = random.Random(seed)

    # ------------------------------------------------------------ execution
    def execute(self, query: AnalyticQuery) -> ResilientExecution:
        """Run one query to an accepted (verified) answer or exhaustion."""
        policy = self.policy
        started = self.clock.now()
        attempts: List[Attempt] = []
        tried: Set[int] = set()
        while len(attempts) < policy.max_attempts:
            if attempts and self.clock.now() - started >= policy.deadline:
                break
            handle = self.pool.select(tried)
            if handle is None and tried:
                # Every replica was already tried this query; allow second
                # chances rather than failing with attempts to spare.
                tried.clear()
                handle = self.pool.select(tried)
            if handle is None:
                break
            attempt_start = self.clock.now()
            execution: Optional[QueryExecution] = None
            report: Optional[VerificationReport] = None
            try:
                execution = handle.server.execute(query)
            except QueryProcessingError as err:
                err.annotate(replica_id=handle.replica_id)
                outcome, detail = "replica-error", str(err)
            else:
                elapsed = self.clock.now() - attempt_start
                if elapsed > policy.attempt_timeout:
                    # The answer arrived after the per-attempt budget: a
                    # real caller would have hung up, so discard it.
                    outcome = "timeout"
                    detail = (
                        f"attempt took {elapsed:.3f}s"
                        f" > attempt_timeout {policy.attempt_timeout:.3f}s"
                    )
                    execution = None
                else:
                    report = self.client.verify(
                        query, execution.result, execution.verification_object
                    )
                    if report.is_valid:
                        self.pool.report_success(handle)
                        attempts.append(
                            Attempt(
                                replica_id=handle.replica_id,
                                outcome="accepted",
                                detail="verified",
                                started=attempt_start,
                                elapsed=elapsed,
                                backoff=0.0,
                            )
                        )
                        return ResilientExecution(
                            query=query,
                            execution=execution,
                            report=report,
                            attempts=tuple(attempts),
                            replica_id=handle.replica_id,
                            started=started,
                            finished=self.clock.now(),
                        )
                    outcome = "rejected"
                    detail = ",".join(report.failed_checks()) or "verification failed"
                    execution = None
                    report = None
            elapsed = self.clock.now() - attempt_start
            self.pool.report_failure(handle)
            tried.add(handle.replica_id)
            failures = len(attempts) + 1
            backoff = 0.0
            out_of_budget = failures >= policy.max_attempts
            if not out_of_budget:
                pause = policy.backoff(failures, self._rng)
                if self.clock.now() - started + pause >= policy.deadline:
                    # The next backoff alone would overrun the deadline:
                    # abandon instead of hammering replicas without pause.
                    out_of_budget = True
                else:
                    backoff = pause
            attempts.append(
                Attempt(
                    replica_id=handle.replica_id,
                    outcome=outcome,
                    detail=detail,
                    started=attempt_start,
                    elapsed=elapsed,
                    backoff=backoff,
                )
            )
            if backoff:
                self.clock.advance(backoff)
            if out_of_budget:
                break
        return ResilientExecution(
            query=query,
            execution=None,
            report=None,
            attempts=tuple(attempts),
            replica_id=None,
            started=started,
            finished=self.clock.now(),
        )

    def execute_batch(
        self, queries: Sequence[AnalyticQuery]
    ) -> List[ResilientExecution]:
        """Run queries one at a time, each with full retry/failover.

        Per-query (rather than batched) dispatch keeps failover granular: a
        replica crashing halfway through does not void the already-verified
        answers of earlier queries.
        """
        return [self.execute(query) for query in queries]


# ---------------------------------------------------------------- factories
def pool_from_artifact(
    path,
    replicas: int = 3,
    *,
    base=None,
    expected_epoch: Optional[int] = None,
    clock: Optional[VirtualClock] = None,
    quarantine_threshold: int = 2,
    quarantine_period: float = 5.0,
) -> ReplicaPool:
    """Cold-start ``replicas`` servers from one shared published artifact.

    Every replica is an independent :meth:`Server.from_artifact` load (own
    score cache, own counters) of the same file, exactly how a fleet would
    bootstrap from one published ADS.  The loads run concurrently on a
    thread pool (artifact loading alternates zlib inflation with numpy
    array assembly, so threads overlap usefully even under the GIL) and the
    pool order is the replica order -- loading concurrently must be
    indistinguishable from loading serially, which
    ``tests/resilience/test_pool.py`` pins by asserting bit-identical
    roots, signatures and verification objects between the two.  Errors
    propagate: if the shared artifact is truncated or tampered, no usable
    pool exists.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas == 1:
        servers = [Server.from_artifact(path, base=base, expected_epoch=expected_epoch)]
    else:
        with ThreadPoolExecutor(max_workers=min(replicas, 8)) as executor:
            # list() preserves submission order: replica i of the concurrent
            # pool is the same load as replica i of a serial loop.
            servers = list(
                executor.map(
                    lambda _: Server.from_artifact(
                        path, base=base, expected_epoch=expected_epoch
                    ),
                    range(replicas),
                )
            )
    return ReplicaPool(
        servers,
        clock=clock,
        quarantine_threshold=quarantine_threshold,
        quarantine_period=quarantine_period,
    )


def pool_from_artifacts(
    paths: Sequence,
    *,
    base=None,
    expected_epoch: Optional[int] = None,
    clock: Optional[VirtualClock] = None,
    quarantine_threshold: int = 2,
    quarantine_period: float = 5.0,
) -> Tuple[ReplicaPool, List[str]]:
    """Build a pool from per-replica artifacts, skipping unloadable ones.

    A truncated, tampered or stale (``expected_epoch``-mismatched) artifact
    raises :class:`~repro.core.errors.ConstructionError` at load time; that
    replica is skipped and the pool falls back to the remaining last-good
    replicas.  Returns the pool plus one message per skipped artifact;
    raises :class:`ConstructionError` when *no* artifact loads.
    """
    servers: List[Server] = []
    skipped: List[str] = []
    for path in paths:
        try:
            servers.append(
                Server.from_artifact(path, base=base, expected_epoch=expected_epoch)
            )
        except ConstructionError as err:
            skipped.append(f"{path}: {err}")
    if not servers:
        raise ConstructionError(
            "no replica artifact was loadable: " + "; ".join(skipped)
        )
    pool = ReplicaPool(
        servers,
        clock=clock,
        quarantine_threshold=quarantine_threshold,
        quarantine_period=quarantine_period,
    )
    return pool, skipped
