"""Replica pool with retry, failover and quarantine over verifying clients.

The trust model makes resilience unusually clean: a client never has to
*guess* whether a replica misbehaved, because every answer carries a
verification object and the client-side check is sound.  A replica answer
is therefore one of exactly four things -- accepted (verified), rejected
(verification failed), a replica error (the query raised
:class:`~repro.core.errors.QueryProcessingError`) or a timeout -- and the
last three are all just "replica fault, try another one".

:class:`ReplicaPool` tracks N replicas cold-started from one shared
artifact (or handed in live), selects them round-robin and quarantines
repeat offenders with half-open probing.  :class:`ResilientClient` drives
the retry/failover loop under a :class:`~repro.resilience.policy.RetryPolicy`
and returns a :class:`ResilientExecution` recording every attempt, which
replica finally answered and whether the answer is degraded (accepted, but
only after failovers).

All timing runs on the pool's :class:`VirtualClock` and all jitter comes
from a seeded rng, so a fault-injected run is exactly reproducible.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.client import Client
from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.results import VerificationReport
from repro.core.server import QueryExecution, Server
from repro.resilience.policy import RetryPolicy, VirtualClock

__all__ = [
    "ReplicaHandle",
    "ReplicaPool",
    "Attempt",
    "ResilientExecution",
    "ResilientClient",
    "pool_from_artifact",
    "pool_from_artifacts",
]

#: Outcomes an attempt against one replica can have.
ATTEMPT_OUTCOMES = ("accepted", "rejected", "replica-error", "timeout")


@dataclass
class ReplicaHandle:
    """One replica slot of the pool, with its health bookkeeping.

    Mutable state is only ever touched under the owning pool's lock.
    ``quarantined_until`` is ``None`` while healthy; once set, the replica
    is skipped until that virtual time, then offered again as a *half-open
    probe* (a single failure re-quarantines it, a success clears it).
    """

    replica_id: int
    server: object
    consecutive_failures: int = 0
    quarantined_until: Optional[float] = None
    served: int = 0
    faults: int = 0
    quarantines: int = 0


class ReplicaPool:
    """Round-robin replica selection with quarantine and half-open probing.

    ``replicas`` can be real :class:`~repro.core.server.Server` objects,
    :class:`~repro.resilience.faults.FaultInjector` wrappers or anything
    else with the server's ``execute`` surface.  A replica that fails
    ``quarantine_threshold`` consecutive times is quarantined for
    ``quarantine_period`` virtual seconds; after that it is offered again
    as a probe, and only a verified success restores it fully.
    """

    def __init__(
        self,
        replicas: Sequence[object],
        *,
        clock: Optional[VirtualClock] = None,
        quarantine_threshold: int = 2,
        quarantine_period: float = 5.0,
    ):
        if not replicas:
            raise ValueError("a replica pool needs at least one replica")
        if quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got {quarantine_threshold}"
            )
        if quarantine_period <= 0:
            raise ValueError(
                f"quarantine_period must be positive, got {quarantine_period}"
            )
        self.clock = clock if clock is not None else VirtualClock()
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_period = quarantine_period
        self.handles = tuple(
            ReplicaHandle(replica_id=index, server=server)
            for index, server in enumerate(replicas)
        )
        self._lock = threading.Lock()
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.handles)

    # ------------------------------------------------------------ selection
    def select(self, exclude: Optional[Set[int]] = None) -> Optional[ReplicaHandle]:
        """Pick the next replica to try, or ``None`` if none is eligible.

        Healthy replicas are served round-robin (deterministic: ordered by
        distance from the cursor).  When every healthy replica is excluded
        or quarantined, replicas whose quarantine has expired are offered
        as half-open probes, lowest id first.  Still-quarantined and
        excluded replicas are never returned.
        """
        excluded = exclude or set()
        with self._lock:
            now = self.clock.now()
            count = len(self.handles)
            healthy = [
                handle
                for handle in self.handles
                if handle.quarantined_until is None
                and handle.replica_id not in excluded
            ]
            if healthy:
                chosen = min(
                    healthy,
                    key=lambda handle: (handle.replica_id - self._cursor) % count,
                )
                self._cursor = (chosen.replica_id + 1) % count
                return chosen
            probes = [
                handle
                for handle in self.handles
                if handle.quarantined_until is not None
                and handle.quarantined_until <= now
                and handle.replica_id not in excluded
            ]
            if probes:
                return min(probes, key=lambda handle: handle.replica_id)
            return None

    # ------------------------------------------------------------ reporting
    def report_success(self, handle: ReplicaHandle) -> None:
        """A verified answer: reset failure state, clear any quarantine."""
        with self._lock:
            handle.consecutive_failures = 0
            handle.quarantined_until = None
            handle.served += 1

    def report_failure(self, handle: ReplicaHandle) -> None:
        """A fault (error / rejection / timeout): maybe quarantine.

        A replica reaching ``quarantine_threshold`` consecutive failures --
        which includes a failed half-open probe, since a probe's failure
        count was never reset -- is quarantined until
        ``now + quarantine_period``.
        """
        with self._lock:
            handle.faults += 1
            handle.consecutive_failures += 1
            if handle.consecutive_failures >= self.quarantine_threshold:
                handle.quarantined_until = self.clock.now() + self.quarantine_period
                handle.quarantines += 1

    # ------------------------------------------------------------ inspection
    def status(self) -> List[Dict[str, object]]:
        """Per-replica health snapshot (for benches and debugging)."""
        with self._lock:
            now = self.clock.now()
            return [
                {
                    "replica_id": handle.replica_id,
                    "served": handle.served,
                    "faults": handle.faults,
                    "quarantines": handle.quarantines,
                    "quarantined": (
                        handle.quarantined_until is not None
                        and handle.quarantined_until > now
                    ),
                }
                for handle in self.handles
            ]


@dataclass(frozen=True)
class Attempt:
    """One attempt of one query against one replica."""

    replica_id: int
    outcome: str  # one of ATTEMPT_OUTCOMES
    detail: str
    started: float
    elapsed: float
    backoff: float  # virtual seconds slept after this attempt (0.0 if none)


@dataclass(frozen=True)
class ResilientExecution:
    """The outcome of running one query through the resilient front-end.

    ``execution``/``report`` are the accepted answer and its verification
    report (``None`` when every attempt failed); ``attempts`` records the
    full trail, including the accepting attempt.
    """

    query: AnalyticQuery
    execution: Optional[QueryExecution]
    report: Optional[VerificationReport]
    attempts: Tuple[Attempt, ...]
    replica_id: Optional[int]
    started: float
    finished: float

    @property
    def accepted(self) -> bool:
        """True when some replica's answer passed client verification."""
        return self.report is not None and self.report.is_valid

    @property
    def degraded(self) -> bool:
        """Accepted, but only after at least one failed attempt."""
        return self.accepted and len(self.attempts) > 1

    @property
    def exhausted(self) -> bool:
        """No replica produced a verifiable answer within the budget."""
        return not self.accepted

    @property
    def elapsed(self) -> float:
        """Virtual seconds from first attempt to final outcome."""
        return self.finished - self.started

    def flags(self) -> Dict[str, object]:
        """The degradation flags as a plain dict (bench/report friendly)."""
        return {
            "accepted": self.accepted,
            "degraded": self.degraded,
            "exhausted": self.exhausted,
            "attempts": len(self.attempts),
            "replica_id": self.replica_id,
        }


class ResilientClient:
    """Verifying front-end that retries and fails over across a pool.

    Every replica answer is client-verified before acceptance; rejected,
    erroring and timed-out attempts all count as replica faults and move on
    to the next replica under the :class:`RetryPolicy`'s backoff schedule.
    One instance is meant to serve one logical caller (its retry rng is a
    single seeded stream); concurrent callers should each hold their own.
    """

    def __init__(
        self,
        pool: ReplicaPool,
        client: Client,
        policy: Optional[RetryPolicy] = None,
        *,
        seed: int = 0,
    ):
        self.pool = pool
        self.client = client
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = pool.clock
        self._rng = random.Random(seed)

    # ------------------------------------------------------------ execution
    def execute(self, query: AnalyticQuery) -> ResilientExecution:
        """Run one query to an accepted (verified) answer or exhaustion."""
        policy = self.policy
        started = self.clock.now()
        attempts: List[Attempt] = []
        tried: Set[int] = set()
        while len(attempts) < policy.max_attempts:
            if attempts and self.clock.now() - started >= policy.deadline:
                break
            handle = self.pool.select(tried)
            if handle is None and tried:
                # Every replica was already tried this query; allow second
                # chances rather than failing with attempts to spare.
                tried.clear()
                handle = self.pool.select(tried)
            if handle is None:
                break
            attempt_start = self.clock.now()
            execution: Optional[QueryExecution] = None
            report: Optional[VerificationReport] = None
            try:
                execution = handle.server.execute(query)
            except QueryProcessingError as err:
                err.annotate(replica_id=handle.replica_id)
                outcome, detail = "replica-error", str(err)
            else:
                elapsed = self.clock.now() - attempt_start
                if elapsed > policy.attempt_timeout:
                    # The answer arrived after the per-attempt budget: a
                    # real caller would have hung up, so discard it.
                    outcome = "timeout"
                    detail = (
                        f"attempt took {elapsed:.3f}s"
                        f" > attempt_timeout {policy.attempt_timeout:.3f}s"
                    )
                    execution = None
                else:
                    report = self.client.verify(
                        query, execution.result, execution.verification_object
                    )
                    if report.is_valid:
                        self.pool.report_success(handle)
                        attempts.append(
                            Attempt(
                                replica_id=handle.replica_id,
                                outcome="accepted",
                                detail="verified",
                                started=attempt_start,
                                elapsed=elapsed,
                                backoff=0.0,
                            )
                        )
                        return ResilientExecution(
                            query=query,
                            execution=execution,
                            report=report,
                            attempts=tuple(attempts),
                            replica_id=handle.replica_id,
                            started=started,
                            finished=self.clock.now(),
                        )
                    outcome = "rejected"
                    detail = ",".join(report.failed_checks()) or "verification failed"
                    execution = None
                    report = None
            elapsed = self.clock.now() - attempt_start
            self.pool.report_failure(handle)
            tried.add(handle.replica_id)
            failures = len(attempts) + 1
            backoff = 0.0
            out_of_budget = failures >= policy.max_attempts
            if not out_of_budget:
                pause = policy.backoff(failures, self._rng)
                if self.clock.now() - started + pause >= policy.deadline:
                    # The next backoff alone would overrun the deadline:
                    # abandon instead of hammering replicas without pause.
                    out_of_budget = True
                else:
                    backoff = pause
            attempts.append(
                Attempt(
                    replica_id=handle.replica_id,
                    outcome=outcome,
                    detail=detail,
                    started=attempt_start,
                    elapsed=elapsed,
                    backoff=backoff,
                )
            )
            if backoff:
                self.clock.advance(backoff)
            if out_of_budget:
                break
        return ResilientExecution(
            query=query,
            execution=None,
            report=None,
            attempts=tuple(attempts),
            replica_id=None,
            started=started,
            finished=self.clock.now(),
        )

    def execute_batch(
        self, queries: Sequence[AnalyticQuery]
    ) -> List[ResilientExecution]:
        """Run queries one at a time, each with full retry/failover.

        Per-query (rather than batched) dispatch keeps failover granular: a
        replica crashing halfway through does not void the already-verified
        answers of earlier queries.
        """
        return [self.execute(query) for query in queries]


# ---------------------------------------------------------------- factories
def pool_from_artifact(
    path,
    replicas: int = 3,
    *,
    base=None,
    expected_epoch: Optional[int] = None,
    clock: Optional[VirtualClock] = None,
    quarantine_threshold: int = 2,
    quarantine_period: float = 5.0,
) -> ReplicaPool:
    """Cold-start ``replicas`` servers from one shared published artifact.

    Every replica is an independent :meth:`Server.from_artifact` load (own
    score cache, own counters) of the same file, exactly how a fleet would
    bootstrap from one published ADS.  Errors propagate: if the shared
    artifact is truncated or tampered, no usable pool exists.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    servers = [
        Server.from_artifact(path, base=base, expected_epoch=expected_epoch)
        for _ in range(replicas)
    ]
    return ReplicaPool(
        servers,
        clock=clock,
        quarantine_threshold=quarantine_threshold,
        quarantine_period=quarantine_period,
    )


def pool_from_artifacts(
    paths: Sequence,
    *,
    base=None,
    expected_epoch: Optional[int] = None,
    clock: Optional[VirtualClock] = None,
    quarantine_threshold: int = 2,
    quarantine_period: float = 5.0,
) -> Tuple[ReplicaPool, List[str]]:
    """Build a pool from per-replica artifacts, skipping unloadable ones.

    A truncated, tampered or stale (``expected_epoch``-mismatched) artifact
    raises :class:`~repro.core.errors.ConstructionError` at load time; that
    replica is skipped and the pool falls back to the remaining last-good
    replicas.  Returns the pool plus one message per skipped artifact;
    raises :class:`ConstructionError` when *no* artifact loads.
    """
    servers: List[Server] = []
    skipped: List[str] = []
    for path in paths:
        try:
            servers.append(
                Server.from_artifact(path, base=base, expected_epoch=expected_epoch)
            )
        except ConstructionError as err:
            skipped.append(f"{path}: {err}")
    if not servers:
        raise ConstructionError(
            "no replica artifact was loadable: " + "; ".join(skipped)
        )
    pool = ReplicaPool(
        servers,
        clock=clock,
        quarantine_threshold=quarantine_threshold,
        quarantine_period=quarantine_period,
    )
    return pool, skipped
