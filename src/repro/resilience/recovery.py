"""Differential crash-recovery harness for the owner update pipeline.

The durability claim of :mod:`repro.resilience.journal` is sharp: crash
the owner at **any** step of the update pipeline -- mid journal append,
after the append but before the ADS apply, after the apply, or during the
final publish -- and :meth:`repro.core.owner.DataOwner.recover` produces
an owner *bit-identical* to one that never crashed.  This module proves
it by construction: it enumerates every crash point for a batch sequence,
simulates the crash (including torn journal writes), recovers, finishes
the pipeline, and compares the full observable state -- IFMH roots and
signatures, query results and verification objects, verdict summaries,
and both hash counters (logical and physical) -- against an uninterrupted
reference run.

The harness is deterministic end to end (no wall clock, no unseeded
randomness), so the churn bench gate (``python -m repro.bench --churn``)
and the resilience test suite run the exact same matrix.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.client import Client
from repro.core.owner import DataOwner
from repro.core.server import Server
from repro.crypto.signer import KeyPair
from repro.resilience.journal import UpdateJournal, _encode_record

__all__ = [
    "CrashPoint",
    "UpdateBatch",
    "DifferentialOutcome",
    "crash_points",
    "state_fingerprint",
    "run_pipeline",
    "run_crash_matrix",
]

#: Pipeline steps a crash can interrupt, in execution order within a batch.
CRASH_STEPS = ("journal-torn", "journal", "apply", "publish")


@dataclass(frozen=True)
class UpdateBatch:
    """One owner update batch fed through the pipeline."""

    inserts: Tuple[Any, ...] = ()
    deletes: Tuple[int, ...] = ()
    strategy: str = "auto"


@dataclass(frozen=True)
class CrashPoint:
    """Where the simulated process dies.

    * ``journal-torn`` -- mid-append of batch ``batch``: only a prefix of
      the framed record reaches the file (the classic torn write).
    * ``journal`` -- right after batch ``batch`` was durably journaled,
      before the ADS apply ran.
    * ``apply`` -- right after batch ``batch`` was applied, before
      anything else happened.
    * ``publish`` -- during the final artifact publish (``batch`` is
      ``None``); the atomic publish leaves the previous artifact intact.
    """

    step: str
    batch: Optional[int] = None

    @property
    def label(self) -> str:
        return self.step if self.batch is None else f"{self.step}@{self.batch}"


def crash_points(n_batches: int) -> Tuple[CrashPoint, ...]:
    """Every crash point for a pipeline of ``n_batches`` batches."""
    points: List[CrashPoint] = []
    for index in range(n_batches):
        points.append(CrashPoint("journal-torn", index))
        points.append(CrashPoint("journal", index))
        points.append(CrashPoint("apply", index))
    points.append(CrashPoint("publish"))
    return tuple(points)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()  # reprolint: disable=RL001 -- fingerprint digest for state comparison, not a paper-counted hash


def state_fingerprint(owner: DataOwner, queries: Sequence[Any]) -> Dict[str, Any]:
    """The full observable state of an owner, as a comparable dict.

    Captures the ADS roots/signatures, the owner's complete counter
    snapshot (including logical *and* physical hash operations), and --
    for every probe query -- the result, verification-object digest,
    verdict summary and per-query server counters through a fresh
    server/client pair.
    """
    fingerprint: Dict[str, Any] = {
        "epoch": owner.epoch,
        "owner_counters": owner.counters.snapshot(),
    }
    ads = owner.ads
    if hasattr(ads, "root_hash"):
        fingerprint["root"] = _digest(repr((ads.root_hash, ads.root_signature)))
    else:
        fingerprint["root"] = _digest(
            repr([pair.signature for pair in ads.unique_signatures])
        )
    server = Server(owner.outsource())
    client = Client(owner.public_parameters())
    probes = []
    for query in queries:
        execution = server.execute(query)
        report = client.verify(
            query, execution.result, execution.verification_object
        )
        probes.append(
            {
                "result": _digest(repr(execution.result)),
                "vo": _digest(repr(execution.verification_object)),
                "verdict": report.summary(),
                "query_counters": execution.counters.snapshot(),
            }
        )
    fingerprint["queries"] = probes
    return fingerprint


def _torn_append(journal: UpdateJournal, payload: Dict[str, Any]) -> None:
    """Simulate a crash mid-append: write only a prefix of the frame."""
    frame = _encode_record(payload)
    cut = max(1, len(frame) // 2)
    with open(journal.path, "ab") as stream:
        stream.write(frame[:cut])
        stream.flush()
        os.fsync(stream.fileno())


def run_pipeline(
    base_artifact: str,
    *,
    keypair: KeyPair,
    batches: Sequence[UpdateBatch],
    journal_path: str,
    final_artifact: str,
    crash: Optional[CrashPoint] = None,
) -> Optional[DataOwner]:
    """Run the journal -> apply -> publish pipeline, optionally crashing.

    Returns the finished owner, or ``None`` when ``crash`` fired (the
    simulated process died; recover with
    :meth:`~repro.core.owner.DataOwner.recover`).  The journal is driven
    explicitly (not through ``owner.journal``) so a crash can land
    *between* the journal append and the ADS apply.
    """
    owner = DataOwner.from_artifact(base_artifact, keypair=keypair)
    journal = UpdateJournal.create(
        journal_path, lineage=owner.lineage(), base_epoch=owner.epoch
    )
    for index, batch in enumerate(batches):
        epoch = owner.epoch + 1
        payload = {
            "type": "batch",
            "epoch": epoch,
            "strategy": batch.strategy,
            "inserts": [
                [record.record_id, list(record.values), record.label]
                for record in batch.inserts
            ],
            "deletes": [int(record_id) for record_id in batch.deletes],
        }
        if crash == CrashPoint("journal-torn", index):
            _torn_append(journal, payload)
            return None
        journal.append_batch(
            epoch=epoch,
            inserts=batch.inserts,
            deletes=batch.deletes,
            strategy=batch.strategy,
        )
        if crash == CrashPoint("journal", index):
            return None
        owner.apply_updates(
            inserts=batch.inserts, deletes=batch.deletes, strategy=batch.strategy
        )
        if crash == CrashPoint("apply", index):
            return None
    if crash == CrashPoint("publish"):
        # The atomic publish guarantees a crash here leaves the previous
        # artifact untouched -- equivalent to the publish never starting.
        return None
    owner.publish(final_artifact, base=base_artifact)
    journal.note_published(owner.epoch)
    return owner


def _resume_after_crash(
    base_artifact: str,
    *,
    keypair: KeyPair,
    batches: Sequence[UpdateBatch],
    journal_path: str,
    final_artifact: str,
) -> DataOwner:
    """What a restarted owner process does: recover, finish, publish."""
    journal = UpdateJournal(journal_path)
    owner = DataOwner.recover(journal, base_artifact, keypair=keypair)
    base_epoch = owner.last_recovery.base_epoch
    done = owner.epoch - base_epoch
    for batch in batches[done:]:
        # Batches past the recovered epoch never reached the journal (a
        # torn append is not a commit); re-submitting them journals and
        # applies exactly like the first attempt would have.
        owner.apply_updates(
            inserts=batch.inserts, deletes=batch.deletes, strategy=batch.strategy
        )
    owner.publish(final_artifact, base=base_artifact)
    return owner


@dataclass(frozen=True)
class DifferentialOutcome:
    """One crash point's verdict from :func:`run_crash_matrix`."""

    crash: CrashPoint
    replayed_batches: int
    torn_tail_discarded: bool
    identical: bool
    mismatched_fields: Tuple[str, ...]


def _compare(reference: Dict[str, Any], candidate: Dict[str, Any]) -> Tuple[str, ...]:
    return tuple(
        sorted(
            key
            for key in set(reference) | set(candidate)
            if reference.get(key) != candidate.get(key)
        )
    )


def run_crash_matrix(
    base_artifact: str,
    *,
    keypair: KeyPair,
    batches: Sequence[UpdateBatch],
    queries: Sequence[Any],
    workdir: str,
) -> Tuple[Dict[str, Any], List[DifferentialOutcome]]:
    """Crash at every pipeline step; prove recovery is bit-identical.

    Runs one uninterrupted reference pipeline, then -- for each crash
    point -- a crashed run plus recovery in its own scratch directory,
    and fingerprints both final owners.  Returns the reference
    fingerprint and one :class:`DifferentialOutcome` per crash point.
    """
    reference_dir = os.path.join(workdir, "reference")
    os.makedirs(reference_dir, exist_ok=True)
    reference = run_pipeline(
        base_artifact,
        keypair=keypair,
        batches=batches,
        journal_path=os.path.join(reference_dir, "updates.journal"),
        final_artifact=os.path.join(reference_dir, "final.npz"),
    )
    reference_fingerprint = state_fingerprint(reference, queries)

    outcomes: List[DifferentialOutcome] = []
    for crash in crash_points(len(batches)):
        crash_dir = os.path.join(workdir, f"crash-{crash.label}")
        os.makedirs(crash_dir, exist_ok=True)
        journal_path = os.path.join(crash_dir, "updates.journal")
        final_artifact = os.path.join(crash_dir, "final.npz")
        died = run_pipeline(
            base_artifact,
            keypair=keypair,
            batches=batches,
            journal_path=journal_path,
            final_artifact=final_artifact,
            crash=crash,
        )
        assert died is None, f"crash point {crash.label} did not fire"
        recovered = _resume_after_crash(
            base_artifact,
            keypair=keypair,
            batches=batches,
            journal_path=journal_path,
            final_artifact=final_artifact,
        )
        fingerprint = state_fingerprint(recovered, queries)
        mismatched = _compare(reference_fingerprint, fingerprint)
        outcomes.append(
            DifferentialOutcome(
                crash=crash,
                replayed_batches=recovered.last_recovery.replayed_batches,
                torn_tail_discarded=recovered.last_recovery.torn_tail_discarded,
                identical=not mismatched,
                mismatched_fields=mismatched,
            )
        )
    return reference_fingerprint, outcomes
