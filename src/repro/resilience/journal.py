"""Append-only, checksummed write-ahead journal for owner update batches.

The epoch machinery (PR 5) makes stale answers *detectable*; this module
makes the owner's update pipeline *durable*.  Before
:meth:`repro.core.owner.DataOwner.apply_updates` touches the live ADS it
appends the whole batch to an :class:`UpdateJournal` -- one framed,
SHA-256-checksummed, fsynced record per batch -- so a crash at any point
between two publishes loses nothing:
:meth:`repro.core.owner.DataOwner.recover` reloads the newest published
artifact and replays every journaled batch past its epoch, and the
recovered owner is **bit-identical** (roots, verification objects, both
hash counters) to one that was never interrupted.

On-disk format
--------------
A journal is a flat sequence of framed records::

    +--------+----------------+------------------+---------------+
    | RJRN   | payload length | SHA-256(payload) | payload bytes |
    | 4 B    | 4 B LE uint32  | 32 B             | length B      |
    +--------+----------------+------------------+---------------+

Payloads are UTF-8 JSON objects.  Record 0 is the **header** (journal
format version, the epoch the journal starts after, and the lineage
fingerprint of the owner's public verification key); subsequent records
are **batch** records (epoch, strategy, inserts, deletes) and **publish
markers** (the epoch covered by a completed artifact publish, used by
:meth:`UpdateJournal.prune`).

Crash semantics
---------------
Appends write the full frame in one ``write`` call, flush and ``fsync``
before returning, so a batch is durable before the ADS apply starts.  A
crash mid-append leaves a *torn tail*: a partial final record.  The reader
discards a torn tail cleanly (the batch was never acknowledged) but treats
any damaged record **before** intact data as corruption and raises
:class:`~repro.core.errors.JournalError` naming the record index --
silently skipping a mid-journal record would replay a wrong history.

Rewrites (:meth:`prune`) go through the atomic-publish helper
(:func:`repro.core.artifact.atomic_write_bytes`), never a bare truncating
write -- enforced by reprolint RL009.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.artifact import atomic_write_bytes
from repro.core.errors import JournalError
from repro.core.records import Record

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_FORMAT_VERSION",
    "JournalBatch",
    "JournalScan",
    "UpdateJournal",
    "lineage_fingerprint",
]

#: First bytes of every framed journal record.
JOURNAL_MAGIC = b"RJRN"

#: Bumped on any incompatible record-payload change.
JOURNAL_FORMAT_VERSION = 1

#: Frame layout: magic, uint32 LE payload length, 32-byte SHA-256.
_FRAME_HEADER = struct.Struct("<4sI32s")


def lineage_fingerprint(verifier_payload: Dict[str, Any]) -> str:
    """Stable fingerprint of a published verification key.

    Binds a journal to one ADS lineage: recovering a journal against an
    artifact of a different owner fails up front instead of replaying
    batches onto the wrong dataset.
    """
    canonical = json.dumps(verifier_payload, sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()  # reprolint: disable=RL001 -- lineage identity checksum, not a paper-counted hash


@dataclass(frozen=True)
class JournalBatch:
    """One durably logged update batch."""

    index: int  #: 0-based record position in the journal file.
    epoch: int  #: The epoch this batch advances the ADS *to*.
    strategy: str  #: The strategy string handed to ``apply_updates``.
    inserts: Tuple[Record, ...]
    deletes: Tuple[int, ...]


@dataclass(frozen=True)
class JournalScan:
    """Everything a full journal read yields.

    ``torn_tail`` is true when a partial final record (crash mid-append)
    was discarded; ``valid_bytes`` is the offset where the intact prefix
    ends (the torn bytes start there).
    """

    header: Dict[str, Any]
    batches: Tuple[JournalBatch, ...]
    published_epoch: int
    torn_tail: bool
    valid_bytes: int

    @property
    def base_epoch(self) -> int:
        """The epoch the journal's batch chain starts after."""
        return int(self.header["base_epoch"])

    @property
    def last_epoch(self) -> int:
        """The epoch of the newest journaled batch (base epoch if none)."""
        return self.batches[-1].epoch if self.batches else self.base_epoch


def _encode_record(payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode()
    digest = hashlib.sha256(body).digest()  # reprolint: disable=RL001 -- journal frame checksum, not a paper-counted hash
    return _FRAME_HEADER.pack(JOURNAL_MAGIC, len(body), digest) + body


def _record_to_batch(index: int, payload: Dict[str, Any]) -> JournalBatch:
    inserts = tuple(
        Record(record_id=int(record_id), values=tuple(values), label=str(label))
        for record_id, values, label in payload["inserts"]
    )
    return JournalBatch(
        index=index,
        epoch=int(payload["epoch"]),
        strategy=str(payload["strategy"]),
        inserts=inserts,
        deletes=tuple(int(record_id) for record_id in payload["deletes"]),
    )


class UpdateJournal:
    """The owner-side write-ahead journal (one file, one ADS lineage).

    Create a fresh journal with :meth:`create`, reopen an existing one
    with the constructor.  Appends are durable before they return
    (``fsync=True``, the default); a test may disable fsync for speed,
    the format is identical.
    """

    def __init__(self, path: Union[str, "os.PathLike[str]"], *, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)

    # ------------------------------------------------------------- creation
    @classmethod
    def create(
        cls,
        path: Union[str, "os.PathLike[str]"],
        *,
        lineage: str,
        base_epoch: int,
        fsync: bool = True,
    ) -> "UpdateJournal":
        """Write a fresh journal holding only its header record.

        ``lineage`` is the owner's :func:`lineage_fingerprint`;
        ``base_epoch`` is the owner's current epoch -- the first journaled
        batch must advance to ``base_epoch + 1``.  Refuses to clobber an
        existing journal file.
        """
        target = os.fspath(path)
        if os.path.exists(target):
            raise JournalError(
                f"journal {target!r} already exists; reopen it instead of recreating"
            )
        header = {
            "type": "header",
            "magic": JOURNAL_MAGIC.decode(),
            "journal_version": JOURNAL_FORMAT_VERSION,
            "lineage": lineage,
            "base_epoch": int(base_epoch),
        }
        atomic_write_bytes(target, _encode_record(header))
        return cls(target, fsync=fsync)

    # -------------------------------------------------------------- appends
    def _append(self, payload: Dict[str, Any], *, scan: Optional[JournalScan] = None) -> None:
        """Append one framed record, repairing a torn tail first.

        Appending blindly after a crash would bury the torn bytes in the
        middle of the file, turning a recoverable tail into hard
        corruption -- so every append validates the existing file and
        truncates a torn tail (atomically) before writing.
        """
        if scan is None:
            scan = self.scan()
        if scan.torn_tail:
            self.truncate_torn_tail(scan=scan)
        frame = _encode_record(payload)
        with open(self.path, "ab") as stream:
            stream.write(frame)
            stream.flush()
            if self.fsync:
                os.fsync(stream.fileno())

    def append_batch(
        self,
        *,
        epoch: int,
        inserts: Sequence[Record] = (),
        deletes: Sequence[int] = (),
        strategy: str = "auto",
    ) -> int:
        """Durably log one update batch *before* it is applied.

        Returns the journal record index of the appended batch.  The
        append is the batch's commit point: once this returns, a crash at
        any later pipeline step replays the batch on recovery.
        """
        scan = self.scan()
        expected = scan.last_epoch + 1
        if int(epoch) != expected:
            raise JournalError(
                f"journal {self.path!r} expects the next batch at epoch "
                f"{expected}, got {epoch}; batches must chain contiguously",
                epoch=int(epoch),
            )
        self._append(
            {
                "type": "batch",
                "epoch": int(epoch),
                "strategy": str(strategy),
                "inserts": [
                    [record.record_id, list(record.values), record.label]
                    for record in inserts
                ],
                "deletes": [int(record_id) for record_id in deletes],
            },
            scan=scan,
        )
        return self.scan().batches[-1].index

    def note_published(self, epoch: int) -> None:
        """Record that an artifact covering ``epoch`` was fully published.

        Publish markers never affect recovery (recovery trusts the actual
        artifact's epoch); they bound :meth:`prune`, which refuses to drop
        batches newer than the newest marker.
        """
        self._append({"type": "published", "epoch": int(epoch)})

    # -------------------------------------------------------------- reading
    def scan(self) -> JournalScan:
        """Read and validate the whole journal.

        Discards a torn tail (partial final record) cleanly; raises
        :class:`~repro.core.errors.JournalError` -- naming the record
        index -- for a damaged record that sits *before* intact data, a
        bad header, or a broken epoch chain.
        """
        try:
            with open(self.path, "rb") as stream:
                data = stream.read()
        except FileNotFoundError:
            raise JournalError(f"journal {self.path!r} does not exist") from None
        payloads, torn, valid_bytes = self._parse_frames(data)
        if not payloads:
            raise JournalError(
                f"journal {self.path!r} has no intact header record; "
                "the file is not a journal or lost its first record"
            )
        header = payloads[0]
        if header.get("type") != "header" or header.get("magic") != JOURNAL_MAGIC.decode():
            raise JournalError(
                f"journal {self.path!r} record 0 is not a journal header",
                record_index=0,
            )
        version = header.get("journal_version")
        if version != JOURNAL_FORMAT_VERSION:
            raise JournalError(
                f"journal {self.path!r} uses format version {version!r}; "
                f"this build reads version {JOURNAL_FORMAT_VERSION}",
                record_index=0,
            )
        batches: List[JournalBatch] = []
        published = int(header["base_epoch"])
        expected_epoch = int(header["base_epoch"]) + 1
        for index, payload in enumerate(payloads[1:], start=1):
            kind = payload.get("type")
            if kind == "batch":
                if int(payload["epoch"]) != expected_epoch:
                    raise JournalError(
                        f"journal {self.path!r} record {index} carries epoch "
                        f"{payload['epoch']}, expected {expected_epoch}; the "
                        "batch chain is broken",
                        record_index=index,
                        epoch=int(payload["epoch"]),
                    )
                batches.append(_record_to_batch(index, payload))
                expected_epoch += 1
            elif kind == "published":
                published = max(published, int(payload["epoch"]))
            else:
                raise JournalError(
                    f"journal {self.path!r} record {index} has unknown type {kind!r}",
                    record_index=index,
                )
        return JournalScan(
            header=header,
            batches=tuple(batches),
            published_epoch=published,
            torn_tail=torn,
            valid_bytes=valid_bytes,
        )

    def _parse_frames(self, data: bytes) -> Tuple[List[Dict[str, Any]], bool, int]:
        """Split the raw file into validated payloads.

        Returns ``(payloads, torn_tail, valid_bytes)``.  Any anomaly in
        the final record region (short frame, short payload, checksum
        mismatch at EOF) is a torn tail; the same anomaly with intact data
        after it is corruption and raises.
        """
        payloads: List[Dict[str, Any]] = []
        offset = 0
        index = 0
        size = len(data)
        while offset < size:
            remaining = size - offset
            if remaining < _FRAME_HEADER.size:
                return payloads, True, offset
            magic, length, digest = _FRAME_HEADER.unpack_from(data, offset)
            if magic != JOURNAL_MAGIC:
                raise JournalError(
                    f"journal {self.path!r} record {index} does not start with "
                    "the record magic; the journal is corrupt",
                    record_index=index,
                )
            body_start = offset + _FRAME_HEADER.size
            body_end = body_start + length
            if body_end > size:
                return payloads, True, offset
            body = data[body_start:body_end]
            checksum = hashlib.sha256(body).digest()  # reprolint: disable=RL001 -- journal frame checksum, not a paper-counted hash
            if checksum != digest:
                if body_end == size:
                    # The damaged record is the very tail of the file: a
                    # crash mid-append that got the length down but not the
                    # whole payload.  Discard it; the batch was never
                    # acknowledged as durable.
                    return payloads, True, offset
                raise JournalError(
                    f"journal {self.path!r} record {index} fails its checksum "
                    "but intact records follow; refusing to replay a damaged "
                    "history",
                    record_index=index,
                )
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise JournalError(
                    f"journal {self.path!r} record {index} carries an intact "
                    f"checksum but undecodable payload ({error})",
                    record_index=index,
                ) from None
            payloads.append(payload)
            offset = body_end
            index += 1
        return payloads, False, size

    def replay_batches(self, after_epoch: int) -> Tuple[JournalBatch, ...]:
        """The committed batches a recovery from ``after_epoch`` must replay.

        Raises :class:`~repro.core.errors.JournalError` when the journal
        does not reach back far enough (its batch chain starts after
        ``after_epoch + 1`` -- e.g. it was pruned past the artifact being
        recovered from).
        """
        scan = self.scan()
        if after_epoch < scan.base_epoch:
            raise JournalError(
                f"journal {self.path!r} starts after epoch {scan.base_epoch} "
                f"but recovery needs batches from epoch {after_epoch + 1}; "
                "the journal was pruned past the recovery base"
            )
        return tuple(batch for batch in scan.batches if batch.epoch > after_epoch)

    # ------------------------------------------------------------- repairs
    def truncate_torn_tail(self, *, scan: Optional[JournalScan] = None) -> bool:
        """Chop a torn tail off the file; returns True when bytes were cut.

        The rewrite is atomic (temp + fsync + rename), so a crash during
        the repair leaves either the torn file or the repaired one.
        """
        if scan is None:
            scan = self.scan()
        if not scan.torn_tail:
            return False
        with open(self.path, "rb") as stream:
            data = stream.read(scan.valid_bytes)
        atomic_write_bytes(self.path, data)
        return True

    def prune(self, through_epoch: Optional[int] = None) -> int:
        """Drop batches already covered by a published artifact.

        ``through_epoch`` defaults to the newest publish marker.  Batches
        newer than the newest marker are **not** durable anywhere else,
        so pruning past it raises.  Returns the number of dropped batch
        records.  The rewrite is atomic and also discards any torn tail
        and stale publish markers.
        """
        scan = self.scan()
        if through_epoch is None:
            through_epoch = scan.published_epoch
        if through_epoch > scan.published_epoch:
            raise JournalError(
                f"cannot prune journal {self.path!r} through epoch "
                f"{through_epoch}: newest published epoch is "
                f"{scan.published_epoch}; batches past it exist only here",
                epoch=int(through_epoch),
            )
        kept = [batch for batch in scan.batches if batch.epoch > through_epoch]
        header = dict(scan.header)
        header["base_epoch"] = max(int(scan.header["base_epoch"]), int(through_epoch))
        frames = [_encode_record(header)]
        for batch in kept:
            frames.append(
                _encode_record(
                    {
                        "type": "batch",
                        "epoch": batch.epoch,
                        "strategy": batch.strategy,
                        "inserts": [
                            [record.record_id, list(record.values), record.label]
                            for record in batch.inserts
                        ],
                        "deletes": list(batch.deletes),
                    }
                )
            )
        if scan.published_epoch > header["base_epoch"]:
            frames.append(
                _encode_record({"type": "published", "epoch": scan.published_epoch})
            )
        atomic_write_bytes(self.path, b"".join(frames))
        return len(scan.batches) - len(kept)
