"""Deterministic retry policy and the virtual clock behind it.

Everything in the resilience layer makes its timing decisions against a
:class:`VirtualClock`, never the wall clock: simulated service time, injected
latency, backoff sleeps and per-query deadlines all advance the same virtual
timeline.  Two runs with the same seeds therefore make *identical* retry,
failover and quarantine decisions -- the property the fault-injection bench
gates on -- and no test ever actually sleeps.

:class:`RetryPolicy` is the bounded-retry schedule: exponential backoff with
deterministic jitter drawn from an **injected** ``random.Random`` (no global
RNG state), a per-attempt replica timeout and a per-query deadline.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

__all__ = ["VirtualClock", "RetryPolicy"]


class VirtualClock:
    """A monotonically advancing virtual time source (thread-safe).

    Time only moves when someone calls :meth:`advance` -- replicas advance
    it by their simulated service time (plus any injected latency), the
    retry loop advances it by its backoff sleeps.  Deadlines measured
    against this clock are exact and reproducible.
    """

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new current time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds!r} seconds")
        with self._lock:
            self._now += float(seconds)
            return self._now


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Hard cap on replica attempts per query (first try included).
    base_backoff / backoff_multiplier / max_backoff:
        Backoff before retry ``i`` (1-based failure count) is
        ``min(max_backoff, base_backoff * multiplier**(i-1))`` plus jitter.
    jitter_fraction:
        Jitter is ``backoff * jitter_fraction * rng.random()`` with the
        caller-injected rng -- deterministic under a fixed seed, yet
        desynchronizing replicas under distinct seeds.
    attempt_timeout:
        Per-attempt replica budget in virtual seconds; an attempt whose
        (simulated) service time exceeds it is a replica fault even if an
        answer was produced.
    deadline:
        Per-query budget in virtual seconds; once the next backoff would
        overrun it the query is abandoned.
    """

    max_attempts: int = 6
    base_backoff: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff: float = 1.0
    jitter_fraction: float = 0.5
    attempt_timeout: float = 1.0
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        if self.attempt_timeout <= 0 or self.deadline <= 0:
            raise ValueError("attempt_timeout and deadline must be positive")

    def backoff(self, failures: int, rng: random.Random) -> float:
        """Backoff before the next attempt after ``failures`` faults (>= 1).

        Pure function of ``(failures, rng state)`` -- no wall-clock
        randomness, so replaying a seeded run reproduces every sleep.
        """
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        base = min(
            self.max_backoff,
            self.base_backoff * self.backoff_multiplier ** (failures - 1),
        )
        return base + base * self.jitter_fraction * rng.random()
