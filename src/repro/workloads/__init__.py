"""Synthetic workloads: datasets, scenarios and query generators.

The paper evaluates on synthetic tables of 1,000-10,000 records scored by
linear ranking functions; its introduction motivates the queries with
admission scoring, disease-risk scoring and financial-risk scoring.  This
package provides seeded generators for those workloads:

* :mod:`repro.workloads.generator` -- parametric dataset generation
  (uniform / correlated / clustered attribute distributions) and random
  query workloads;
* :mod:`repro.workloads.scenarios` -- the three named scenarios used by the
  examples (university admissions, credit risk, patient risk).
"""

from repro.workloads.generator import (
    WorkloadConfig,
    make_dataset,
    make_template,
    make_queries,
    make_weight_vector,
)
from repro.workloads.scenarios import (
    Scenario,
    admissions_scenario,
    credit_risk_scenario,
    patient_risk_scenario,
)

__all__ = [
    "WorkloadConfig",
    "make_dataset",
    "make_template",
    "make_queries",
    "make_weight_vector",
    "Scenario",
    "admissions_scenario",
    "credit_risk_scenario",
    "patient_risk_scenario",
]
