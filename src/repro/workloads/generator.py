"""Parametric dataset and query generation.

All generators are seeded so benchmarks and tests are reproducible.  The
important knob is the template *dimension*:

* ``dimension=1`` produces the univariate configuration (one weight variable
  plus a per-record constant term) used for the paper-scale experiments --
  the arrangement then has ``O(n^2)`` subdomains and the exact interval
  geometry engine applies;
* ``dimension>=2`` produces multivariate weighted-sum templates exercised by
  the LP engine (kept to small ``n`` in tests because the arrangement grows
  very quickly, exactly as the paper's complexity analysis predicts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.geometry.domain import Domain

__all__ = [
    "WorkloadConfig",
    "make_dataset",
    "make_template",
    "make_queries",
    "make_query",
    "make_weight_vector",
]

#: Attribute names used for generated tables (matching the paper's Fig. 1
#: flavour, extended for higher dimensions).
_ATTRIBUTE_POOL = (
    "gpa",
    "award",
    "paper",
    "experience",
    "recommendation",
    "service",
    "teaching",
    "outreach",
)

#: Name of the per-record constant attribute used by univariate templates.
_BASELINE_ATTRIBUTE = "baseline"


@dataclass(frozen=True)
class WorkloadConfig:
    """Configuration of a synthetic workload.

    Attributes
    ----------
    n_records:
        Number of records in the generated table.
    dimension:
        Number of weight variables in the utility template.
    distribution:
        ``"uniform"`` (independent attributes), ``"correlated"`` (attributes
        positively correlated with a hidden quality factor) or
        ``"clustered"`` (a small number of attribute-space clusters).
    value_range:
        Range of the generated attribute values.
    seed:
        Seed for the pseudo-random generator.
    """

    n_records: int = 100
    dimension: int = 1
    distribution: str = "uniform"
    value_range: tuple[float, float] = (0.0, 10.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise ValueError("a workload needs at least one record")
        if not 1 <= self.dimension <= len(_ATTRIBUTE_POOL):
            raise ValueError(
                f"dimension must be between 1 and {len(_ATTRIBUTE_POOL)}, got {self.dimension}"
            )
        if self.distribution not in ("uniform", "correlated", "clustered"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        low, high = self.value_range
        if not low < high:
            raise ValueError(f"invalid value range {self.value_range}")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Names of the generated attributes (weights first, then baseline)."""
        return _ATTRIBUTE_POOL[: self.dimension] + (_BASELINE_ATTRIBUTE,)


def _draw_row(config: WorkloadConfig, rng: random.Random, clusters: list[list[float]]) -> list[float]:
    low, high = config.value_range
    width = high - low
    count = config.dimension + 1  # weight attributes + baseline
    if config.distribution == "uniform":
        return [rng.uniform(low, high) for _ in range(count)]
    if config.distribution == "correlated":
        quality = rng.random()
        return [
            min(high, max(low, low + width * (0.7 * quality + 0.3 * rng.random())))
            for _ in range(count)
        ]
    centre = rng.choice(clusters)
    return [
        min(high, max(low, centre[position] + rng.gauss(0.0, 0.08 * width)))
        for position in range(count)
    ]


def make_dataset(config: WorkloadConfig) -> Dataset:
    """Generate a synthetic table according to ``config``."""
    rng = random.Random(config.seed)
    low, high = config.value_range
    clusters = [
        [rng.uniform(low, high) for _ in range(config.dimension + 1)] for _ in range(4)
    ]
    rows = [_draw_row(config, rng, clusters) for _ in range(config.n_records)]
    labels = [f"record-{position}" for position in range(config.n_records)]
    return Dataset.from_rows(config.attribute_names, rows, labels=labels)


def make_template(config: WorkloadConfig, domain: Optional[Domain] = None) -> UtilityTemplate:
    """The utility template matching a generated dataset.

    Univariate workloads score records as ``baseline + attribute * x`` (the
    constant term is what makes the univariate arrangement non-trivial);
    multivariate workloads use the plain weighted sum of the paper's Fig. 1.
    """
    weight_attributes = _ATTRIBUTE_POOL[: config.dimension]
    constant = _BASELINE_ATTRIBUTE if config.dimension == 1 else None
    return UtilityTemplate(
        attributes=weight_attributes,
        domain=domain or Domain.unit_box(config.dimension),
        constant_attribute=constant,
    )


def make_weight_vector(
    template: UtilityTemplate, rng: random.Random, margin: float = 0.05
) -> tuple[float, ...]:
    """A random weight vector strictly inside the template's domain."""
    weights = []
    for low, high in zip(template.domain.lower, template.domain.upper):
        width = high - low
        weights.append(rng.uniform(low + margin * width, high - margin * width))
    return tuple(weights)


def make_query(
    kind: str,
    weights: tuple[float, ...],
    scores: Sequence[float],
    rng: random.Random,
    result_size: int = 3,
) -> AnalyticQuery:
    """One query of ``kind`` over ``weights``, parameterized from ``scores``.

    ``scores`` is the dataset's sorted score list under ``weights``: range
    boundaries and KNN targets are anchored on it so the query hits a
    populated part of the score distribution.  All randomness comes from the
    caller's ``rng``, and the draw sequence per kind is fixed (``topk``
    draws nothing, ``range`` and ``knn`` draw exactly once), so seeded
    callers -- :func:`make_queries` and the serving tier's traffic
    generator -- replay bit-identically.
    """
    if kind == "topk":
        return TopKQuery(weights=weights, k=result_size)
    if kind == "range":
        anchor = rng.randrange(0, max(1, len(scores) - result_size))
        low = scores[anchor]
        high = scores[min(len(scores) - 1, anchor + result_size - 1)]
        return RangeQuery(weights=weights, low=low, high=high)
    if kind == "knn":
        target = rng.choice(scores)
        return KNNQuery(weights=weights, k=result_size, target=target)
    raise ValueError(f"unknown query kind {kind!r}")


def make_queries(
    dataset: Dataset,
    template: UtilityTemplate,
    *,
    count: int = 10,
    kinds: Sequence[str] = ("topk", "range", "knn"),
    result_size: int = 3,
    seed: int = 0,
) -> list[AnalyticQuery]:
    """Generate a mixed query workload with roughly ``result_size`` results each.

    Range queries are centred on the score of a random record so they hit a
    populated part of the score distribution; KNN targets are drawn the same
    way.
    """
    if not kinds:
        raise ValueError("at least one query kind is required")
    rng = random.Random(seed)
    queries: list[AnalyticQuery] = []
    functions = template.functions_for(dataset)
    for position in range(count):
        kind = kinds[position % len(kinds)]
        weights = make_weight_vector(template, rng)
        scores = sorted(function.evaluate(weights) for function in functions)
        queries.append(make_query(kind, weights, scores, rng, result_size))
    return queries
