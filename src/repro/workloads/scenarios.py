"""Named application scenarios used by the examples.

The paper motivates analytic queries with applications that score a database
with a utility function: graduate-admission ranking (its Fig. 1), disease
risk prediction and financial risk screening.  Each scenario bundles a
synthetic but realistically shaped dataset with the matching utility
template and a couple of natural queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery
from repro.core.records import Dataset, UtilityTemplate
from repro.geometry.domain import Domain

__all__ = [
    "Scenario",
    "admissions_scenario",
    "credit_risk_scenario",
    "patient_risk_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A ready-to-run application scenario."""

    name: str
    description: str
    dataset: Dataset
    template: UtilityTemplate
    example_queries: tuple[AnalyticQuery, ...]


def admissions_scenario(n_applicants: int = 60, seed: int = 42) -> Scenario:
    """Graduate admissions: the paper's Fig. 1 table.

    Records carry GPA, number of awards and number of papers; the committee
    scores applicants as ``GPA*w1 + Award*w2 + Paper*w3`` with weights chosen
    at query time.  To keep the arrangement tractable the template exposes
    two free weights (GPA and awards) while papers contribute through a
    fixed-weight constant column.
    """
    rng = random.Random(seed)
    rows = []
    labels = []
    for position in range(n_applicants):
        gpa = round(rng.uniform(2.4, 4.0), 2)
        awards = rng.randrange(0, 6)
        papers = rng.randrange(0, 9)
        # The constant column is the papers contribution at its fixed weight.
        rows.append((gpa, float(awards), float(papers), 0.35 * papers))
        labels.append(f"applicant-{position:04d}")
    dataset = Dataset.from_rows(("gpa", "award", "paper", "paper_points"), rows, labels=labels)
    template = UtilityTemplate(
        attributes=("gpa", "award"),
        domain=Domain.unit_box(2),
        constant_attribute="paper_points",
    )
    queries = (
        TopKQuery(weights=(0.7, 0.3), k=5),
        RangeQuery(weights=(0.5, 0.5), low=3.0, high=4.5),
        KNNQuery(weights=(0.6, 0.4), k=4, target=3.5),
    )
    return Scenario(
        name="university-admissions",
        description="Rank graduate applicants by a weighted GPA/award/paper score.",
        dataset=dataset,
        template=template,
        example_queries=queries,
    )


def credit_risk_scenario(n_customers: int = 80, seed: int = 7) -> Scenario:
    """Financial risk screening: find customers with minimal financial risk.

    Each customer has a payment-history score and a debt-utilisation score;
    the analyst scores customers as ``base_risk + history*w`` with the weight
    chosen per campaign, then asks range queries for the low-risk band.
    """
    rng = random.Random(seed)
    rows = []
    labels = []
    for position in range(n_customers):
        history = round(rng.uniform(0.0, 10.0), 2)
        base_risk = round(rng.uniform(1.0, 9.0), 2)
        utilisation = round(rng.uniform(0.0, 1.0), 3)
        rows.append((history, base_risk, utilisation))
        labels.append(f"customer-{position:05d}")
    dataset = Dataset.from_rows(("history", "base_risk", "utilisation"), rows, labels=labels)
    template = UtilityTemplate(
        attributes=("history",),
        domain=Domain(lower=(0.0,), upper=(1.0,)),
        constant_attribute="base_risk",
    )
    queries = (
        RangeQuery(weights=(0.4,), low=2.0, high=5.0),
        TopKQuery(weights=(0.8,), k=10),
        KNNQuery(weights=(0.25,), k=5, target=6.0),
    )
    return Scenario(
        name="credit-risk",
        description="Screen customers by a tunable payment-history risk score.",
        dataset=dataset,
        template=template,
        example_queries=queries,
    )


def patient_risk_scenario(n_patients: int = 70, seed: int = 11) -> Scenario:
    """Disease-risk monitoring: patients with a high risk under a tunable model.

    Mirrors the breast-cancer / diabetes risk-score motivation: every patient
    has a modifiable-factor score and a fixed familial baseline; clinicians
    tune the modifiable-factor weight and retrieve the highest-risk patients
    or the patients closest to a screening threshold.
    """
    rng = random.Random(seed)
    rows = []
    labels = []
    for position in range(n_patients):
        modifiable = round(rng.uniform(0.0, 8.0), 2)
        familial = round(rng.uniform(0.5, 6.0), 2)
        age = float(rng.randrange(30, 85))
        rows.append((modifiable, familial, age))
        labels.append(f"patient-{position:05d}")
    dataset = Dataset.from_rows(("modifiable", "familial", "age"), rows, labels=labels)
    template = UtilityTemplate(
        attributes=("modifiable",),
        domain=Domain(lower=(0.0,), upper=(2.0,)),
        constant_attribute="familial",
    )
    queries = (
        TopKQuery(weights=(1.2,), k=8),
        KNNQuery(weights=(0.9,), k=6, target=7.0),
        RangeQuery(weights=(1.5,), low=8.0, high=12.0),
    )
    return Scenario(
        name="patient-risk",
        description="Monitor patients by a tunable modifiable-plus-familial risk score.",
        dataset=dataset,
        template=template,
        example_queries=queries,
    )
