"""Signature-mesh construction and server-side query processing.

Construction (paper section 2.3.1):

1. compute the full arrangement of subdomains;
2. sort the records for every subdomain and bracket the list with the
   ``min`` / ``max`` tokens;
3. for every pair of consecutive chain entries compute the digest
   ``H(H(left) | H(right) | B_i)`` -- where ``B_i`` describes the covered
   subdomain(s) -- and sign it with the owner's private key;
4. a pair that remains consecutive across *consecutive* subdomains is signed
   once for the whole run (the shared-signature optimization that turns the
   chains into a mesh).  Sharing is applied for univariate templates, where
   "consecutive subdomains" is well defined (the cells are intervals in
   left-to-right order).

Query processing finds the subdomain containing the query's weight vector by
a linear scan over the cells (the baseline's fundamental cost), selects the
contiguous result window and ships one pair signature per consecutive pair
of the extended window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SIGNATURE_MESH, SystemConfig, resolve_config
from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.core.results import QueryResult
from repro.crypto.hashing import HashFunction, epoch_bound_combine
from repro.crypto.signer import Signer
from repro.geometry.arrangement import build_arrangement
from repro.geometry.domain import ABOVE, BELOW, Constraint, Region
from repro.geometry.engine import SplitEngine
from repro.geometry.functions import Hyperplane
from repro.merkle.fmh_tree import BoundaryEntry
from repro.mesh.structures import (
    CoverageRegion,
    MeshCell,
    MeshVerificationObject,
    PairSignature,
    chain_entry_bytes,
)
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel
from repro.queryproc.window import ResultWindow, select_window

__all__ = ["SignatureMesh"]

#: Chain-entry sentinels used by the artifact codec (record positions are
#: >= 0, so the tokens use negative codes).
_MIN_SENTINEL = -1
_MAX_SENTINEL = -2


class SignatureMesh:
    """The signature-mesh authenticated data structure (baseline)."""

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        config: Optional[SystemConfig] = None,
        signer: Optional[Signer] = None,
        hash_function: Optional[HashFunction] = None,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        share_signatures: Optional[bool] = None,
        epoch: int = 0,
    ):
        # The scheme field is normalized: a SignatureMesh *is* the mesh.
        config = resolve_config(
            config, scheme=SIGNATURE_MESH, share_signatures=share_signatures
        )
        self._init_common(dataset, template, config, counters, hash_function, signer, epoch)
        if engine is None and config.tolerance is not None:
            engine = config.make_engine(template.domain)
        functions = template.functions_for(dataset)
        self.functions_by_id = {f.index: f for f in functions}
        self.arrangement = build_arrangement(functions, template.domain, engine=engine)

        self.cells: List[MeshCell] = [
            MeshCell(
                identifier=subdomain.identifier,
                region=subdomain.region,
                witness=subdomain.witness,
                sorted_records=[self.records_by_id[f.index] for f in subdomain.sorted_functions],
            )
            for subdomain in self.arrangement.subdomains
        ]
        self.unique_signatures: List[PairSignature] = []
        if signer is not None:
            self._sign_all(signer)

    def _init_common(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        config: SystemConfig,
        counters: Optional[Counters],
        hash_function: Optional[HashFunction],
        signer: Optional[Signer],
        epoch: int = 0,
    ) -> None:
        """State shared by fresh construction and artifact reconstruction."""
        if len(dataset) == 0:
            raise ConstructionError("cannot build a signature mesh over an empty dataset")
        if epoch < 0:
            raise ConstructionError(f"epoch must be >= 0, got {epoch}")
        self.config = config
        self.dataset = dataset
        self.template = template
        self.counters = counters or Counters()
        self.hash_function = hash_function or HashFunction(self.counters)
        self.signer = signer
        #: ADS epoch, bound into every pair digest from epoch 1 on.
        self.epoch = int(epoch)
        self.share_signatures = config.share_signatures and template.dimension == 1
        self.records_by_id: Dict[int, Record] = {r.record_id: r for r in dataset}

    # ------------------------------------------------------------- signing
    def _chain_keys(self, cell: MeshCell) -> list[tuple]:
        """Identities of the chain entries: min token, record ids, max token."""
        return ["min"] + [record.record_id for record in cell.sorted_records] + ["max"]

    def _entry_for_key(self, cell: MeshCell, position: int) -> tuple[Optional[Record], Optional[str]]:
        """Record / token at a chain position of a cell."""
        if position == 0:
            return None, "min"
        if position == cell.chain_length - 1:
            return None, "max"
        return cell.sorted_records[position - 1], None

    def _sign_all(self, signer: Signer) -> None:
        if self.share_signatures:
            self._sign_shared(signer)
        else:
            self._sign_per_cell(signer)

    def _pair_digest(self, left_bytes: bytes, right_bytes: bytes, coverage: CoverageRegion) -> bytes:
        """The paper's pair digest ``H(H(r_j) | H(r_{j+1}) | B_i)``.

        From epoch 1 on the epoch token is combined in, so pair signatures
        from a superseded mesh cannot be replayed against a client holding
        the owner's current parameters.
        """
        return epoch_bound_combine(
            self.hash_function,
            self.epoch,
            self.hash_function.digest(left_bytes),
            self.hash_function.digest(right_bytes),
            coverage.to_bytes(),
        )

    def _sign_per_cell(self, signer: Signer) -> None:
        for cell in self.cells:
            coverage = CoverageRegion(kind="constraints", constraints=tuple(cell.region.constraints))
            for position in range(cell.chain_length - 1):
                left_record, left_token = self._entry_for_key(cell, position)
                right_record, right_token = self._entry_for_key(cell, position + 1)
                digest = self._pair_digest(
                    chain_entry_bytes(left_record, left_token),
                    chain_entry_bytes(right_record, right_token),
                    coverage,
                )
                signature = signer.sign(digest)
                self.counters.add_signature_created()
                pair = PairSignature(
                    left_record=left_record,
                    right_record=right_record,
                    coverage=coverage,
                    signature=signature,
                    left_token=left_token,
                    right_token=right_token,
                )
                cell.pair_signatures.append(pair)
                self.unique_signatures.append(pair)

    def _sign_shared(self, signer: Signer) -> None:
        """Shared-signature construction for univariate templates.

        For every adjacent pair, the maximal runs of consecutive cells where
        the pair stays adjacent are found; each run yields one signature
        covering the union interval of its cells.
        """
        # adjacency[cell][position] -> pair key
        chain_keys_per_cell = [self._chain_keys(cell) for cell in self.cells]
        open_runs: Dict[tuple, dict] = {}
        placements: List[List[Optional[PairSignature]]] = [
            [None] * (cell.chain_length - 1) for cell in self.cells
        ]
        run_records: List[dict] = []

        for cell_index, (cell, keys) in enumerate(zip(self.cells, chain_keys_per_cell)):
            current_pairs = {}
            for position in range(len(keys) - 1):
                current_pairs[(keys[position], keys[position + 1])] = position
            # Close runs whose pair is no longer adjacent in this cell.
            for pair_key in list(open_runs):
                if pair_key not in current_pairs:
                    run_records.append(open_runs.pop(pair_key))
            # Extend or open runs.
            for pair_key, position in current_pairs.items():
                if pair_key in open_runs:
                    run = open_runs[pair_key]
                    run["end_cell"] = cell_index
                    run["slots"].append((cell_index, position))
                else:
                    left_record, left_token = self._entry_for_key(cell, position)
                    right_record, right_token = self._entry_for_key(cell, position + 1)
                    open_runs[pair_key] = {
                        "start_cell": cell_index,
                        "end_cell": cell_index,
                        "slots": [(cell_index, position)],
                        "left_record": left_record,
                        "left_token": left_token,
                        "right_record": right_record,
                        "right_token": right_token,
                    }
        run_records.extend(open_runs.values())

        for run in run_records:
            start_cell = self.cells[run["start_cell"]]
            end_cell = self.cells[run["end_cell"]]
            coverage = CoverageRegion(
                kind="interval",
                low=start_cell.region.interval_low,
                high=end_cell.region.interval_high,
            )
            digest = self._pair_digest(
                chain_entry_bytes(run["left_record"], run["left_token"]),
                chain_entry_bytes(run["right_record"], run["right_token"]),
                coverage,
            )
            signature = signer.sign(digest)
            self.counters.add_signature_created()
            pair = PairSignature(
                left_record=run["left_record"],
                right_record=run["right_record"],
                coverage=coverage,
                signature=signature,
                left_token=run["left_token"],
                right_token=run["right_token"],
            )
            self.unique_signatures.append(pair)
            for cell_index, position in run["slots"]:
                placements[cell_index][position] = pair

        for cell, cell_placements in zip(self.cells, placements):
            if any(entry is None for entry in cell_placements):
                raise ConstructionError("internal error: a chain pair was left unsigned")
            cell.pair_signatures = list(cell_placements)

    # ------------------------------------------------------------ accessors
    @property
    def cell_count(self) -> int:
        """Number of subdomains (the paper's number of cells)."""
        return len(self.cells)

    @property
    def signature_count(self) -> int:
        """Number of distinct signatures created by the owner (Fig. 5a)."""
        return len(self.unique_signatures)

    def size_breakdown(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> Dict[str, int]:
        """Byte-size breakdown of the serialized mesh (Fig. 5c)."""
        dimension = self.template.dimension
        signature_bytes = 0
        for pair in self.unique_signatures:
            signature_bytes += size_model.signature_size
            signature_bytes += pair.coverage.size_bytes(dimension, size_model)
            signature_bytes += 2 * size_model.int_size
        cell_bytes = 0
        for cell in self.cells:
            cell_bytes += len(cell.region.constraints) * size_model.constraint_size(dimension)
            cell_bytes += cell.chain_length * size_model.pointer_size
        return {"signature_bytes": signature_bytes, "cell_bytes": cell_bytes}

    def size_bytes(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> int:
        """Total serialized size in bytes."""
        return sum(self.size_breakdown(size_model).values())

    # --------------------------------------------------------------- codecs
    def _encode_entry(self, record: Optional[Record], token: Optional[str]) -> int:
        if token == "min":
            return _MIN_SENTINEL
        if token == "max":
            return _MAX_SENTINEL
        return self._position_of[record.record_id]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize the mesh into flat arrays (artifact export).

        Cells become one permutation matrix over the dataset order plus
        flattened per-cell constraint arrays; the distinct pair signatures
        are stored once each (chain entries as dataset positions, tokens as
        negative sentinels) and every cell references them by index, so the
        shared-signature structure survives the round trip exactly.
        """
        dimension = self.template.dimension
        records = self.dataset.records
        self._position_of = {record.record_id: p for p, record in enumerate(records)}
        cells = self.cells
        chain = len(records) + 1  # pairs per cell (records + 2 tokens - 1)
        order = np.empty((len(cells), len(records)), dtype=np.int32)
        placements = np.empty((len(cells), chain), dtype=np.int64)
        signature_index = {id(pair): k for k, pair in enumerate(self.unique_signatures)}
        for row, cell in enumerate(cells):
            if len(cell.sorted_records) != len(records):
                raise ConstructionError(
                    "mesh cell does not cover the full record set; cannot serialize"
                )
            order[row] = [self._position_of[r.record_id] for r in cell.sorted_records]
            if len(cell.pair_signatures) != chain:
                raise ConstructionError("cannot serialize an unsigned signature mesh")
            placements[row] = [signature_index[id(p)] for p in cell.pair_signatures]
        arrays: Dict[str, np.ndarray] = {
            "cell_order": order,
            "cell_pairs": placements,
            "cell_witness": np.asarray(
                [cell.witness for cell in cells], dtype=np.float64
            ).reshape(len(cells), dimension),
            "cell_interval": np.asarray(
                [
                    (cell.region.interval_low, cell.region.interval_high)
                    for cell in cells
                ],
                dtype=np.float64,
            ),
        }
        arrays.update(
            _flatten_constraints("cell_constraint", [cell.region.constraints for cell in cells], dimension)
        )

        unique = self.unique_signatures
        sizes = {len(pair.signature) for pair in unique}
        if len(sizes) > 1:
            raise ConstructionError("mesh signatures disagree on size")
        signature_size = sizes.pop() if sizes else 0
        arrays["sig_bytes"] = np.frombuffer(
            b"".join(pair.signature for pair in unique), dtype=np.uint8
        ).reshape(len(unique), signature_size)
        arrays["sig_left"] = np.asarray(
            [self._encode_entry(p.left_record, p.left_token) for p in unique], dtype=np.int64
        )
        arrays["sig_right"] = np.asarray(
            [self._encode_entry(p.right_record, p.right_token) for p in unique], dtype=np.int64
        )
        arrays["sig_cov_kind"] = np.asarray(
            [0 if p.coverage.kind == "interval" else 1 for p in unique], dtype=np.uint8
        )
        arrays["sig_cov_interval"] = np.asarray(
            [(p.coverage.low, p.coverage.high) for p in unique], dtype=np.float64
        ).reshape(len(unique), 2)
        arrays.update(
            _flatten_constraints(
                "sig_cov_constraint", [p.coverage.constraints for p in unique], dimension
            )
        )
        del self._position_of
        return arrays

    @classmethod
    def from_arrays(
        cls,
        dataset: Dataset,
        template: UtilityTemplate,
        arrays: Dict[str, np.ndarray],
        *,
        config: SystemConfig,
        counters: Optional[Counters] = None,
        epoch: int = 0,
    ) -> "SignatureMesh":
        """Rebuild a fully functional mesh from :meth:`to_arrays` output.

        The arrangement is **not** recomputed (no geometry engine runs and
        nothing is hashed or signed): cells, regions, witnesses and the
        shared pair-signature graph come straight out of the arrays.  The
        private signing key never ships in an artifact, so the loaded mesh
        carries signatures but no signer.
        """
        self = cls.__new__(cls)
        self._init_common(dataset, template, config, counters, None, None, epoch)
        functions = template.functions_for(dataset)
        self.functions_by_id = {f.index: f for f in functions}
        #: The flat arrangement object only drives construction; a loaded
        #: mesh serves queries from its cells alone.
        self.arrangement = None

        records = dataset.records
        dimension = template.dimension
        univariate = dimension == 1
        domain = template.domain

        entries = _unflatten_constraints("sig_cov_constraint", arrays, dimension)
        sig_bytes = np.ascontiguousarray(arrays["sig_bytes"], dtype=np.uint8)
        signature_size = sig_bytes.shape[1]
        signature_blob = sig_bytes.tobytes()
        sig_left = np.asarray(arrays["sig_left"], dtype=np.int64).tolist()
        sig_right = np.asarray(arrays["sig_right"], dtype=np.int64).tolist()
        cov_kind = np.asarray(arrays["sig_cov_kind"], dtype=np.uint8).tolist()
        cov_interval = np.asarray(arrays["sig_cov_interval"], dtype=np.float64).tolist()

        def decode_entry(code: int) -> tuple[Optional[Record], Optional[str]]:
            if code == _MIN_SENTINEL:
                return None, "min"
            if code == _MAX_SENTINEL:
                return None, "max"
            return records[code], None

        unique: List[PairSignature] = []
        for position in range(len(sig_left)):
            left_record, left_token = decode_entry(sig_left[position])
            right_record, right_token = decode_entry(sig_right[position])
            if cov_kind[position] == 0:
                low, high = cov_interval[position]
                coverage = CoverageRegion(kind="interval", low=low, high=high)
            else:
                coverage = CoverageRegion(
                    kind="constraints", constraints=entries[position]
                )
            unique.append(
                PairSignature(
                    left_record=left_record,
                    right_record=right_record,
                    coverage=coverage,
                    signature=signature_blob[
                        position * signature_size : (position + 1) * signature_size
                    ],
                    left_token=left_token,
                    right_token=right_token,
                )
            )
        self.unique_signatures = unique

        cell_constraints = _unflatten_constraints("cell_constraint", arrays, dimension)
        order = np.asarray(arrays["cell_order"], dtype=np.int64).tolist()
        placements = np.asarray(arrays["cell_pairs"], dtype=np.int64).tolist()
        witnesses = np.asarray(arrays["cell_witness"], dtype=np.float64).tolist()
        intervals = np.asarray(arrays["cell_interval"], dtype=np.float64).tolist()
        cells: List[MeshCell] = []
        for identifier in range(len(order)):
            if univariate:
                low, high = intervals[identifier]
                region = Region(
                    domain=domain,
                    constraints=cell_constraints[identifier],
                    interval_low=low,
                    interval_high=high,
                )
            else:
                region = Region(domain=domain, constraints=cell_constraints[identifier])
            cells.append(
                MeshCell(
                    identifier=identifier,
                    region=region,
                    witness=tuple(witnesses[identifier]),
                    sorted_records=[records[p] for p in order[identifier]],
                    pair_signatures=[unique[k] for k in placements[identifier]],
                )
            )
        self.cells = cells
        return self

    # ------------------------------------------------------------ queries
    def locate_cell(self, weights: Sequence[float], counters: Optional[Counters] = None) -> MeshCell:
        """Linear scan for the cell containing ``weights`` (counted)."""
        counters = counters if counters is not None else self.counters
        for inspected, cell in enumerate(self.cells, start=1):
            if cell.region.contains(weights):
                counters.add_node(inspected)
                return cell
        counters.add_node(len(self.cells))
        raise QueryProcessingError(
            f"weight vector {tuple(weights)} lies outside the published domain"
        )

    def process_query(
        self, query: AnalyticQuery, counters: Optional[Counters] = None
    ) -> tuple[QueryResult, MeshVerificationObject]:
        """Answer a query and build its mesh verification object."""
        query.validate(self.template.dimension)
        counters = counters if counters is not None else self.counters
        cell = self.locate_cell(query.weights, counters)
        scores = [
            self.functions_by_id[record.record_id].evaluate(query.weights)
            for record in cell.sorted_records
        ]
        window = select_window(query, scores)
        records = [cell.sorted_records[position] for position in window.indices()]
        result = QueryResult(records=tuple(records))
        vo = self._build_vo(cell, window, counters)
        return result, vo

    def _build_vo(
        self, cell: MeshCell, window: ResultWindow, counters: Counters
    ) -> MeshVerificationObject:
        left = self._boundary_for_position(cell, window.left_boundary_position)
        right = self._boundary_for_position(cell, window.right_boundary_position)
        first_pair = left.leaf_index
        last_pair = right.leaf_index - 1
        pairs = tuple(cell.pair_signatures[first_pair : last_pair + 1])
        # The server walks the chain slice to collect records and signatures.
        counters.add_node(len(pairs) + 2)
        return MeshVerificationObject(left=left, right=right, pair_signatures=pairs)

    def _boundary_for_position(self, cell: MeshCell, position: int) -> BoundaryEntry:
        if position < 0:
            return BoundaryEntry(leaf_index=0, token="min")
        if position >= len(cell.sorted_records):
            return BoundaryEntry(leaf_index=cell.chain_length - 1, token="max")
        return BoundaryEntry(leaf_index=position + 1, item=cell.sorted_records[position])


# ---------------------------------------------------------------------------
# Constraint-list (de)flattening shared by the artifact codec
# ---------------------------------------------------------------------------
def _flatten_constraints(
    prefix: str, constraint_lists: Sequence[Sequence[Constraint]], dimension: int
) -> Dict[str, np.ndarray]:
    """Flatten variable-length constraint tuples into fixed dtype arrays."""
    counts = np.asarray([len(entry) for entry in constraint_lists], dtype=np.int64)
    flat = [constraint for entry in constraint_lists for constraint in entry]
    return {
        f"{prefix}_counts": counts,
        f"{prefix}_i": np.asarray([c.hyperplane.i for c in flat], dtype=np.int64),
        f"{prefix}_j": np.asarray([c.hyperplane.j for c in flat], dtype=np.int64),
        f"{prefix}_normal": np.asarray(
            [c.hyperplane.normal for c in flat], dtype=np.float64
        ).reshape(len(flat), dimension),
        f"{prefix}_offset": np.asarray([c.hyperplane.offset for c in flat], dtype=np.float64),
        f"{prefix}_side": np.asarray([c.side for c in flat], dtype=np.int8),
    }


def _unflatten_constraints(
    prefix: str, arrays: Dict[str, np.ndarray], dimension: int
) -> List[tuple[Constraint, ...]]:
    """Rebuild the per-entry constraint tuples written by ``_flatten_constraints``."""
    counts = np.asarray(arrays[f"{prefix}_counts"], dtype=np.int64).tolist()
    i_values = np.asarray(arrays[f"{prefix}_i"], dtype=np.int64).tolist()
    j_values = np.asarray(arrays[f"{prefix}_j"], dtype=np.int64).tolist()
    normals = np.asarray(arrays[f"{prefix}_normal"], dtype=np.float64).tolist()
    offsets = np.asarray(arrays[f"{prefix}_offset"], dtype=np.float64).tolist()
    sides = np.asarray(arrays[f"{prefix}_side"], dtype=np.int8).tolist()
    entries: List[tuple[Constraint, ...]] = []
    cursor = 0
    for count in counts:
        entry = tuple(
            Constraint(
                Hyperplane(
                    i=i_values[position],
                    j=j_values[position],
                    normal=tuple(normals[position]),
                    offset=offsets[position],
                ),
                ABOVE if sides[position] == ABOVE else BELOW,
            )
            for position in range(cursor, cursor + count)
        )
        entries.append(entry)
        cursor += count
    return entries
