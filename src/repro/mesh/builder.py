"""Signature-mesh construction and server-side query processing.

Construction (paper section 2.3.1):

1. compute the full arrangement of subdomains;
2. sort the records for every subdomain and bracket the list with the
   ``min`` / ``max`` tokens;
3. for every pair of consecutive chain entries compute the digest
   ``H(H(left) | H(right) | B_i)`` -- where ``B_i`` describes the covered
   subdomain(s) -- and sign it with the owner's private key;
4. a pair that remains consecutive across *consecutive* subdomains is signed
   once for the whole run (the shared-signature optimization that turns the
   chains into a mesh).  Sharing is applied for univariate templates, where
   "consecutive subdomains" is well defined (the cells are intervals in
   left-to-right order).

Query processing finds the subdomain containing the query's weight vector by
a linear scan over the cells (the baseline's fundamental cost), selects the
contiguous result window and ships one pair signature per consecutive pair
of the extended window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.errors import ConstructionError, QueryProcessingError
from repro.core.queries import AnalyticQuery
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.core.results import QueryResult
from repro.crypto.hashing import HashFunction
from repro.crypto.signer import Signer
from repro.geometry.arrangement import build_arrangement
from repro.geometry.engine import SplitEngine
from repro.merkle.fmh_tree import BoundaryEntry
from repro.mesh.structures import (
    CoverageRegion,
    MeshCell,
    MeshVerificationObject,
    PairSignature,
    chain_entry_bytes,
)
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel
from repro.queryproc.window import ResultWindow, select_window

__all__ = ["SignatureMesh"]


class SignatureMesh:
    """The signature-mesh authenticated data structure (baseline)."""

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        signer: Optional[Signer] = None,
        hash_function: Optional[HashFunction] = None,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        share_signatures: bool = True,
    ):
        if len(dataset) == 0:
            raise ConstructionError("cannot build a signature mesh over an empty dataset")
        self.dataset = dataset
        self.template = template
        self.counters = counters or Counters()
        self.hash_function = hash_function or HashFunction(self.counters)
        self.signer = signer
        self.share_signatures = share_signatures and template.dimension == 1

        self.records_by_id: Dict[int, Record] = {r.record_id: r for r in dataset}
        functions = template.functions_for(dataset)
        self.functions_by_id = {f.index: f for f in functions}
        self.arrangement = build_arrangement(functions, template.domain, engine=engine)

        self.cells: List[MeshCell] = [
            MeshCell(
                identifier=subdomain.identifier,
                region=subdomain.region,
                witness=subdomain.witness,
                sorted_records=[self.records_by_id[f.index] for f in subdomain.sorted_functions],
            )
            for subdomain in self.arrangement.subdomains
        ]
        self.unique_signatures: List[PairSignature] = []
        if signer is not None:
            self._sign_all(signer)

    # ------------------------------------------------------------- signing
    def _chain_keys(self, cell: MeshCell) -> list[tuple]:
        """Identities of the chain entries: min token, record ids, max token."""
        return ["min"] + [record.record_id for record in cell.sorted_records] + ["max"]

    def _entry_for_key(self, cell: MeshCell, position: int) -> tuple[Optional[Record], Optional[str]]:
        """Record / token at a chain position of a cell."""
        if position == 0:
            return None, "min"
        if position == cell.chain_length - 1:
            return None, "max"
        return cell.sorted_records[position - 1], None

    def _sign_all(self, signer: Signer) -> None:
        if self.share_signatures:
            self._sign_shared(signer)
        else:
            self._sign_per_cell(signer)

    def _pair_digest(self, left_bytes: bytes, right_bytes: bytes, coverage: CoverageRegion) -> bytes:
        """The paper's pair digest ``H(H(r_j) | H(r_{j+1}) | B_i)``."""
        return self.hash_function.combine(
            self.hash_function.digest(left_bytes),
            self.hash_function.digest(right_bytes),
            coverage.to_bytes(),
        )

    def _sign_per_cell(self, signer: Signer) -> None:
        for cell in self.cells:
            coverage = CoverageRegion(kind="constraints", constraints=tuple(cell.region.constraints))
            for position in range(cell.chain_length - 1):
                left_record, left_token = self._entry_for_key(cell, position)
                right_record, right_token = self._entry_for_key(cell, position + 1)
                digest = self._pair_digest(
                    chain_entry_bytes(left_record, left_token),
                    chain_entry_bytes(right_record, right_token),
                    coverage,
                )
                signature = signer.sign(digest)
                self.counters.add_signature_created()
                pair = PairSignature(
                    left_record=left_record,
                    right_record=right_record,
                    coverage=coverage,
                    signature=signature,
                    left_token=left_token,
                    right_token=right_token,
                )
                cell.pair_signatures.append(pair)
                self.unique_signatures.append(pair)

    def _sign_shared(self, signer: Signer) -> None:
        """Shared-signature construction for univariate templates.

        For every adjacent pair, the maximal runs of consecutive cells where
        the pair stays adjacent are found; each run yields one signature
        covering the union interval of its cells.
        """
        # adjacency[cell][position] -> pair key
        chain_keys_per_cell = [self._chain_keys(cell) for cell in self.cells]
        open_runs: Dict[tuple, dict] = {}
        placements: List[List[Optional[PairSignature]]] = [
            [None] * (cell.chain_length - 1) for cell in self.cells
        ]
        run_records: List[dict] = []

        for cell_index, (cell, keys) in enumerate(zip(self.cells, chain_keys_per_cell)):
            current_pairs = {}
            for position in range(len(keys) - 1):
                current_pairs[(keys[position], keys[position + 1])] = position
            # Close runs whose pair is no longer adjacent in this cell.
            for pair_key in list(open_runs):
                if pair_key not in current_pairs:
                    run_records.append(open_runs.pop(pair_key))
            # Extend or open runs.
            for pair_key, position in current_pairs.items():
                if pair_key in open_runs:
                    run = open_runs[pair_key]
                    run["end_cell"] = cell_index
                    run["slots"].append((cell_index, position))
                else:
                    left_record, left_token = self._entry_for_key(cell, position)
                    right_record, right_token = self._entry_for_key(cell, position + 1)
                    open_runs[pair_key] = {
                        "start_cell": cell_index,
                        "end_cell": cell_index,
                        "slots": [(cell_index, position)],
                        "left_record": left_record,
                        "left_token": left_token,
                        "right_record": right_record,
                        "right_token": right_token,
                    }
        run_records.extend(open_runs.values())

        for run in run_records:
            start_cell = self.cells[run["start_cell"]]
            end_cell = self.cells[run["end_cell"]]
            coverage = CoverageRegion(
                kind="interval",
                low=start_cell.region.interval_low,
                high=end_cell.region.interval_high,
            )
            digest = self._pair_digest(
                chain_entry_bytes(run["left_record"], run["left_token"]),
                chain_entry_bytes(run["right_record"], run["right_token"]),
                coverage,
            )
            signature = signer.sign(digest)
            self.counters.add_signature_created()
            pair = PairSignature(
                left_record=run["left_record"],
                right_record=run["right_record"],
                coverage=coverage,
                signature=signature,
                left_token=run["left_token"],
                right_token=run["right_token"],
            )
            self.unique_signatures.append(pair)
            for cell_index, position in run["slots"]:
                placements[cell_index][position] = pair

        for cell, cell_placements in zip(self.cells, placements):
            if any(entry is None for entry in cell_placements):
                raise ConstructionError("internal error: a chain pair was left unsigned")
            cell.pair_signatures = list(cell_placements)

    # ------------------------------------------------------------ accessors
    @property
    def cell_count(self) -> int:
        """Number of subdomains (the paper's number of cells)."""
        return len(self.cells)

    @property
    def signature_count(self) -> int:
        """Number of distinct signatures created by the owner (Fig. 5a)."""
        return len(self.unique_signatures)

    def size_breakdown(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> Dict[str, int]:
        """Byte-size breakdown of the serialized mesh (Fig. 5c)."""
        dimension = self.template.dimension
        signature_bytes = 0
        for pair in self.unique_signatures:
            signature_bytes += size_model.signature_size
            signature_bytes += pair.coverage.size_bytes(dimension, size_model)
            signature_bytes += 2 * size_model.int_size
        cell_bytes = 0
        for cell in self.cells:
            cell_bytes += len(cell.region.constraints) * size_model.constraint_size(dimension)
            cell_bytes += cell.chain_length * size_model.pointer_size
        return {"signature_bytes": signature_bytes, "cell_bytes": cell_bytes}

    def size_bytes(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> int:
        """Total serialized size in bytes."""
        return sum(self.size_breakdown(size_model).values())

    # ------------------------------------------------------------ queries
    def locate_cell(self, weights: Sequence[float], counters: Optional[Counters] = None) -> MeshCell:
        """Linear scan for the cell containing ``weights`` (counted)."""
        counters = counters if counters is not None else self.counters
        for inspected, cell in enumerate(self.cells, start=1):
            if cell.region.contains(weights):
                counters.add_node(inspected)
                return cell
        counters.add_node(len(self.cells))
        raise QueryProcessingError(
            f"weight vector {tuple(weights)} lies outside the published domain"
        )

    def process_query(
        self, query: AnalyticQuery, counters: Optional[Counters] = None
    ) -> tuple[QueryResult, MeshVerificationObject]:
        """Answer a query and build its mesh verification object."""
        query.validate(self.template.dimension)
        counters = counters if counters is not None else self.counters
        cell = self.locate_cell(query.weights, counters)
        scores = [
            self.functions_by_id[record.record_id].evaluate(query.weights)
            for record in cell.sorted_records
        ]
        window = select_window(query, scores)
        records = [cell.sorted_records[position] for position in window.indices()]
        result = QueryResult(records=tuple(records))
        vo = self._build_vo(cell, window, counters)
        return result, vo

    def _build_vo(
        self, cell: MeshCell, window: ResultWindow, counters: Counters
    ) -> MeshVerificationObject:
        left = self._boundary_for_position(cell, window.left_boundary_position)
        right = self._boundary_for_position(cell, window.right_boundary_position)
        first_pair = left.leaf_index
        last_pair = right.leaf_index - 1
        pairs = tuple(cell.pair_signatures[first_pair : last_pair + 1])
        # The server walks the chain slice to collect records and signatures.
        counters.add_node(len(pairs) + 2)
        return MeshVerificationObject(left=left, right=right, pair_signatures=pairs)

    def _boundary_for_position(self, cell: MeshCell, position: int) -> BoundaryEntry:
        if position < 0:
            return BoundaryEntry(leaf_index=0, token="min")
        if position >= len(cell.sorted_records):
            return BoundaryEntry(leaf_index=cell.chain_length - 1, token="max")
        return BoundaryEntry(leaf_index=position + 1, item=cell.sorted_records[position])
