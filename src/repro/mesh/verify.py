"""Client-side verification of signature-mesh query results.

The mesh client receives the result window, its two boundary entries and one
:class:`~repro.mesh.structures.PairSignature` per consecutive pair of the
extended window.  Verification checks, for every pair:

* the pair digest recomputed from the *received* records matches the
  signature created by the data owner (soundness: every record is genuine,
  completeness: no record was squeezed out between two consecutive ones);
* the signature's coverage region contains the query's weight vector (the
  pair is consecutive *in the subdomain that is actually relevant*).

It then re-executes the query over the authenticated window exactly like
the IFMH client does.  The dominating cost is the ``O(|q|)`` signature
verifications -- the effect the paper's Fig. 7d measures.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.queries import AnalyticQuery
from repro.core.recheck import recheck_query
from repro.core.records import UtilityTemplate
from repro.core.results import QueryResult, VerificationReport
from repro.crypto.hashing import HashFunction, epoch_bound_combine
from repro.crypto.signer import Verifier
from repro.mesh.structures import MeshVerificationObject
from repro.metrics.counters import Counters

__all__ = ["verify_mesh_result"]


def verify_mesh_result(
    query: AnalyticQuery,
    result: QueryResult,
    vo: MeshVerificationObject,
    *,
    template: UtilityTemplate,
    attribute_names: Sequence[str],
    verifier: Verifier,
    counters: Optional[Counters] = None,
    epoch: int = 0,
) -> VerificationReport:
    """Verify a signature-mesh query result.

    ``epoch`` (from the owner's public parameters) is bound into every
    recomputed pair digest from epoch 1 on, rejecting pair signatures
    served from a superseded mesh.
    """
    report = VerificationReport()
    counters = counters if counters is not None else Counters()
    report.counters = counters
    hash_function = HashFunction(counters)

    query.validate(template.dimension)
    weights = query.weights
    report.record(
        "weights-in-domain",
        template.domain.contains(weights),
        f"query weights {weights} lie outside the published domain",
    )

    # The extended chain the signatures must cover:
    # left boundary, every result record, right boundary.
    chain_bytes: list[bytes] = [vo.left.leaf_bytes()]
    chain_bytes.extend(record.to_bytes() for record in result.records)
    chain_bytes.append(vo.right.leaf_bytes())

    report.record(
        "pair-count",
        len(vo.pair_signatures) == len(chain_bytes) - 1,
        f"expected {len(chain_bytes) - 1} pair signatures, got {len(vo.pair_signatures)}",
    )

    hash_time = 0.0
    signature_time = 0.0
    if report.checks.get("pair-count", False):
        pairs_ok = True
        coverage_ok = True
        for position, pair in enumerate(vo.pair_signatures):
            started = time.perf_counter()
            digest = epoch_bound_combine(
                hash_function,
                epoch,
                hash_function.digest(chain_bytes[position]),
                hash_function.digest(chain_bytes[position + 1]),
                pair.coverage.to_bytes(),
            )
            hash_time += time.perf_counter() - started

            started = time.perf_counter()
            if not verifier.verify(digest, pair.signature):
                pairs_ok = False
            counters.add_signature_verified()
            signature_time += time.perf_counter() - started

            if not pair.coverage.contains(weights, template.domain):
                coverage_ok = False
        report.record(
            "pair-signatures",
            pairs_ok,
            "a consecutive-pair signature does not match the received records",
        )
        report.record(
            "pair-coverage",
            coverage_ok,
            "a pair signature does not cover the query's weight vector",
        )
    report.timings["hashing"] = hash_time
    report.timings["signature"] = signature_time

    started = time.perf_counter()
    recheck_query(query, result, vo.left, vo.right, template, attribute_names, report)
    report.timings["query-recheck"] = time.perf_counter() - started
    return report
