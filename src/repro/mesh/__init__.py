"""The signature-mesh baseline (Yang, Cai & Hu, ICDE 2016).

Re-implementation of the prior art the paper compares against (its section
2.3.1): the weight domain is partitioned into the full arrangement of
subdomains, the functions are sorted per subdomain with ``min`` / ``max``
boundary tokens, and every pair of records that is consecutive in a
subdomain's sorted list is signed together with the subdomain's boundary
description.  A pair that stays consecutive across consecutive subdomains
shares one signature, which turns the per-subdomain chains into a *mesh*.

Query processing finds the subdomain by a **linear scan** over the cells
(this is the cost the IFMH-tree attacks), returns the contiguous result
window plus its two neighbours and ships one signature per consecutive pair
of the window -- so the client verifies ``O(|q|)`` signatures instead of
one.
"""

from repro.mesh.structures import CoverageRegion, PairSignature, MeshCell, MeshVerificationObject
from repro.mesh.builder import SignatureMesh
from repro.mesh.verify import verify_mesh_result

__all__ = [
    "CoverageRegion",
    "PairSignature",
    "MeshCell",
    "MeshVerificationObject",
    "SignatureMesh",
    "verify_mesh_result",
]
