"""Data structures of the signature-mesh baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.records import Record
from repro.crypto.serialization import (
    encode_float,
    encode_sequence,
    encode_str,
)
from repro.geometry.domain import Constraint, Domain, Region, region_from_constraints
from repro.merkle.fmh_tree import MAX_TOKEN, MIN_TOKEN, BoundaryEntry
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = ["CoverageRegion", "PairSignature", "MeshCell", "MeshVerificationObject", "chain_entry_bytes"]


def chain_entry_bytes(entry: Optional[Record], token: Optional[str] = None) -> bytes:
    """Canonical bytes of a chain entry: a record or a ``min``/``max`` token."""
    if token == "min":
        return MIN_TOKEN
    if token == "max":
        return MAX_TOKEN
    if entry is None:
        raise ValueError("a chain entry is either a record or a token")
    return entry.to_bytes()


@dataclass(frozen=True)
class CoverageRegion:
    """The part of the weight domain a pair signature covers.

    With the shared-signature optimization a signature may cover a *run* of
    consecutive univariate subdomains, described by the interval
    ``[low, high]``; without sharing (or for multivariate templates) it
    covers a single cell described by its constraint set.
    """

    kind: str  # "interval" or "constraints"
    low: float = 0.0
    high: float = 0.0
    constraints: tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("interval", "constraints"):
            raise ValueError(f"unknown coverage region kind {self.kind!r}")

    def contains(self, weights: Sequence[float], domain: Domain, tolerance: float = 1e-9) -> bool:
        """True when the weight vector lies inside the covered region."""
        if self.kind == "interval":
            if len(weights) != 1:
                return False
            return self.low - tolerance <= float(weights[0]) <= self.high + tolerance
        region = region_from_constraints(domain, self.constraints)
        return region.contains(weights, tolerance)

    def to_bytes(self) -> bytes:
        """Canonical encoding bound into the pair digest (the paper's B_i)."""
        if self.kind == "interval":
            return encode_sequence(
                [encode_str("coverage-interval"), encode_float(self.low), encode_float(self.high)]
            )
        return encode_sequence(
            [encode_str("coverage-constraints")] + [c.to_bytes() for c in self.constraints]
        )

    def size_bytes(self, dimension: int, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> int:
        if self.kind == "interval":
            return 2 * size_model.float_size
        return len(self.constraints) * size_model.constraint_size(dimension)


@dataclass(frozen=True)
class PairSignature:
    """One signature of the mesh: a consecutive pair plus its coverage.

    ``left_token`` / ``right_token`` are set (to ``"min"`` / ``"max"``) when
    the corresponding side of the pair is a boundary token rather than a
    record.
    """

    left_record: Optional[Record]
    right_record: Optional[Record]
    coverage: CoverageRegion
    signature: bytes
    left_token: Optional[str] = None
    right_token: Optional[str] = None

    def left_bytes(self) -> bytes:
        return chain_entry_bytes(self.left_record, self.left_token)

    def right_bytes(self) -> bytes:
        return chain_entry_bytes(self.right_record, self.right_token)

    def pair_key(self) -> tuple:
        """Hashable identity of the pair (used for sharing and lookups)."""
        left = self.left_token or self.left_record.record_id
        right = self.right_token or self.right_record.record_id
        return (left, right)


@dataclass
class MeshCell:
    """One subdomain of the mesh with its sorted records and pair signatures."""

    identifier: int
    region: Region
    witness: tuple[float, ...]
    sorted_records: list[Record] = field(default_factory=list)
    #: Pair signatures in list order; entry ``p`` covers the pair between
    #: chain positions ``p`` and ``p + 1`` where position 0 is the ``min``
    #: token and the last position is the ``max`` token.
    pair_signatures: list[PairSignature] = field(default_factory=list)

    @property
    def chain_length(self) -> int:
        """Number of entries in the signed chain (records + 2 tokens)."""
        return len(self.sorted_records) + 2


@dataclass(frozen=True)
class MeshVerificationObject:
    """Verification object returned by the mesh server.

    ``pair_signatures`` covers, in order, every consecutive pair of the
    extended window ``left boundary, result..., right boundary``.
    """

    left: BoundaryEntry
    right: BoundaryEntry
    pair_signatures: tuple[PairSignature, ...]

    @property
    def signature_count(self) -> int:
        """Signatures the client must verify -- O(|q|) for the mesh."""
        return len(self.pair_signatures)

    def size_bytes(self, dimension: int, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> int:
        """Serialized VO size in bytes (Fig. 8)."""
        total = 0
        for boundary in (self.left, self.right):
            total += size_model.int_size
            if not boundary.is_token:
                total += size_model.record_size(dimension)
        for pair in self.pair_signatures:
            total += size_model.signature_size
            total += pair.coverage.size_bytes(dimension, size_model)
            total += 2 * size_model.int_size  # pair identity
        return total
