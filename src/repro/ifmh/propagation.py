"""Level-batched step-3 hash propagation for bulk-built trees.

The paper's step 3 walks the I-tree bottom-up and hashes each intersection
node from its children -- a per-node Python stack walk that becomes the
assembly tail once steps 1-2 are vectorized.  For bulk-built trees the
balanced shape is fully determined by the kept-breakpoint plan, so the same
reverse-pre-order array propagation the update path uses
(:func:`repro.ifmh.updates.balanced_preorder`) applies to fresh builds:
leaf digests are scattered from the batched forest's arena, then each
bottom-up frontier of intersection nodes is hashed in one
:meth:`~repro.crypto.hashing.HashFunction.digest_batch` pass.

Every digest and both hash counters are bit-identical to the stack walk:
the preimage framing replicates ``HashFunction.combine`` byte for byte and
``digest_batch`` counts one logical and one physical operation per node,
exactly like the per-node ``combine`` calls it replaces.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConstructionError
from repro.crypto.hashing import DIGEST_SIZE
from repro.ifmh.updates import _encode_hyperplanes, balanced_preorder

__all__ = ["propagate_batched"]

#: ``combine``'s per-digest framing: the 8-byte big-endian length prefix.
_PREFIX = np.frombuffer(DIGEST_SIZE.to_bytes(8, "big"), dtype=np.uint8)


def propagate_batched(tree) -> bool:
    """Run step 3 level-wise over ``tree`` if its build supports it.

    Returns ``True`` when the propagation ran (every intersection node's
    ``hash_value`` is set); ``False`` when the tree was not bulk-built with
    a batched forest, in which case the caller falls back to the paper's
    stack walk.
    """
    bulk_state = tree.itree.bulk_state
    forest = tree._batched_forest
    if bulk_state is None or forest is None:
        return False
    count = int(bulk_state.hyper_normal.shape[0])
    if count == 0:
        # Single-subdomain tree: no intersection nodes, nothing to hash.
        return False
    arena, roots, _row_ids = forest

    skeleton = balanced_preorder(bulk_state.hyper_normal)
    nodes = skeleton.internal_node
    above = skeleton.above_node
    below = skeleton.below_node

    # Leaf digests: ``roots`` is in leaves() order (pre-order-leaf order),
    # which is exactly ``skeleton.leaf_node``'s emission order -- unlike the
    # update path, whose per-interval roots need the ``leaf_interval`` remap.
    total = int(skeleton.flags.shape[0])
    digest_matrix = np.empty((total, DIGEST_SIZE), dtype=np.uint8)
    digest_matrix[skeleton.leaf_node] = arena.digests[np.asarray(roots, dtype=np.int64)]

    plane_of = None
    lengths = None
    if tree.bind_intersections:
        hyper_bytes = _encode_hyperplanes(
            bulk_state.hyper_i,
            bulk_state.hyper_j,
            bulk_state.hyper_normal,
            bulk_state.hyper_offset,
        )
        plane_of = [hyper_bytes[mid] for mid in skeleton.internal_mid.tolist()]
        lengths = np.fromiter((len(p) for p in plane_of), dtype=np.int64, count=count)

    hash_function = tree.hash_function
    done = skeleton.flags.astype(bool)
    pending = np.arange(count, dtype=np.int64)
    while pending.shape[0]:
        ready_mask = done[above[pending]] & done[below[pending]]
        ready = pending[ready_mask]
        if ready.shape[0] == 0:  # pragma: no cover - corrupt skeleton guard
            raise ConstructionError(
                "hash propagation stalled: intersection nodes form a cycle"
            )
        pending = pending[~ready_mask]
        if plane_of is None:
            _hash_frontier(digest_matrix, nodes, above, below, ready, None, 0, hash_function)
        else:
            for length in np.unique(lengths[ready]).tolist():
                members = ready[lengths[ready] == length]
                planes = b"".join(plane_of[i] for i in members.tolist())
                _hash_frontier(
                    digest_matrix, nodes, above, below, members, planes, length, hash_function
                )
        done[nodes[ready]] = True

    # Attach: iter_subtree pre-order visits intersection nodes in exactly
    # ``skeleton.internal_node`` emission order.
    internal_blob = digest_matrix[nodes].tobytes()
    cursor = 0
    for node in tree.itree.root.iter_subtree():
        if not node.is_subdomain:
            node.hash_value = internal_blob[cursor * DIGEST_SIZE : (cursor + 1) * DIGEST_SIZE]
            cursor += 1
    return True


def _hash_frontier(
    digest_matrix: np.ndarray,
    nodes: np.ndarray,
    above: np.ndarray,
    below: np.ndarray,
    members: np.ndarray,
    planes: bytes | None,
    plane_length: int,
    hash_function,
) -> None:
    """Hash one frontier group sharing a plane byte-length in one bulk pass.

    The preimage replicates ``HashFunction.combine``'s framing: an 8-byte
    big-endian length prefix before every part, parts being ``(plane,
    above, below)`` when binding intersections and ``(above, below)`` for
    the paper's exact rule (``plane_length == 0`` with ``planes=None``).
    """
    rows = int(members.shape[0])
    head = 8 + plane_length if planes is not None else 0
    matrix = np.empty((rows, head + 80), dtype=np.uint8)
    if planes is not None:
        matrix[:, 0:8] = np.frombuffer(plane_length.to_bytes(8, "big"), dtype=np.uint8)
        matrix[:, 8:head] = np.frombuffer(planes, dtype=np.uint8).reshape(rows, plane_length)
    matrix[:, head : head + 8] = _PREFIX
    matrix[:, head + 8 : head + 40] = digest_matrix[above[members]]
    matrix[:, head + 40 : head + 48] = _PREFIX
    matrix[:, head + 48 : head + 80] = digest_matrix[below[members]]
    digests = hash_function.digest_batch(matrix)
    digest_matrix[nodes[members]] = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
        rows, DIGEST_SIZE
    )
