"""Incremental IFMH updates: changed-path rebuilds against the persisted arena.

A full IFMH construction at n = 1000 costs tens of seconds; changing one
record used to mean paying all of it again.  This module rebuilds only what
a single-record insert or delete invalidates, while staying
**bit-identical** to a from-scratch build of the final dataset (the
differential property harness in
``tests/properties/test_property_updates.py`` proves it):

1. **Breakpoint plan** -- the pairwise crossing candidates of the final
   function set are recomputed in one vectorized pass (cheap), but the
   order-dependent tolerance *replay* that decides which near-coincident
   candidates survive is only re-run inside "dirty" tolerance clusters --
   maximal runs of candidates closer than the engine tolerance that gained
   or lost a member.  Clean clusters keep their old verdicts verbatim;
   dirty clusters are replayed exactly, including rare tolerance-chain
   cascades that flip a pre-existing breakpoint's verdict (the affected
   subdomains then read as changed intervals and are re-sorted).
2. **Permutation splice** -- subdomains whose interval (and therefore
   witness) is unchanged keep their sorted row: the inserted record is
   spliced in at its rank, or the deleted record's column is cut out.  The
   rank is computed with exactly the float comparisons a fresh stable
   argsort performs, but only functions whose score can actually cross the
   touched record's inside the domain pay a per-witness pass -- for the
   rest one sign test at the witness range's endpoints decides every
   subdomain at once.  Only subdomains whose interval changed (the split
   or merged pieces around touched breakpoints) are re-sorted, and the new
   permutation stays **row-lazy**
   (:class:`repro.itree.permutation.LazySplicedPermutation`): rows
   materialize when a query lands on them, the dense matrix only when an
   artifact is published.
3. **Changed-path forest hashing** -- the FMH forest is advanced through
   :class:`repro.merkle.arena.DeltaForestHasher`.  The new leaf matrix is
   never materialized: the update derives its change points (tree ``t`` vs
   ``t - 1``) algebraically from the previous epoch's cached change points
   plus the splice descriptors, every node pair already present in the
   persisted arena is reused by index, and only the genuinely new nodes
   are hashed (bulk passes) and *appended* -- old arena rows stay valid,
   which is exactly what delta artifacts ship.
4. **Skeleton + step-3 propagation** -- the balanced I-tree over the new
   breakpoint plan is emitted directly in pre-order array form (no
   geometry engine, no region objects), intersection hashes are recomputed
   in one reverse-pre-order pass (hyperplane encodings cached across
   epochs), and the node-object reconstruction itself is **deferred**: the
   updated tree serves its root hash and signature immediately and runs
   the proven :meth:`repro.ifmh.ifmh_tree.IFMHTree.from_arrays` cold-start
   path on first query touch, exactly like an artifact load.

Batches apply as a sequence of single-record steps (each step is
bit-identical to a fresh build of its intermediate dataset, hence the
final state matches a fresh build of the final dataset); signing happens
once, at the batch's new epoch.

The incremental path covers the paper-scale configuration: univariate
templates under the interval engine, bulk-built (balanced) trees, batched
hashing.  Everything else -- d >= 2 under the LP engine, the incremental
ablation builders, ``batch_hashing=False`` -- falls back to a full rebuild
behind the same :meth:`repro.core.owner.DataOwner.apply_updates` API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConstructionError
from repro.core.records import Dataset, Record
from repro.crypto.hashing import DIGEST_SIZE, sha256
from repro.geometry.arrangement import univariate_breakpoints
from repro.geometry.engine import IntervalEngine
from repro.geometry.functions import COEFFICIENT_TOLERANCE, Hyperplane
from repro.itree.itree import BulkPlanState
from repro.itree.permutation import LazySplicedPermutation
from repro.merkle.arena import DeltaForestHasher, MerkleArena
from repro.merkle.fmh_tree import MAX_TOKEN, MIN_TOKEN

__all__ = ["IncrementalState", "apply_incremental_update", "balanced_preorder"]

#: Rows scored per vectorized chunk of the re-sort pass.
_RANK_CHUNK = 8192

#: Lazy-permutation chains longer than this are densified before stacking
#: another splice on top (bounds per-row materialization cost and keeps
#: long-lived owners from accumulating unbounded splice descriptors).
_MAX_PERMUTATION_DEPTH = 8

#: Error margin factor for the endpoint sign test that exempts a function
#: from the per-witness rank pass (conservative multiple of the worst-case
#: float rounding of a score evaluation).
_SIGN_MARGIN = 32.0 * np.finfo(np.float64).eps


@dataclass
class IncrementalState:
    """Everything the *next* incremental update needs, no node walks.

    Carried on updated trees and derived once (cheaply) from fresh builds
    or artifact loads.  ``permutation`` rows are in left-to-right interval
    order; ``change_*`` are the permutation's change points (row ``t`` vs
    ``t - 1``); ``interval_roots`` maps each interval to its FMH root's
    arena index; ``hyper_bytes`` caches the canonical encodings of the kept
    breakpoints' hyperplanes (aligned with ``plan``), filled on first use.
    """

    plan: BulkPlanState
    permutation: object
    change_rows: np.ndarray
    change_cols: np.ndarray
    change_vals: np.ndarray
    arena: MerkleArena
    interval_roots: np.ndarray
    leaf_map: Dict[int, int]
    min_index: int
    max_index: int
    hyper_bytes: Optional[List[bytes]] = None
    #: Sorted pair-lookup tables of ``arena`` (carried across updates so
    #: the delta hasher skips re-sorting a million keys each time).
    forest_tables: Optional[tuple] = None


# ---------------------------------------------------------------------------
# Balanced-tree pre-order emission (mirrors ITree._bulk_build exactly)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _Skeleton:
    """Pre-order layout of the balanced I-tree over ``m`` sorted breakpoints.

    ``flags`` has one entry per node (1 = subdomain leaf); ``internal_mid``
    maps each internal node (pre-order-internal order) to its sorted
    breakpoint index, ``internal_node``/``above_node``/``below_node`` to its
    own and its children's pre-order node ids; ``leaf_node``/``leaf_interval``
    map each leaf (pre-order-leaf order, i.e. subdomain-id order) to its
    node id and left-to-right interval index.
    """

    flags: np.ndarray
    internal_mid: np.ndarray
    internal_node: np.ndarray
    above_node: np.ndarray
    below_node: np.ndarray
    leaf_node: np.ndarray
    leaf_interval: np.ndarray


def balanced_preorder(slopes: np.ndarray) -> _Skeleton:
    """Emit the bulk builder's balanced tree shape without building nodes.

    Replicates :meth:`repro.itree.itree.ITree._bulk_build` node for node:
    each ``(low, high)`` breakpoint range contributes its median as an
    intersection node; for a positive slope the *above* child covers the
    right (larger-breakpoint) half, for a negative slope the left half.
    The emission order is ``iter_subtree`` pre-order: node, above subtree,
    below subtree.
    """
    count = int(slopes.shape[0])
    total = 2 * count + 1
    flags = bytearray(total)
    internal_mid: List[int] = []
    internal_node: List[int] = []
    above_node = [0] * count
    below_node = [0] * count
    leaf_node: List[int] = []
    leaf_interval: List[int] = []
    slope_list = slopes.tolist()
    # (low, high, parent_internal_cursor, is_above)
    stack: List[Tuple[int, int, int, bool]] = [(0, count, -1, False)]
    pop = stack.pop
    push = stack.append
    node_id = 0
    while stack:
        low, high, parent, is_above = pop()
        if parent >= 0:
            if is_above:
                above_node[parent] = node_id
            else:
                below_node[parent] = node_id
        if low >= high:
            flags[node_id] = 1
            leaf_node.append(node_id)
            leaf_interval.append(low)
            node_id += 1
            continue
        mid = (low + high) // 2
        internal_mid.append(mid)
        internal_node.append(node_id)
        cursor = len(internal_mid) - 1
        # Pre-order: the above subtree is emitted first, so it is pushed last.
        if slope_list[mid] > 0:
            push((low, mid, cursor, False))
            push((mid + 1, high, cursor, True))
        else:
            push((mid + 1, high, cursor, False))
            push((low, mid, cursor, True))
        node_id += 1
    return _Skeleton(
        flags=np.frombuffer(bytes(flags), dtype=np.uint8),
        internal_mid=np.asarray(internal_mid, dtype=np.int64),
        internal_node=np.asarray(internal_node, dtype=np.int64),
        above_node=np.asarray(above_node, dtype=np.int64),
        below_node=np.asarray(below_node, dtype=np.int64),
        leaf_node=np.asarray(leaf_node, dtype=np.int64),
        leaf_interval=np.asarray(leaf_interval, dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# Vectorized hyperplane encoding
# ---------------------------------------------------------------------------
#: ``encode_str("hyperplane")``: tag, 8-byte length, payload (19 bytes).
_HYPER_STR = b"\x03" + (10).to_bytes(8, "big") + b"hyperplane"


def _encode_hyperplanes(
    hyper_i: np.ndarray,
    hyper_j: np.ndarray,
    hyper_normal: np.ndarray,
    hyper_offset: np.ndarray,
) -> List[bytes]:
    """``Hyperplane.to_bytes()`` for every column, byte-identical, in bulk.

    The canonical encoding's only variable-width parts are the two record
    ids (``encode_int`` uses the minimal signed big-endian width), so the
    planes are grouped by id widths and each group is assembled as one
    fixed-width byte matrix.  Negative or enormous ids (never produced by
    ``Dataset.from_rows``, but legal) fall back to the object encoder.
    """
    count = int(hyper_i.shape[0])
    result: List[bytes] = [b""] * count
    plain = (hyper_i >= 0) & (hyper_j >= 0) & (hyper_i < 2**55) & (hyper_j < 2**55)
    for index in np.nonzero(~plain)[0].tolist():
        result[index] = Hyperplane(
            i=int(hyper_i[index]),
            j=int(hyper_j[index]),
            normal=(float(hyper_normal[index]),),
            offset=float(hyper_offset[index]),
        ).to_bytes()
    rows = np.nonzero(plain)[0]
    if rows.shape[0] == 0:
        return result

    def int_width(values: np.ndarray) -> np.ndarray:
        # max(1, (bit_length + 8) // 8) for non-negative ints: one byte up
        # to 127, two up to 32767, ...
        width = np.ones(values.shape[0], dtype=np.int64)
        for extra in range(1, 8):
            width += values >= np.int64(1) << np.int64(8 * extra - 1)
        return width

    width_i = int_width(hyper_i[rows])
    width_j = int_width(hyper_j[rows])
    normal_be = (
        np.ascontiguousarray(hyper_normal[rows], dtype=">f8").view(np.uint8).reshape(-1, 8)
    )
    offset_be = (
        np.ascontiguousarray(hyper_offset[rows], dtype=">f8").view(np.uint8).reshape(-1, 8)
    )
    group_key = width_i * 16 + width_j
    for key in np.unique(group_key).tolist():
        members = np.nonzero(group_key == key)[0]
        li, lj = key // 16, key % 16
        payload = 19 + (9 + li) + (9 + lj) + 17 + 17
        total = 9 + payload
        matrix = np.empty((members.shape[0], total), dtype=np.uint8)
        matrix[:, 0] = 6  # sequence tag
        matrix[:, 1:9] = np.frombuffer(payload.to_bytes(8, "big"), dtype=np.uint8)
        matrix[:, 9:28] = np.frombuffer(_HYPER_STR, dtype=np.uint8)
        cursor = 28
        for length, values in ((li, hyper_i[rows[members]]), (lj, hyper_j[rows[members]])):
            matrix[:, cursor] = 1  # int tag
            matrix[:, cursor + 1 : cursor + 9] = np.frombuffer(
                length.to_bytes(8, "big"), dtype=np.uint8
            )
            for byte in range(length):
                shift = np.int64(8 * (length - 1 - byte))
                matrix[:, cursor + 9 + byte] = (values >> shift) & np.int64(0xFF)
            cursor += 9 + length
        matrix[:, cursor] = 5  # float-vector tag
        matrix[:, cursor + 1 : cursor + 9] = np.frombuffer(
            (8).to_bytes(8, "big"), dtype=np.uint8
        )
        matrix[:, cursor + 9 : cursor + 17] = normal_be[members]
        cursor += 17
        matrix[:, cursor] = 2  # float tag
        matrix[:, cursor + 1 : cursor + 9] = np.frombuffer(
            (8).to_bytes(8, "big"), dtype=np.uint8
        )
        matrix[:, cursor + 9 : cursor + 17] = offset_be[members]
        blob = matrix.tobytes()
        for offset_index, member in enumerate(members.tolist()):
            result[int(rows[member])] = blob[
                offset_index * total : (offset_index + 1) * total
            ]
    return result


# ---------------------------------------------------------------------------
# Differential breakpoint plan
# ---------------------------------------------------------------------------
def _plan_update(
    old_state: BulkPlanState,
    final_functions: Sequence,
    final_positions: Dict[int, int],
    engine: IntervalEngine,
    domain_low: float,
    domain_high: float,
    inserted_id: Optional[int],
    deleted_id: Optional[int],
    deleted_function,
) -> Optional[BulkPlanState]:
    """Kept-breakpoint plan of the final function set, resolved differentially.

    Clean tolerance clusters keep their old verdicts verbatim; dirty ones
    (those that gained or lost a member) are replayed exactly, including
    any cascade that flips a pre-existing candidate's verdict -- the
    affected subdomains then simply read as changed intervals downstream.
    """
    tolerance = engine.tolerance
    slope_tolerance = max(tolerance, COEFFICIENT_TOLERANCE)
    values, left, right, normals, offsets = univariate_breakpoints(
        final_functions, slope_tolerance
    )
    # Same exact float comparisons as ITree._bulk_plan's domain filter.
    inside = (values > domain_low + tolerance) & (values < domain_high - tolerance)
    values, left, right, normals, offsets = (
        values[inside],
        left[inside],
        right[inside],
        normals[inside],
        offsets[inside],
    )
    final_ids = np.fromiter(
        (f.index for f in final_functions), dtype=np.int64, count=len(final_functions)
    )
    cand_i = final_ids[left]
    cand_j = final_ids[right]
    is_new_pair = (
        (cand_i == inserted_id) | (cand_j == inserted_id)
        if inserted_id is not None
        else np.zeros(values.shape[0], dtype=bool)
    )

    # Old kept verdicts, matched by pair identity.  Surviving pairs keep
    # their (i, j) tuple: relative dataset order is preserved by deletes
    # and by appending inserts, so the pair of final positions identifies
    # the pair in both the old and the new candidate enumeration.
    span = np.int64(len(final_functions) + 2)
    cand_key = left.astype(np.int64) * span + right.astype(np.int64)
    position = final_positions.get
    kept_key = np.fromiter(
        (
            position(int(i), -1) * span + position(int(j), -1)
            for i, j in zip(old_state.hyper_i, old_state.hyper_j)
        ),
        dtype=np.int64,
        count=old_state.hyper_i.shape[0],
    )
    kept_key_sorted = np.sort(kept_key)
    at = np.searchsorted(kept_key_sorted, cand_key)
    at[at == kept_key_sorted.shape[0]] = max(kept_key_sorted.shape[0] - 1, 0)
    old_kept = np.zeros(values.shape[0], dtype=bool)
    if kept_key_sorted.shape[0]:
        old_kept = (kept_key_sorted[at] == cand_key) & ~is_new_pair

    # Removed candidates (delete only): crossings of the deleted function
    # with every survivor, inside the domain -- they participated in the old
    # tolerance replay, so clusters that lose one are dirty.
    removed_values = np.empty(0, dtype=np.float64)
    if deleted_function is not None:
        pair = univariate_breakpoints(
            [deleted_function, *final_functions], slope_tolerance
        )
        mask = pair[1] == 0  # pairs involving the deleted function
        removed = pair[0][mask]
        removed_values = removed[
            (removed > domain_low + tolerance) & (removed < domain_high - tolerance)
        ]

    kept = old_kept.copy()
    if values.shape[0]:
        union_values = np.concatenate([values, removed_values])
        order = np.argsort(union_values, kind="stable")
        sorted_values = union_values[order]
        cluster_start = np.empty(sorted_values.shape[0], dtype=bool)
        cluster_start[0] = True
        # Two candidates interact exactly when one of the replay's float
        # predicates says so: ``pred + tolerance < value`` (predecessor
        # side) or ``value < succ - tolerance`` (successor side).  A
        # cluster boundary therefore requires BOTH to hold -- computing
        # the gap by subtraction is NOT float-equivalent (e.g. with
        # tolerance 0.1: fl(1.1) - fl(1.0) > 0.1 yet fl(1.0 + 0.1) ==
        # fl(1.1)).  Consecutive independence separates whole clusters:
        # fl(a' + t) is monotone in a', so any member left of the boundary
        # clears both predicates against any member right of it.
        left_values = sorted_values[:-1]
        right_values = sorted_values[1:]
        np.logical_and(
            left_values + tolerance < right_values,
            left_values < right_values - tolerance,
            out=cluster_start[1:],
        )
        cluster_of_sorted = np.cumsum(cluster_start) - 1
        cluster_of = np.empty(union_values.shape[0], dtype=np.int64)
        cluster_of[order] = cluster_of_sorted
        cluster_count = int(cluster_of_sorted[-1]) + 1
        dirty = np.zeros(cluster_count, dtype=bool)
        dirty[cluster_of[values.shape[0] :]] = True  # lost a member
        dirty[cluster_of[: values.shape[0]][is_new_pair]] = True  # gained one
        # Singleton clusters of a new pair need no replay bookkeeping: an
        # isolated candidate is always kept.  Multi-member dirty clusters
        # are replayed in final pairwise order with the bisect rule of
        # ITree._bulk_plan (interactions never cross a > tolerance gap, so
        # per-cluster replay with the domain bounds as fallback neighbours
        # is exact).
        sizes = np.bincount(cluster_of_sorted, minlength=cluster_count)
        member_cluster = cluster_of[: values.shape[0]]
        replay_mask = dirty[member_cluster]
        kept[is_new_pair & replay_mask & (sizes[member_cluster] == 1)] = True
        multi = replay_mask & (sizes[member_cluster] > 1)
        if np.any(multi):
            import bisect

            by_cluster: Dict[int, List[int]] = {}
            for index in np.nonzero(multi)[0].tolist():
                by_cluster.setdefault(int(member_cluster[index]), []).append(index)
            for members in by_cluster.values():
                kept_values: List[float] = []
                for index in members:  # already in final pairwise order
                    value = float(values[index])
                    slot = bisect.bisect_left(kept_values, value)
                    predecessor = kept_values[slot - 1] if slot else domain_low
                    successor = (
                        kept_values[slot] if slot < len(kept_values) else domain_high
                    )
                    verdict = predecessor + tolerance < value < successor - tolerance
                    if verdict:
                        kept_values.insert(slot, value)
                    # The replay's verdict stands for pre-existing
                    # candidates too: a tolerance cascade that drops an old
                    # kept breakpoint merges its two subdomains, and one
                    # that resurrects a dropped candidate splits a
                    # subdomain -- both read downstream as non-matching
                    # interval bounds, i.e. re-sorted subdomains.
                    kept[index] = verdict

    kept_index = np.nonzero(kept)[0]
    order = np.argsort(values[kept_index], kind="stable")
    kept_index = kept_index[order]
    return BulkPlanState(
        breakpoints=values[kept_index],
        hyper_i=cand_i[kept_index],
        hyper_j=cand_j[kept_index],
        hyper_normal=normals[kept_index],
        hyper_offset=offsets[kept_index],
    )


# ---------------------------------------------------------------------------
# Old-state derivation
# ---------------------------------------------------------------------------
def _derive_state(tree) -> Optional[IncrementalState]:
    """The previous epoch's :class:`IncrementalState` (cheap where stashed)."""
    if tree._incremental_state is not None:
        return tree._incremental_state
    itree = tree.itree
    if itree.builder != "bulk" or itree.bulk_state is None:
        return None
    if itree.perm_change is None or itree.shared_order is None:
        return None
    change_rows, change_cols, change_vals = itree.perm_change
    permutation = itree.shared_order.permutation
    if tree._batched_forest is not None and tree._batched_leaf_map is not None:
        arena, roots, row_ids = tree._batched_forest
        interval_roots = np.empty(roots.shape[0], dtype=np.int64)
        interval_roots[row_ids] = roots
        leaf_map, min_index, max_index = tree._batched_leaf_map
        leaf_map = dict(leaf_map)
    elif tree._lazy_forest is not None:
        lazy = getattr(itree, "_lazy_leaf_data", None)
        if lazy is None:
            return None
        arena, _leaf_count, _records, root_indices = tree._lazy_forest
        witnesses, rows = lazy
        rows = np.asarray(rows, dtype=np.int64)
        witness_values = np.asarray(witnesses, dtype=np.float64).reshape(
            rows.shape[0], -1
        )[:, 0]
        order = np.argsort(witness_values, kind="stable")
        if not np.array_equal(rows[order], np.arange(rows.shape[0], dtype=np.int64)):
            # Rows are not stored in interval order (never the case for
            # bulk builds and their round trips) -- the cached change
            # points would not describe interval transitions.
            return None
        interval_roots = np.asarray(root_indices, dtype=np.int64)[order]
        digest_of = {}
        leaves = np.nonzero(arena.left < 0)[0]
        for index in leaves.tolist():
            digest_of[arena.digests[index].tobytes()] = index
        leaf_map = {}
        for record in tree.dataset.records:
            index = digest_of.get(sha256(record.to_bytes()))
            if index is None:  # pragma: no cover - arena always holds them
                return None
            leaf_map[record.record_id] = index
        min_index = digest_of.get(sha256(MIN_TOKEN))
        max_index = digest_of.get(sha256(MAX_TOKEN))
        if min_index is None or max_index is None:  # pragma: no cover
            return None
    else:
        return None
    return IncrementalState(
        plan=itree.bulk_state,
        permutation=permutation,
        change_rows=np.asarray(change_rows, dtype=np.int64),
        change_cols=np.asarray(change_cols, dtype=np.int64),
        change_vals=np.asarray(change_vals, dtype=np.int64),
        arena=arena,
        interval_roots=interval_roots,
        leaf_map=leaf_map,
        min_index=int(min_index),
        max_index=int(max_index),
    )


# ---------------------------------------------------------------------------
# The single-record update
# ---------------------------------------------------------------------------
def apply_incremental_update(
    tree,
    new_dataset: Dataset,
    *,
    inserted: Optional[Record] = None,
    deleted_id: Optional[int] = None,
    epoch: int,
    sign: bool = True,
):
    """Apply one insert *or* one delete to an IFMH tree, incrementally.

    Returns the updated :class:`~repro.ifmh.ifmh_tree.IFMHTree` (deferred,
    like an artifact load, with old-arena structure shared by index), or
    ``None`` when this tree is not eligible for the changed-path fast path
    -- the caller then rebuilds from scratch.  Exactly one of ``inserted``
    / ``deleted_id`` must be given.
    """
    from repro.ifmh.ifmh_tree import IFMHTree

    if (inserted is None) == (deleted_id is None):
        raise ConstructionError("pass exactly one of inserted / deleted_id")
    if tree.template.dimension != 1:
        return None
    if not tree.batch_hashing:
        return None
    engine = tree.config.make_engine(tree.template.domain)
    if not isinstance(engine, IntervalEngine):
        return None
    state = _derive_state(tree)
    if state is None:
        return None

    domain = tree.template.domain
    domain_low, domain_high = domain.lower[0], domain.upper[0]
    final_functions = tree.template.functions_for(new_dataset)
    final_positions = {record.record_id: p for p, record in enumerate(new_dataset.records)}
    deleted_function = None
    if deleted_id is not None:
        deleted_function = tree.template.function_for(
            tree.records_by_id[deleted_id], tree.dataset
        )

    new_plan = _plan_update(
        state.plan,
        final_functions,
        final_positions,
        engine,
        domain_low,
        domain_high,
        inserted.record_id if inserted is not None else None,
        deleted_id,
        deleted_function,
    )
    if new_plan is None:
        return None

    if (
        isinstance(state.permutation, LazySplicedPermutation)
        and state.permutation.depth >= _MAX_PERMUTATION_DEPTH
    ):
        state.permutation = state.permutation.materialize()

    builder = _UpdateBuilder(tree, new_dataset, final_functions, state, new_plan,
                             domain_low, domain_high)
    result = (
        builder.build_insert(inserted)
        if inserted is not None
        else builder.build_delete(deleted_id)
    )
    arrays, root_hash, new_state = result

    updated = IFMHTree.from_update(
        new_dataset,
        tree.template,
        arrays,
        config=tree.config,
        counters=tree.counters,
        engine=engine,
        epoch=epoch,
        root_hash=root_hash,
        subdomain_count=new_plan.breakpoints.shape[0] + 1,
        signer=tree.signer,
    )
    updated._incremental_state = new_state
    if sign and tree.signer is not None:
        updated._sign(tree.signer)
    return updated


class _UpdateBuilder:
    """Shared machinery of the insert and delete changed-path rebuilds."""

    def __init__(
        self,
        tree,
        new_dataset: Dataset,
        final_functions,
        state: IncrementalState,
        new_plan: BulkPlanState,
        domain_low: float,
        domain_high: float,
    ):
        self.tree = tree
        self.new_dataset = new_dataset
        self.final_functions = final_functions
        self.state = state
        self.new_plan = new_plan
        self.domain_low = domain_low
        self.domain_high = domain_high
        self.hash_function = tree.hash_function

        # Final base order (ascending record id), as SharedFunctionOrder uses.
        self.final_by_index = sorted(final_functions, key=lambda f: f.index)
        self.final_sorted_ids = np.fromiter(
            (f.index for f in self.final_by_index),
            dtype=np.int64,
            count=len(self.final_by_index),
        )
        self.final_slopes = np.array(
            [f.coefficients[0] for f in self.final_by_index], dtype=np.float64
        )
        self.final_constants = np.array(
            [f.constant for f in self.final_by_index], dtype=np.float64
        )
        self.old_sorted_ids = np.fromiter(
            (record_id for record_id in sorted(tree.records_by_id)),
            dtype=np.int64,
            count=len(tree.records_by_id),
        )

        # New interval geometry.
        breakpoints = new_plan.breakpoints
        count = breakpoints.shape[0]
        self.low_bounds = np.empty(count + 1, dtype=np.float64)
        self.high_bounds = np.empty(count + 1, dtype=np.float64)
        self.low_bounds[0] = domain_low
        self.low_bounds[1:] = breakpoints
        self.high_bounds[-1] = domain_high
        self.high_bounds[:-1] = breakpoints
        # Bit-identical to IntervalEngine.witness: (low + high) / 2.0.
        self.witnesses = (self.low_bounds + self.high_bounds) / 2.0

        # Which new boundary is which old kept breakpoint (matched by pair
        # identity; kept breakpoints are strictly increasing, so the value
        # lookup below is unambiguous for survivors).
        old_breaks = state.plan.breakpoints
        old_pair = set(zip(state.plan.hyper_i.tolist(), state.plan.hyper_j.tolist()))
        survivor = np.fromiter(
            (
                (int(i), int(j)) in old_pair
                for i, j in zip(new_plan.hyper_i, new_plan.hyper_j)
            ),
            dtype=bool,
            count=count,
        )
        self.old_rank = np.full(count, -5, dtype=np.int64)
        if count:
            at = np.searchsorted(old_breaks, breakpoints)
            at[at == old_breaks.shape[0]] = max(old_breaks.shape[0] - 1, 0)
            exact = np.zeros(count, dtype=bool)
            if old_breaks.shape[0]:
                exact = old_breaks[at] == breakpoints
            self.old_rank[survivor & exact] = at[survivor & exact]
        lo_rank = np.empty(count + 1, dtype=np.int64)
        hi_rank = np.empty(count + 1, dtype=np.int64)
        lo_rank[0] = -1
        lo_rank[1:] = self.old_rank
        hi_rank[-1] = old_breaks.shape[0]
        hi_rank[:-1] = self.old_rank
        self.unchanged = (lo_rank >= -1) & (hi_rank >= 0) & (hi_rank == lo_rank + 1)
        self.old_interval = np.clip(lo_rank + 1, 0, max(old_breaks.shape[0], 0))

    # ------------------------------------------------------------ scoring
    def _resorted_rows(self, intervals: np.ndarray) -> Dict[int, np.ndarray]:
        """Stable argsort of the final functions at the given new witnesses.

        Bit-identical to ITree._finalize_leaves_bulk: same broadcasted
        ``w * slope + constant`` arithmetic, same stable argsort.
        """
        witness = self.witnesses[intervals]
        overrides: Dict[int, np.ndarray] = {}
        for start in range(0, intervals.shape[0], _RANK_CHUNK):
            chunk = slice(start, start + _RANK_CHUNK)
            scores = (
                witness[chunk, None] * self.final_slopes[None, :]
                + self.final_constants[None, :]
            )
            rows = np.argsort(scores, axis=1, kind="stable").astype(np.int32)
            for offset, interval in enumerate(intervals[chunk].tolist()):
                overrides[interval] = rows[offset]
        return overrides

    def _insert_ranks(self, witnesses: np.ndarray, g_position: int) -> np.ndarray:
        """Sorted slot the inserted function takes at each witness.

        Counts, with exactly the comparisons a stable argsort over the
        final score vector performs, how many other functions sort before
        the inserted one: strictly smaller score, or equal score and
        smaller base position (the stable tie rule).  Functions whose
        score difference to the inserted one keeps a safely-margined sign
        across the whole witness range (score differences are linear in
        the witness) contribute one count to every rank at once; only the
        few whose sign can flip -- or tie -- pay a per-witness pass.
        """
        other = np.ones(self.final_slopes.shape[0], dtype=bool)
        other[g_position] = False
        slopes = self.final_slopes[other]
        constants = self.final_constants[other]
        before_on_tie = np.nonzero(other)[0] < g_position
        g_slope = self.final_slopes[g_position]
        g_constant = self.final_constants[g_position]

        ranks = np.zeros(witnesses.shape[0], dtype=np.int64)
        if witnesses.shape[0] == 0:
            return ranks
        w_lo = float(witnesses.min())
        w_hi = float(witnesses.max())
        d_lo = (w_lo * slopes + constants) - (w_lo * g_slope + g_constant)
        d_hi = (w_hi * slopes + constants) - (w_hi * g_slope + g_constant)
        w_abs = max(abs(w_lo), abs(w_hi))
        scale = (
            w_abs * (np.abs(slopes) + abs(g_slope))
            + np.abs(constants)
            + abs(g_constant)
        )
        margin = _SIGN_MARGIN * scale
        settled = (
            (np.sign(d_lo) == np.sign(d_hi))
            & (np.abs(d_lo) > margin)
            & (np.abs(d_hi) > margin)
        )
        ranks += int(np.count_nonzero(settled & (d_lo < 0)))

        g_scores = witnesses * g_slope + g_constant
        for index in np.nonzero(~settled)[0].tolist():
            scores = witnesses * slopes[index] + constants[index]
            ranks += scores < g_scores
            if before_on_tie[index]:
                ranks += scores == g_scores
        return ranks

    # -------------------------------------------------------------- shared
    def _transition_entries(
        self,
        lazy: LazySplicedPermutation,
        pure_map,
        special: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Change points of the new permutation (row ``k`` vs ``k - 1``).

        ``pure_map(rows, cols, vals)`` vectorially transforms the cached
        old change points of transitions untouched by the splice; the few
        ``special`` transitions (re-sorted neighbours, rank/cut movement)
        are materialized and diffed row by row.
        """
        state = self.state
        interval_count = self.witnesses.shape[0]
        # Old transition t maps to new transition k where both sides are
        # unchanged intervals with consecutive old intervals.
        old_to_new = np.full(state.permutation.shape[0], -1, dtype=np.int64)
        pure_rows: List[np.ndarray] = []
        pure_cols: List[np.ndarray] = []
        pure_vals: List[np.ndarray] = []
        if interval_count > 1:
            ks = np.arange(1, interval_count, dtype=np.int64)
            pure_ks = ks[~special[1:]]
            old_ts = self.old_interval[pure_ks]
            old_to_new[old_ts] = pure_ks
            selected = old_to_new[state.change_rows] >= 0
            if np.any(selected):
                rows = old_to_new[state.change_rows[selected]]
                cols = state.change_cols[selected]
                vals = state.change_vals[selected]
                rows, cols, vals = pure_map(rows, cols, vals)
                pure_rows.append(rows)
                pure_cols.append(cols)
                pure_vals.append(vals)
        special_ks = np.nonzero(special)[0]
        for k in special_ks.tolist():
            if k == 0:
                continue
            row_a = lazy[k - 1]
            row_b = lazy[k]
            cols = np.nonzero(row_a != row_b)[0]
            pure_rows.append(np.full(cols.shape[0], k, dtype=np.int64))
            pure_cols.append(cols.astype(np.int64))
            pure_vals.append(row_b[cols].astype(np.int64))
        if pure_rows:
            rows = np.concatenate(pure_rows)
            cols = np.concatenate(pure_cols)
            vals = np.concatenate(pure_vals)
            order = np.lexsort((cols, rows))
            return rows[order], cols[order], vals[order]
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty

    def _finish(
        self,
        lazy: LazySplicedPermutation,
        change_rows: np.ndarray,
        change_cols: np.ndarray,
        change_vals: np.ndarray,
        leaf_map: Dict[int, int],
        min_index: int,
        max_index: int,
        hasher: DeltaForestHasher,
    ):
        state = self.state
        new_plan = self.new_plan
        # ---- changed-path forest over the change-point leaf matrix
        leaf_of_position = np.fromiter(
            (leaf_map[int(i)] for i in self.final_sorted_ids),
            dtype=np.int64,
            count=self.final_sorted_ids.shape[0],
        )
        base_perm_row = np.asarray(lazy[0], dtype=np.int64)
        width = base_perm_row.shape[0] + 2
        base_row = np.empty(width, dtype=np.int64)
        base_row[0] = min_index
        base_row[-1] = max_index
        base_row[1:-1] = leaf_of_position[base_perm_row]
        roots = hasher.build(
            base_row,
            change_rows,
            change_cols + 1,
            leaf_of_position[change_vals],
            self.witnesses.shape[0],
            self.hash_function,
        )
        arena = hasher.finalize()

        # ---- balanced skeleton + reverse-pre-order step-3 propagation
        skeleton = balanced_preorder(new_plan.hyper_normal)
        hyper_bytes = self._hyper_bytes()
        intersection, root_hash = self._propagate(skeleton, roots, arena, hyper_bytes)

        arrays: Dict[str, np.ndarray] = {
            "node_is_leaf": skeleton.flags,
            "hyper_i": new_plan.hyper_i[skeleton.internal_mid],
            "hyper_j": new_plan.hyper_j[skeleton.internal_mid],
            "hyper_normal": new_plan.hyper_normal[skeleton.internal_mid].reshape(-1, 1),
            "hyper_offset": new_plan.hyper_offset[skeleton.internal_mid],
            "leaf_witness": self.witnesses[skeleton.leaf_interval].reshape(-1, 1),
            "leaf_row": skeleton.leaf_interval,
            "permutation": lazy,
            "leaf_root_index": roots[skeleton.leaf_interval],
            "intersection_hash": np.frombuffer(
                b"".join(intersection), dtype=np.uint8
            ).reshape(len(intersection), DIGEST_SIZE),
        }
        arena_arrays = arena.to_arrays()
        arrays["arena_digests"] = arena_arrays["digests"]
        arrays["arena_left"] = arena_arrays["left"]
        arrays["arena_right"] = arena_arrays["right"]

        new_state = IncrementalState(
            plan=new_plan,
            permutation=lazy,
            change_rows=change_rows,
            change_cols=change_cols,
            change_vals=change_vals,
            arena=arena,
            interval_roots=roots,
            leaf_map=leaf_map,
            min_index=min_index,
            max_index=max_index,
            hyper_bytes=hyper_bytes,
            forest_tables=hasher.sorted_pair_tables(),
        )
        return arrays, root_hash, new_state

    def _hyper_bytes(self) -> List[bytes]:
        """Canonical encodings of the new plan's hyperplanes (cache-reusing).

        Survivor breakpoints reuse the previous epoch's cached bytes; the
        rest -- everything on the first update, a handful afterwards -- go
        through the vectorized bulk encoder.
        """
        new_plan = self.new_plan
        old_bytes = self.state.hyper_bytes
        if old_bytes is None:
            return _encode_hyperplanes(
                new_plan.hyper_i,
                new_plan.hyper_j,
                new_plan.hyper_normal,
                new_plan.hyper_offset,
            )
        count = new_plan.breakpoints.shape[0]
        result: List[bytes] = [b""] * count
        missing = np.nonzero(self.old_rank < 0)[0]
        if missing.shape[0]:
            fresh = _encode_hyperplanes(
                new_plan.hyper_i[missing],
                new_plan.hyper_j[missing],
                new_plan.hyper_normal[missing],
                new_plan.hyper_offset[missing],
            )
            for position, index in enumerate(missing.tolist()):
                result[index] = fresh[position]
        old_rank = self.old_rank.tolist()
        for k in range(count):
            rank = old_rank[k]
            if rank >= 0:
                result[k] = old_bytes[rank]
        return result

    def _propagate(
        self,
        skeleton: _Skeleton,
        roots: np.ndarray,
        arena: MerkleArena,
        hyper_bytes: List[bytes],
    ) -> Tuple[List[bytes], bytes]:
        """Reverse-pre-order step-3 propagation over the new skeleton.

        Returns the intersection digests (pre-order-internal order) and the
        root hash.  One logical and one physical hash per intersection
        node, exactly like the stack walk of IFMHTree._propagate_hashes.
        """
        bind = self.tree.bind_intersections
        leaf_roots = roots[skeleton.leaf_interval]
        leaf_blob = arena.digests[leaf_roots].tobytes()
        total = skeleton.flags.shape[0]
        digests: List[Optional[bytes]] = [None] * total
        for ordinal, node in enumerate(skeleton.leaf_node.tolist()):
            start = ordinal * DIGEST_SIZE
            digests[node] = leaf_blob[start : start + DIGEST_SIZE]
        sha = sha256
        internal_nodes = skeleton.internal_node.tolist()
        above = skeleton.above_node.tolist()
        below = skeleton.below_node.tolist()
        mids = skeleton.internal_mid.tolist()
        prefix = DIGEST_SIZE.to_bytes(8, "big")
        for cursor in range(len(internal_nodes) - 1, -1, -1):
            above_digest = digests[above[cursor]]
            below_digest = digests[below[cursor]]
            if bind:
                plane = hyper_bytes[mids[cursor]]
                preimage = (
                    len(plane).to_bytes(8, "big")
                    + plane
                    + prefix
                    + above_digest
                    + prefix
                    + below_digest
                )
            else:
                preimage = prefix + above_digest + prefix + below_digest
            digests[internal_nodes[cursor]] = sha(preimage)
        count = len(internal_nodes)
        if count:
            self.tree.counters.add_hash(count)
            self.tree.counters.add_physical_hash(count)
            self.hash_function.call_count += count
            self.hash_function.physical_count += count
        intersection = [digests[node] for node in internal_nodes]
        return intersection, digests[0]

    # ------------------------------------------------------------- insert
    def build_insert(self, record: Record):
        state = self.state
        leaf_map = dict(state.leaf_map)
        hasher = DeltaForestHasher(state.arena, pair_tables=state.forest_tables)
        leaf_map[record.record_id] = hasher.intern_leaf(
            record.to_bytes(), self.hash_function
        )
        g_position = int(np.searchsorted(self.old_sorted_ids, record.record_id))

        interval_count = self.witnesses.shape[0]
        intervals = np.arange(interval_count, dtype=np.int64)
        changed = intervals[~self.unchanged]
        overrides = self._resorted_rows(changed) if changed.shape[0] else {}

        ranks = np.zeros(interval_count, dtype=np.int64)
        unchanged_idx = intervals[self.unchanged]
        if unchanged_idx.shape[0]:
            ranks[unchanged_idx] = self._insert_ranks(
                self.witnesses[unchanged_idx], g_position
            )
        lazy = LazySplicedPermutation(
            state.permutation,
            self.old_interval,
            "insert",
            g_position,
            ranks,
            overrides,
        )

        special = np.zeros(interval_count, dtype=bool)
        special[~self.unchanged] = True
        if interval_count > 1:
            # Transitions whose rank moves need a direct row diff; so do
            # transitions bordering a re-sorted interval.
            moved = np.zeros(interval_count, dtype=bool)
            moved[1:] = ranks[1:] != ranks[:-1]
            transition_special = special.copy()
            transition_special[1:] |= special[:-1]
            transition_special |= moved
        else:
            transition_special = special

        def pure_map(rows, cols, vals):
            rank = ranks[rows]
            return (
                rows,
                cols + (cols >= rank),
                vals + (vals >= g_position),
            )

        change_rows, change_cols, change_vals = self._transition_entries(
            lazy, pure_map, transition_special
        )
        return self._finish(
            lazy,
            change_rows,
            change_cols,
            change_vals,
            leaf_map,
            state.min_index,
            state.max_index,
            hasher,
        )

    # ------------------------------------------------------------- delete
    def build_delete(self, record_id: int):
        state = self.state
        leaf_map = dict(state.leaf_map)
        leaf_map.pop(record_id, None)
        hasher = DeltaForestHasher(state.arena, pair_tables=state.forest_tables)
        d_position = int(np.searchsorted(self.old_sorted_ids, record_id))

        # The deleted record's column in every *old* row, tracked through
        # the cached change points: it starts at its slot in row 0 and
        # moves exactly where a change entry writes its base position.
        old_rows = state.permutation.shape[0]
        first_row = np.asarray(state.permutation[0])
        cuts_old = np.empty(old_rows, dtype=np.int64)
        cuts_old[:] = int(np.nonzero(first_row == d_position)[0][0])
        moved = state.change_vals == d_position
        if np.any(moved):
            move_rows = state.change_rows[moved]
            move_cols = state.change_cols[moved]
            order = np.argsort(move_rows, kind="stable")
            move_rows = move_rows[order]
            move_cols = move_cols[order]
            bounds = np.append(move_rows, old_rows)
            for index in range(move_rows.shape[0]):
                cuts_old[bounds[index] : bounds[index + 1]] = move_cols[index]

        interval_count = self.witnesses.shape[0]
        intervals = np.arange(interval_count, dtype=np.int64)
        changed = intervals[~self.unchanged]
        overrides = self._resorted_rows(changed) if changed.shape[0] else {}
        cuts = cuts_old[self.old_interval]
        lazy = LazySplicedPermutation(
            state.permutation,
            self.old_interval,
            "delete",
            d_position,
            cuts,
            overrides,
        )

        special = np.zeros(interval_count, dtype=bool)
        special[~self.unchanged] = True
        if interval_count > 1:
            moved_cut = np.zeros(interval_count, dtype=bool)
            moved_cut[1:] = cuts[1:] != cuts[:-1]
            transition_special = special.copy()
            transition_special[1:] |= special[:-1]
            transition_special |= moved_cut
        else:
            transition_special = special

        def pure_map(rows, cols, vals):
            cut = cuts[rows]
            return (
                rows,
                cols - (cols > cut),
                vals - (vals > d_position),
            )

        change_rows, change_cols, change_vals = self._transition_entries(
            lazy, pure_map, transition_special
        )
        return self._finish(
            lazy,
            change_rows,
            change_cols,
            change_vals,
            leaf_map,
            state.min_index,
            state.max_index,
            hasher,
        )
