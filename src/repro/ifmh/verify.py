"""Client-side verification of IFMH-tree query results (paper section 3.3).

The verifying client holds only public information: the utility-function
template (including the weight domain), the table schema (attribute names)
and the data owner's public key.  Verification proceeds in two steps:

1. **Authenticity** -- recompute the FMH root from the returned records,
   the boundary entries and the Merkle range proof; then either fold the
   IMH search path up to the root and check the root signature
   (one-signature) or check the subdomain signature over the inequality-set
   digest (multi-signature).
2. **Query re-execution** -- check that the query's weight vector falls in
   the proven subdomain, that the returned records' scores are sorted and
   satisfy the query condition, and that the two boundary records prove the
   result is complete (nothing qualifying was dropped on either side).

The result is a :class:`~repro.core.results.VerificationReport`; nothing is
raised unless the caller asks for strict behaviour via
``report.raise_if_invalid()``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.core.queries import AnalyticQuery
from repro.core.recheck import recheck_query
from repro.core.records import Record, UtilityTemplate
from repro.core.results import QueryResult, VerificationReport
from repro.crypto.hashing import HashFunction, epoch_bound_combine
from repro.crypto.signer import Verifier
from repro.geometry.domain import region_from_constraints
from repro.geometry.functions import LinearFunction
from repro.ifmh.ifmh_tree import MULTI_SIGNATURE, ONE_SIGNATURE
from repro.ifmh.vo import VerificationObject
from repro.merkle.fmh_tree import FMHTree
from repro.metrics.counters import Counters

__all__ = ["derive_function", "verify_result"]


def derive_function(
    record: Record,
    template: UtilityTemplate,
    attribute_names: Sequence[str],
) -> LinearFunction:
    """Re-derive a record's score function from public information.

    Thin convenience wrapper around
    :meth:`repro.core.records.UtilityTemplate.function_from_schema`.
    """
    return template.function_from_schema(record, attribute_names)


def verify_result(
    query: AnalyticQuery,
    result: QueryResult,
    vo: VerificationObject,
    *,
    template: UtilityTemplate,
    attribute_names: Sequence[str],
    verifier: Verifier,
    bind_intersections: bool = True,
    counters: Optional[Counters] = None,
    epoch: int = 0,
) -> VerificationReport:
    """Verify that ``result`` is a sound and complete answer to ``query``.

    ``epoch`` is the current ADS epoch from the owner's public parameters;
    from epoch 1 on it is bound into the signed message, so responses
    served from a stale (pre-update) ADS fail the signature check even
    though their signatures were once genuine.
    """
    report = VerificationReport()
    counters = counters if counters is not None else Counters()
    report.counters = counters
    hash_function = HashFunction(counters)

    query.validate(template.dimension)
    weights = query.weights
    report.record(
        "weights-in-domain",
        template.domain.contains(weights),
        f"query weights {weights} lie outside the published domain",
    )

    # ----------------------------------------------------- 1a. FMH root
    started = time.perf_counter()
    try:
        fmh_root = FMHTree.root_from_window(
            list(result.records), vo.fv.left, vo.fv.right, vo.fv.proof, hash_function=hash_function
        )
        report.record("fmh-reconstruction", True)
    except ValueError as error:
        report.record("fmh-reconstruction", False, f"cannot reconstruct the FMH root: {error}")
        report.timings["hashing"] = time.perf_counter() - started
        return report
    report.timings["hashing"] = time.perf_counter() - started

    # ----------------------------------------------------- 1b. IV + signature
    signature_started = time.perf_counter()
    if vo.scheme == ONE_SIGNATURE:
        root_hash = fmh_root
        directions_consistent = True
        for step in reversed(vo.one_signature_iv.steps):
            expected_above = step.hyperplane.side_value(weights) >= 0
            if expected_above != step.took_above:
                directions_consistent = False
            taken, sibling = root_hash, step.sibling_hash
            above = taken if step.took_above else sibling
            below = sibling if step.took_above else taken
            root_hash = (
                hash_function.combine(step.hyperplane.to_bytes(), above, below)
                if bind_intersections
                else hash_function.combine(above, below)
            )
        report.record(
            "search-path-directions",
            directions_consistent,
            "the IMH search path does not follow the query's weight vector",
        )
        message = (
            root_hash if epoch == 0 else epoch_bound_combine(hash_function, epoch, root_hash)
        )
        signature_ok = verifier.verify(message, vo.root_signature)
        counters.add_signature_verified()
        report.record(
            "root-signature",
            signature_ok,
            "the reconstructed IFMH root does not match the owner's signature",
        )
    elif vo.scheme == MULTI_SIGNATURE:
        region = region_from_constraints(template.domain, vo.multi_signature_iv.constraints)
        report.record(
            "subdomain-contains-weights",
            region.contains(weights),
            "the proven subdomain does not contain the query's weight vector",
        )
        inequality_hash = hash_function.digest(region.constraint_bytes())
        digest = epoch_bound_combine(hash_function, epoch, inequality_hash, fmh_root)
        signature_ok = verifier.verify(digest, vo.multi_signature_iv.signature)
        counters.add_signature_verified()
        report.record(
            "subdomain-signature",
            signature_ok,
            "the subdomain digest does not match the owner's signature",
        )
    else:  # pragma: no cover - VerificationObject already validates the scheme
        report.record("scheme", False, f"unknown VO scheme {vo.scheme!r}")
        return report
    report.timings["signature"] = time.perf_counter() - signature_started

    # ----------------------------------------------------- 2. query re-execution
    recheck_started = time.perf_counter()
    recheck_query(query, result, vo.fv.left, vo.fv.right, template, attribute_names, report)
    report.timings["query-recheck"] = time.perf_counter() - recheck_started
    return report
