"""The IFMH-tree: the paper's proposed verification data structure.

The Intersection and Function Merkle Hash tree combines

* an **IMH-tree** -- the I-tree over the weight-space arrangement with
  Merkle hashes propagated bottom-up (subdomain nodes take their FMH root,
  intersection nodes hash their children), and
* one **FMH-tree** per subdomain -- a Merkle tree over that subdomain's
  sorted record list bracketed by ``f_min`` / ``f_max`` tokens.

Two signing modes are supported (paper section 3.1, step 4):

* ``one-signature`` -- only the IMH root is signed;
* ``multi-signature`` -- each subdomain node is signed over the hash of its
  defining inequality set concatenated with its FMH root.

:mod:`repro.ifmh.vo` constructs verification objects for query results and
:mod:`repro.ifmh.verify` implements the client-side verification.
"""

from repro.ifmh.ifmh_tree import IFMHTree, ONE_SIGNATURE, MULTI_SIGNATURE
from repro.ifmh.vo import (
    IVStep,
    OneSignatureIV,
    MultiSignatureIV,
    FunctionVO,
    VerificationObject,
    build_verification_object,
)
from repro.ifmh.verify import verify_result, derive_function

__all__ = [
    "IFMHTree",
    "ONE_SIGNATURE",
    "MULTI_SIGNATURE",
    "IVStep",
    "OneSignatureIV",
    "MultiSignatureIV",
    "FunctionVO",
    "VerificationObject",
    "build_verification_object",
    "verify_result",
    "derive_function",
]
