"""Verification-object construction for IFMH-tree query results.

A verification object (paper section 3.2) has two parts:

* the **intersection verification object** (IV) authenticating *which
  subdomain* the query's weight vector falls into -- for one-signature mode
  this is the search path through the IMH-tree with each off-path sibling's
  hash; for multi-signature mode it is the subdomain's inequality set plus
  that subdomain's signature;
* the **function verification object** (FV) authenticating the returned
  window of the subdomain's sorted record list -- the two boundary entries
  and a Merkle range proof against the subdomain's FMH root.

For one-signature mode the VO additionally carries the owner's root
signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import QueryProcessingError
from repro.geometry.domain import Constraint
from repro.geometry.functions import Hyperplane
from repro.ifmh.ifmh_tree import IFMHTree, MULTI_SIGNATURE, ONE_SIGNATURE
from repro.itree.itree import SearchTrace
from repro.merkle.fmh_tree import BoundaryEntry
from repro.merkle.mh_tree import RangeProof
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel
from repro.queryproc.window import ResultWindow

__all__ = [
    "IVStep",
    "OneSignatureIV",
    "MultiSignatureIV",
    "FunctionVO",
    "VerificationObject",
    "build_verification_object",
]


@dataclass(frozen=True)
class IVStep:
    """One intersection node of the search path, root to leaf.

    ``sibling_hash`` is the Merkle hash of the child *not* taken; together
    with the recomputed hash of the taken side it reproduces the parent's
    hash.
    """

    hyperplane: Hyperplane
    took_above: bool
    sibling_hash: bytes


@dataclass(frozen=True)
class OneSignatureIV:
    """IV for one-signature mode: the authenticated IMH search path."""

    steps: tuple[IVStep, ...]

    @property
    def depth(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class MultiSignatureIV:
    """IV for multi-signature mode: the subdomain's inequality set + signature."""

    constraints: tuple[Constraint, ...]
    signature: bytes


@dataclass(frozen=True)
class FunctionVO:
    """FV: boundary entries plus the FMH Merkle range proof."""

    left: BoundaryEntry
    right: BoundaryEntry
    proof: RangeProof


@dataclass(frozen=True)
class VerificationObject:
    """The complete verification object shipped with a query result."""

    scheme: str
    fv: FunctionVO
    one_signature_iv: Optional[OneSignatureIV] = None
    multi_signature_iv: Optional[MultiSignatureIV] = None
    root_signature: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.scheme == ONE_SIGNATURE:
            if self.one_signature_iv is None or self.root_signature is None:
                raise ValueError("one-signature VO needs an IV path and the root signature")
        elif self.scheme == MULTI_SIGNATURE:
            if self.multi_signature_iv is None:
                raise ValueError("multi-signature VO needs a subdomain IV")
        else:
            raise ValueError(f"unknown VO scheme {self.scheme!r}")

    # ------------------------------------------------------------- metrics
    @property
    def signature_count(self) -> int:
        """Signatures the client must verify (always 1 for IFMH schemes)."""
        return 1

    def hash_entries(self) -> int:
        """Number of hash values shipped inside the VO."""
        count = self.fv.proof.node_count()
        if self.one_signature_iv is not None:
            count += len(self.one_signature_iv.steps)
        return count

    def size_bytes(
        self,
        dimension: int,
        size_model: SizeModel = DEFAULT_SIZE_MODEL,
    ) -> int:
        """Serialized size of the VO in bytes (Fig. 8)."""
        total = 0
        # FV: two boundary entries + the range proof hashes + window metadata.
        for boundary in (self.fv.left, self.fv.right):
            if boundary.is_token:
                total += size_model.int_size
            else:
                total += size_model.record_size(dimension)
            total += size_model.int_size  # leaf index
        total += self.fv.proof.node_count() * (size_model.hash_size + 2 * size_model.int_size)
        total += 3 * size_model.int_size  # proof range + leaf count
        # IV.
        if self.one_signature_iv is not None:
            for _step in self.one_signature_iv.steps:
                total += (
                    size_model.hyperplane_size(dimension)
                    + 1  # direction bit
                    + size_model.hash_size
                )
            total += size_model.signature_size  # root signature
        if self.multi_signature_iv is not None:
            total += len(self.multi_signature_iv.constraints) * size_model.constraint_size(dimension)
            total += size_model.signature_size
        return total


def build_verification_object(
    tree: IFMHTree,
    trace: SearchTrace,
    window: ResultWindow,
    counters: Optional[Counters] = None,
) -> VerificationObject:
    """Construct the VO for a result window inside the traced subdomain.

    ``counters`` (if given) accumulates the server-side cost: every IMH node
    touched by the search (already counted by the search itself) plus every
    FMH node touched while building the range proof -- the quantity Fig. 6
    of the paper reports.
    """
    leaf = trace.leaf
    if leaf.fmh_tree is None:
        raise QueryProcessingError("subdomain has no FMH-tree; was the IFMH-tree built?")
    left, right, proof = leaf.fmh_tree.window_proof(window)
    if counters is not None:
        # Nodes touched to build the FV: the leaves of the proven range plus
        # every supplement hash copied out of the FMH-tree.
        counters.add_node(proof.end - proof.start + 1)
        counters.add_node(proof.node_count())
    fv = FunctionVO(left=left, right=right, proof=proof)

    if tree.mode == ONE_SIGNATURE:
        steps = tuple(
            IVStep(
                hyperplane=step.node.hyperplane,
                took_above=step.took_above,
                sibling_hash=step.sibling.hash_value,
            )
            for step in trace.steps
        )
        return VerificationObject(
            scheme=ONE_SIGNATURE,
            fv=fv,
            one_signature_iv=OneSignatureIV(steps=steps),
            root_signature=tree.root_signature,
        )

    if leaf.signature is None:
        raise QueryProcessingError("subdomain is unsigned; was the IFMH-tree built in multi mode?")
    return VerificationObject(
        scheme=MULTI_SIGNATURE,
        fv=fv,
        multi_signature_iv=MultiSignatureIV(
            constraints=tuple(leaf.region.constraints),
            signature=leaf.signature,
        ),
    )
