"""IFMH-tree construction (paper section 3.1, steps 1-4).

Step 1 builds the I-tree (delegated to :class:`repro.itree.ITree`); step 2
builds one FMH-tree per subdomain over its sorted record list; step 3
propagates hashes bottom-up through the intersection nodes; step 4 signs the
structure, either once at the root (*one-signature*) or once per subdomain
(*multi-signature*).

Hardening note: the paper computes an intersection node's hash as
``H(a.h | b.h)``.  That does not bind *which* intersection the node stores,
so a malicious server could present a search path with altered branch
conditions.  By default this implementation binds the intersection
hyperplane into the hash (``H(enc(I_ij) | a.h | b.h)``); pass
``bind_intersections=False`` to get the exact paper behaviour (exercised by
tests and an ablation benchmark).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import (
    MULTI_SIGNATURE,
    ONE_SIGNATURE,
    SystemConfig,
    resolve_config,
)
from repro.core.errors import ConstructionError
from repro.core.parallel import resolve_worker_count
from repro.core.records import Dataset, Record, UtilityTemplate
from repro.crypto.hashing import HashFunction, epoch_bound_combine
from repro.crypto.signer import Signer
from repro.geometry.engine import SplitEngine
from repro.itree.itree import ITree, SearchTrace
from repro.itree.nodes import ITreeNode
from repro.itree.permutation import PermutedView
from repro.merkle.arena import ArenaMerkleTree, MerkleArena, arena_from_level_trees
from repro.merkle.engine import MerkleBuildEngine
from repro.merkle.fmh_tree import FMHTree, MAX_TOKEN, MIN_TOKEN
from repro.metrics.counters import Counters
from repro.metrics.sizes import DEFAULT_SIZE_MODEL, SizeModel

__all__ = ["IFMHTree", "ONE_SIGNATURE", "MULTI_SIGNATURE"]


class IFMHTree:
    """The Intersection and Function Merkle Hash tree.

    Parameters
    ----------
    dataset / template:
        The outsourced table and its utility-function template; every record
        is interpreted as a linear score function over the template's weight
        domain.
    mode:
        ``"one-signature"`` or ``"multi-signature"``.
    signer:
        The data owner's signing key (any :class:`repro.crypto.Signer`).
    hash_function:
        Counting SHA-256 wrapper; supply one wired to the owner's counters
        to measure construction cost.
    engine:
        Geometry engine override (defaults to the right engine for the
        template's dimension).
    counters:
        Owner-side counters (signatures created, hash operations).
    bind_intersections:
        Bind each intersection's identity into its node hash (hardened
        default); ``False`` reproduces the paper's exact hash rule.
    build_mode:
        I-tree construction strategy (see :data:`repro.itree.itree.BUILDERS`).
        The default ``"auto"`` picks the vectorized balanced bulk build for
        the univariate interval configuration and falls back to the paper's
        incremental insertion elsewhere (d >= 2, custom engines).
    hash_consing:
        Route step 2 through the shared-structure Merkle construction
        engine (:class:`repro.merkle.engine.MerkleBuildEngine`): record
        leaf digests are interned once per dataset and internal FMH nodes
        are hash-consed across subdomains, collapsing the Theta(n^3)
        physical SHA-256 work of the 1-D configuration toward
        Theta(n^2 log n).  Every hash value, proof and counter-reported
        *logical* hash count is bit-identical either way; pass ``False``
        to force the naive per-subdomain hashing (ablations, property
        tests).
    batch_hashing:
        Advance the shared-structure construction level by level across
        *all* subdomain trees at once, with the forest stored in a flat
        array arena (:mod:`repro.merkle.arena`) and each level's uncached
        parent preimages hashed in one bulk pass.  This removes the
        per-node Python overhead that dominates thousand-record builds;
        roots, proofs, verdicts and both hash counters stay bit-identical
        to the node-at-a-time engine.  Requires ``hash_consing`` (ignored
        otherwise); pass ``False`` to force the PR 2 node-at-a-time engine
        (ablations, property tests).
    construction_workers:
        Shard the batched forest build across this many forked worker
        processes (``0`` means every available core, ``None``/``1`` stays
        serial).  Roots, proofs and both hash counters are bit-identical
        at any worker count, so this is a wall-clock knob only -- it is
        deliberately *not* part of :class:`SystemConfig` and never affects
        published artifacts.
    """

    def __init__(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        *,
        config: Optional[SystemConfig] = None,
        mode: Optional[str] = None,
        signer: Optional[Signer] = None,
        hash_function: Optional[HashFunction] = None,
        engine: Optional[SplitEngine] = None,
        counters: Optional[Counters] = None,
        bind_intersections: Optional[bool] = None,
        build_mode: Optional[str] = None,
        hash_consing: Optional[bool] = None,
        batch_hashing: Optional[bool] = None,
        construction_workers: Optional[int] = None,
        epoch: int = 0,
    ):
        if mode is not None and mode not in (ONE_SIGNATURE, MULTI_SIGNATURE):
            raise ConstructionError(
                f"unknown IFMH mode {mode!r}; expected {ONE_SIGNATURE!r} or {MULTI_SIGNATURE!r}"
            )
        config = resolve_config(
            config,
            scheme=mode,
            bind_intersections=bind_intersections,
            build_mode=build_mode,
            hash_consing=hash_consing,
            batch_hashing=batch_hashing,
        )
        if not config.is_ifmh:
            raise ConstructionError(
                f"unknown IFMH mode {config.scheme!r}; expected "
                f"{ONE_SIGNATURE!r} or {MULTI_SIGNATURE!r}"
            )
        self._init_common(dataset, template, config, counters, hash_function, signer, epoch)
        if engine is None and config.tolerance is not None:
            engine = config.make_engine(template.domain)

        functions = template.functions_for(dataset)
        self.itree = ITree(
            functions,
            template.domain,
            engine=engine,
            counters=self.counters,
            builder=config.build_mode,
        )
        workers = (
            1 if construction_workers is None else resolve_worker_count(construction_workers)
        )
        engine = (
            MerkleBuildEngine(batched=self.batch_hashing, workers=workers)
            if self.hash_consing
            else None
        )
        self._attach_fmh_trees(engine)
        self._propagate_hashes()
        #: Hit/size statistics of the construction engine's tables (``None``
        #: without hash-consing).  Only the snapshot survives: the tables
        #: themselves are Theta(n^2 log n) and useless after construction,
        #: so they are dropped with the engine when this method returns.
        self.merkle_engine_stats: Optional[Dict[str, int]] = (
            engine.stats() if engine is not None else None
        )
        self.root_signature: Optional[bytes] = None
        if signer is not None:
            self._sign(signer)

    def _init_common(
        self,
        dataset: Dataset,
        template: UtilityTemplate,
        config: SystemConfig,
        counters: Optional[Counters],
        hash_function: Optional[HashFunction],
        signer: Optional[Signer],
        epoch: int = 0,
    ) -> None:
        """State shared by fresh construction and artifact reconstruction."""
        if len(dataset) == 0:
            raise ConstructionError("cannot build an IFMH-tree over an empty dataset")
        if epoch < 0:
            raise ConstructionError(f"epoch must be >= 0, got {epoch}")
        self.config = config
        self.dataset = dataset
        self.template = template
        self.mode = config.scheme
        self.bind_intersections = config.bind_intersections
        self.counters = counters or Counters()
        self.hash_function = hash_function or HashFunction(self.counters)
        self.signer = signer
        self.hash_consing = config.hash_consing
        self.batch_hashing = config.batch_hashing
        #: ADS epoch: 0 for an initial build, bumped by every applied update
        #: batch and bound into all signed messages from epoch 1 on.
        self.epoch = int(epoch)
        #: Set only on artifact-loaded trees: the shared arena plus the
        #: per-subdomain data needed to attach a leaf's FMH view on first
        #: use (queries touch a handful of subdomains; the rest never pay).
        self._lazy_forest = None
        #: Batched-build forest handles ``(arena, root_indices, row_ids)``
        #: in ``leaves()`` order, kept for the incremental-update path.
        self._batched_forest = None
        self._batched_leaf_map = None
        #: Set by the incremental updater: everything the *next* update
        #: needs without touching (or materializing) the node structures.
        self._incremental_state = None
        self.records_by_id: Dict[int, Record] = {}
        for record in dataset:
            if record.record_id in self.records_by_id:
                raise ConstructionError(
                    f"duplicate record id {record.record_id} in dataset; every record "
                    "must have a unique id for the FMH leaf lists to be well-defined"
                )
            self.records_by_id[record.record_id] = record

    # ------------------------------------------------------------- step 2
    def _attach_fmh_trees(self, engine: Optional[MerkleBuildEngine]) -> None:
        """Build one FMH-tree per subdomain leaf over its sorted record list.

        With hash-consing enabled every tree shares the construction
        engine's tables, so only structure not seen in any earlier
        subdomain is physically hashed; the batched engine additionally
        advances all trees level by level through the array arena instead
        of walking them one node at a time.
        """
        if engine is not None and engine.batched and self.itree.shared_order is not None:
            self._attach_fmh_trees_batched(engine)
            return
        records_by_id = self.records_by_id
        hash_function = self.hash_function
        for leaf in self.itree.leaves():
            sorted_records = [records_by_id[f.index] for f in leaf.sorted_functions]
            leaf.fmh_tree = FMHTree(sorted_records, hash_function=hash_function, engine=engine)
            leaf.hash_value = leaf.fmh_tree.root

    def _attach_fmh_trees_batched(self, engine: MerkleBuildEngine) -> None:
        """Level-order batched step 2 over the shared permutation array.

        Every subdomain's FMH-tree covers the same ``n + 2`` leaves
        (``f_min``, the n records in that subdomain's order, ``f_max``), so
        the whole forest is one integer matrix: row ``t`` holds leaf ``t``'s
        arena leaf indices, assembled by fancy-indexing the I-tree's shared
        permutation array.  The engine advances all rows one level at a
        time and hashes each level's new preimages in one bulk pass.
        """
        shared = self.itree.shared_order
        hash_function = self.hash_function
        records_by_id = self.records_by_id
        leaves = list(self.itree.leaves())
        #: Records in base (ascending record-id) order -- position p holds
        #: the record of shared.functions[p], so permutation rows apply.
        ordered_records = [records_by_id[f.index] for f in shared.functions]
        payloads = [record.to_bytes() for record in ordered_records]
        payloads.append(MIN_TOKEN)
        payloads.append(MAX_TOKEN)
        leaf_indices = engine.intern_leaf_batch(payloads, hash_function)
        record_leaf_index = leaf_indices[:-2]
        min_index, max_index = int(leaf_indices[-2]), int(leaf_indices[-1])
        #: record id -> arena leaf index, free to stash here and exactly
        #: what the incremental-update path needs to splice new leaf rows.
        self._batched_leaf_map = (
            {
                record.record_id: int(index)
                for record, index in zip(ordered_records, record_leaf_index)
            },
            min_index,
            max_index,
        )

        tree_count = len(leaves)
        leaf_count = len(ordered_records) + 2
        row_ids = np.fromiter(
            (leaf.sorted_functions.row_index for leaf in leaves), dtype=np.int64, count=tree_count
        )
        # int32 halves the resident footprint at n = 2000 (the builder
        # widens to int64 chunk by chunk for the shifted pair keys).
        leaf_matrix = np.empty((tree_count, leaf_count), dtype=np.int32)
        leaf_matrix[:, 0] = min_index
        leaf_matrix[:, -1] = max_index
        for start in range(0, tree_count, 65536):
            stop = start + 65536
            leaf_matrix[start:stop, 1:-1] = record_leaf_index[
                shared.permutation[row_ids[start:stop]]
            ]
        roots = engine.build_forest(leaf_matrix, hash_function)
        arena = engine.finalize_arena()
        self._batched_forest = (arena, roots, row_ids)
        for leaf, root_index in zip(leaves, roots.tolist()):
            view = ArenaMerkleTree(arena, root_index, leaf_count, hash_function=hash_function)
            sorted_records = PermutedView(
                ordered_records, leaf.sorted_functions.row, leaf.sorted_functions.row_index
            )
            leaf.fmh_tree = FMHTree.from_prebuilt(sorted_records, view, hash_function)
            leaf.hash_value = view.root

    # ------------------------------------------------------------- step 3
    def _propagate_hashes(self) -> None:
        """Compute intersection-node hashes bottom-up (paper step 3).

        Bulk-built trees with a batched forest take the level-wise array
        propagation (:func:`repro.ifmh.propagation.propagate_batched`);
        everything else falls back to the paper's per-node stack walk.
        Digests and both hash counters are bit-identical either way.
        """
        from repro.ifmh.propagation import propagate_batched

        if propagate_batched(self):
            return
        stack = [self.itree.root]
        while stack:
            node = stack[-1]
            if node.is_subdomain:
                stack.pop()
                continue
            above, below = node.above, node.below
            missing = [child for child in (above, below) if child.hash_value is None]
            if missing:
                stack.extend(missing)
                continue
            node.hash_value = self._intersection_hash(node)
            stack.pop()

    def _intersection_hash(self, node: ITreeNode) -> bytes:
        if self.bind_intersections:
            return self.hash_function.combine(
                node.hyperplane.to_bytes(), node.above.hash_value, node.below.hash_value
            )
        return self.hash_function.combine(node.above.hash_value, node.below.hash_value)

    # ------------------------------------------------------------- step 4
    def signed_root_message(self) -> bytes:
        """The message the one-signature root signature covers.

        Epoch 0 signs the raw root hash (the paper's rule, unchanged for
        initial builds); later epochs bind the epoch token into the message
        so a stale pre-update root cannot be replayed against a client that
        knows the current epoch.
        """
        if self.epoch == 0:
            return self.root_hash
        return epoch_bound_combine(self.hash_function, self.epoch, self.root_hash)

    def _sign(self, signer: Signer) -> None:
        if self.mode == ONE_SIGNATURE:
            self.root_signature = signer.sign(self.signed_root_message())
            self.counters.add_signature_created()
            return
        for leaf in self.itree.leaves():
            leaf.signature = signer.sign(self.subdomain_digest(leaf))
            self.counters.add_signature_created()

    def subdomain_digest(self, leaf: ITreeNode) -> bytes:
        """Multi-signature message for a subdomain node.

        The paper hashes the subdomain's inequality set, concatenates the
        result with the subdomain node's hash (its FMH root) and hashes
        again; the final digest is what gets signed.  From epoch 1 on the
        epoch token is combined in as well (see :meth:`signed_root_message`).
        """
        if self._lazy_forest is not None:
            self._ensure_leaf(leaf)
        inequality_hash = self.hash_function.digest(leaf.region.constraint_bytes())
        return epoch_bound_combine(
            self.hash_function, self.epoch, inequality_hash, leaf.hash_value
        )

    # --------------------------------------------------------------- codecs
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Serialize the full ADS into flat arrays (artifact export).

        The result bundles the I-tree structure arrays
        (:meth:`repro.itree.itree.ITree.to_arrays`), the FMH forest in
        arena form (``arena_*`` plus one root index per subdomain, in
        subdomain order), every intersection node's hash (pre-order) and --
        in multi-signature mode -- the per-subdomain signatures.  Builds
        that did not go through the batched engine are re-encoded into an
        equivalent arena by value, without hashing anything
        (:func:`repro.merkle.arena.arena_from_level_trees`).
        """
        leaves = list(self._materialized_leaves())
        arrays = self.itree.to_arrays()
        first_tree = leaves[0].fmh_tree.tree
        if isinstance(first_tree, ArenaMerkleTree):
            arena = first_tree.arena
            root_indices = np.fromiter(
                (leaf.fmh_tree.tree.root_index for leaf in leaves),
                dtype=np.int64,
                count=len(leaves),
            )
        else:
            arena, root_indices = arena_from_level_trees(
                [leaf.fmh_tree.tree for leaf in leaves]
            )
        arena_arrays = arena.to_arrays()
        arrays["arena_digests"] = arena_arrays["digests"]
        # Child indices fit int32 far below the arena's 2^32-node cap; the
        # loader widens back to int64.  Halves the on-disk index volume.
        child_dtype = np.int32 if len(arena) < 2**31 else np.int64
        arrays["arena_left"] = arena_arrays["left"].astype(child_dtype)
        arrays["arena_right"] = arena_arrays["right"].astype(child_dtype)
        arrays["leaf_root_index"] = root_indices.astype(child_dtype)

        intersection_hashes = [
            node.hash_value for node in self.itree.root.iter_subtree() if node.is_intersection
        ]
        blob = b"".join(intersection_hashes)
        arrays["intersection_hash"] = np.frombuffer(blob, dtype=np.uint8).reshape(
            len(intersection_hashes), self.hash_function.digest_size
        )
        if self.mode == MULTI_SIGNATURE:
            signatures = [leaf.signature for leaf in leaves]
            if any(signature is None for signature in signatures):
                raise ConstructionError("cannot serialize an unsigned multi-signature tree")
            sizes = {len(signature) for signature in signatures}
            if len(sizes) != 1:
                raise ConstructionError("subdomain signatures disagree on size")
            arrays["leaf_signature"] = np.frombuffer(
                b"".join(signatures), dtype=np.uint8
            ).reshape(len(signatures), sizes.pop())
        return arrays

    @classmethod
    def from_arrays(
        cls,
        dataset: Dataset,
        template: UtilityTemplate,
        arrays: Dict[str, np.ndarray],
        *,
        config: SystemConfig,
        root_signature: Optional[bytes] = None,
        builder: str = "auto",
        counters: Optional[Counters] = None,
        engine: Optional[SplitEngine] = None,
        epoch: int = 0,
        require_signatures: bool = True,
    ) -> "IFMHTree":
        """Rebuild a fully functional tree from :meth:`to_arrays` output.

        **Nothing is re-hashed**: every digest (subdomain FMH roots,
        intersection hashes, the signed root) comes straight out of the
        loaded arrays, so the fresh counters attached to the returned tree
        stay at zero and subsequent queries produce verification objects
        and cost counters bit-identical to the original in-process build.
        Per-subdomain FMH views (and lazily loaded leaf regions) attach on
        first query touch -- a cold-started server pays for the subdomains
        it serves, not the whole forest.  The private signing key never
        ships in an artifact, so the loaded tree carries signatures but no
        signer.
        """
        if not config.is_ifmh:
            raise ConstructionError(
                f"IFMH arrays require an IFMH scheme, got {config.scheme!r}"
            )
        self = cls.__new__(cls)
        self._init_common(dataset, template, config, counters, None, None, epoch)
        self.merkle_engine_stats = None
        self._load_arrays(
            arrays,
            builder=builder,
            engine=engine,
            root_signature=root_signature,
            require_signatures=require_signatures,
        )
        return self

    def _load_arrays(
        self,
        arrays: Dict[str, np.ndarray],
        *,
        builder: str,
        engine: Optional[SplitEngine],
        root_signature: Optional[bytes],
        require_signatures: bool,
    ) -> None:
        """Attach the array-form ADS to ``self`` (see :meth:`from_arrays`)."""
        dataset = self.dataset
        template = self.template
        config = self.config
        if engine is None:
            engine = config.make_engine(template.domain)
        functions = template.functions_for(dataset)
        self.itree = ITree.from_arrays(
            functions,
            template.domain,
            arrays,
            engine=engine,
            counters=self.counters,
            builder=builder,
        )
        internal_nodes = self.itree.loaded_internal_nodes
        leaf_nodes = self.itree.loaded_leaf_nodes

        arena = MerkleArena.from_arrays(
            arrays["arena_digests"], arrays["arena_left"], arrays["arena_right"]
        )
        root_index_array = np.asarray(arrays["leaf_root_index"], dtype=np.int64)
        if root_index_array.shape[0] != len(leaf_nodes):
            raise ConstructionError(
                "artifact root-index array does not cover every subdomain"
            )
        if root_index_array.size and (
            root_index_array.min() < 0 or root_index_array.max() >= len(arena)
        ):
            raise ConstructionError("artifact root indices reference nonexistent nodes")
        digest_size = self.hash_function.digest_size
        intersection_matrix = np.ascontiguousarray(
            arrays["intersection_hash"], dtype=np.uint8
        )
        if intersection_matrix.shape != (len(internal_nodes), digest_size):
            raise ConstructionError("artifact hash arrays do not match the I-tree shape")

        # Stored hashes are attached in bulk: one blob slice per node, no
        # tree traversal (the loaders kept pre-order node lists).
        intersection_blob = intersection_matrix.tobytes()
        for position, node in enumerate(internal_nodes):
            start = position * digest_size
            node.hash_value = intersection_blob[start : start + digest_size]
        root_blob = arena.digests[root_index_array].tobytes()
        for position, node in enumerate(leaf_nodes):
            start = position * digest_size
            node.hash_value = root_blob[start : start + digest_size]
        if self.mode == MULTI_SIGNATURE and (
            require_signatures or "leaf_signature" in arrays
        ):
            # The update path reconstructs first and signs at the new epoch
            # afterwards (require_signatures=False); artifact loads always
            # carry the published signatures.
            matrix = np.ascontiguousarray(arrays["leaf_signature"], dtype=np.uint8)
            if matrix.shape[0] != len(leaf_nodes):
                raise ConstructionError(
                    "multi-signature artifact carries a signature count that does "
                    "not match its subdomain count"
                )
            width = matrix.shape[1]
            signature_blob = matrix.tobytes()
            for position, node in enumerate(leaf_nodes):
                node.signature = signature_blob[position * width : (position + 1) * width]

        ordered_records = [self.records_by_id[f.index] for f in self.itree.shared_order.functions]
        self._lazy_forest = (
            arena,
            len(ordered_records) + 2,
            ordered_records,
            root_index_array.tolist(),
        )
        self.root_signature = root_signature

    # ----------------------------------------------------- deferred updates
    @classmethod
    def from_update(
        cls,
        dataset: Dataset,
        template: UtilityTemplate,
        arrays: Dict[str, np.ndarray],
        *,
        config: SystemConfig,
        counters: Optional[Counters],
        engine: Optional[SplitEngine],
        epoch: int,
        root_hash: bytes,
        subdomain_count: int,
        signer: Optional[Signer] = None,
    ) -> "IFMHTree":
        """An incrementally updated tree whose node structures load lazily.

        The changed-path update (:mod:`repro.ifmh.updates`) already knows
        the new root digest, subdomain count and every array of the new
        ADS; rebuilding the I-tree node skeleton eagerly would cost more
        than the rest of the update.  It is deferred instead: the first
        access to :attr:`itree` (a search, a metrics walk, ``to_arrays``)
        triggers the same :meth:`from_arrays` reconstruction an artifact
        load performs.  Signing does not force it -- the root hash is
        served from the update's propagation pass.
        """
        self = cls.__new__(cls)
        self._init_common(dataset, template, config, counters, None, signer, epoch)
        self.merkle_engine_stats = None
        self.root_signature = None
        self._deferred_load = (arrays, engine)
        self._deferred_root_hash = root_hash
        self._deferred_subdomain_count = int(subdomain_count)
        return self

    def _materialize_deferred(self) -> None:
        """Run the deferred :meth:`from_arrays` reconstruction (idempotent)."""
        payload = self.__dict__.pop("_deferred_load", None)
        if payload is None:
            return
        arrays, engine = payload
        self._load_arrays(
            arrays,
            builder="bulk",
            engine=engine,
            root_signature=self.root_signature,
            require_signatures=False,
        )

    def __getattr__(self, name: str):
        # Only ever reached for attributes not yet set: a deferred update
        # has no ``itree`` until something touches the node structures.
        if name == "itree" and "_deferred_load" in self.__dict__:
            self._materialize_deferred()
            return self.__dict__["itree"]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _ensure_leaf(self, leaf: ITreeNode) -> None:
        """Attach a lazily loaded subdomain's region and FMH view (idempotent)."""
        if leaf.fmh_tree is not None or self._lazy_forest is None:
            return
        self.itree.materialize_leaf(leaf)
        arena, fmh_leaf_count, ordered_records, root_indices = self._lazy_forest
        view = ArenaMerkleTree(
            arena, root_indices[leaf.subdomain_id], fmh_leaf_count, self.hash_function
        )
        ordered = leaf.sorted_functions
        sorted_records = PermutedView(ordered_records, ordered.row, ordered.row_index)
        leaf.fmh_tree = FMHTree.from_prebuilt(sorted_records, view, self.hash_function)

    def _materialized_leaves(self):
        """All subdomain leaves, forcing lazy attachment (metrics paths)."""
        for leaf in self.itree.leaves():
            self._ensure_leaf(leaf)
            yield leaf

    # ------------------------------------------------------------ accessors
    @property
    def root_hash(self) -> bytes:
        if "_deferred_load" in self.__dict__:
            return self._deferred_root_hash
        if self.itree.root.hash_value is None:
            raise ConstructionError("hash propagation has not run")
        return self.itree.root.hash_value

    @property
    def subdomain_count(self) -> int:
        if "_deferred_load" in self.__dict__:
            return self._deferred_subdomain_count
        return self.itree.subdomain_count

    @property
    def imh_node_count(self) -> int:
        """Nodes of the IMH-tree (intersection + subdomain nodes)."""
        return self.itree.node_count

    @property
    def fmh_node_count(self) -> int:
        """Total nodes across every FMH-tree."""
        return sum(leaf.fmh_tree.node_count for leaf in self._materialized_leaves())

    @property
    def node_count(self) -> int:
        """All nodes of the combined structure."""
        return self.imh_node_count + self.fmh_node_count

    @property
    def signature_count(self) -> int:
        """Number of signatures the structure carries (Fig. 5a).

        Counts what is actually attached, so artifact-loaded trees (which
        carry signatures but no signer) report the same number as the
        build that published them.
        """
        if self.mode == ONE_SIGNATURE:
            return 0 if self.root_signature is None else 1
        if self.signer is None and self._lazy_forest is None:
            return 0
        return self.subdomain_count

    def search(self, weights: Sequence[float], counters: Optional[Counters] = None) -> SearchTrace:
        """Locate the subdomain containing ``weights`` (delegates to the I-tree).

        On artifact-loaded trees the landed subdomain's FMH view and region
        are attached here, so every consumer of the returned trace sees a
        fully materialized leaf.
        """
        trace = self.itree.search(weights, counters=counters)
        if self._lazy_forest is not None:
            self._ensure_leaf(trace.leaf)
        return trace

    def leaf_scores(self, leaf: ITreeNode, weights: Sequence[float]) -> np.ndarray:
        """Scores of a subdomain's sorted functions at ``weights``, as one matvec.

        The leaf's ``(coefficient_matrix, constant_vector)`` pair is built on
        first use and cached on the node, so the per-query hot path is a
        single ``A @ w + b`` instead of a Python loop over score functions.
        The result is ascending (the functions are sorted) and, for the
        univariate configuration, *bit-identical* to
        ``[f.evaluate(weights) for f in leaf.sorted_functions]``.

        For d >= 2 a BLAS matvec can differ from the per-row ``np.dot`` used
        by :meth:`LinearFunction.evaluate` by an ulp, which could flip a
        window boundary on an exact score tie; those dimensions therefore
        evaluate per function (they run at small n under the LP engine, so
        the Python loop is not the bottleneck there).
        """
        if self.template.dimension > 1:
            return np.array(
                [f.evaluate(weights) for f in leaf.sorted_functions], dtype=float
            )
        cached = leaf.score_cache
        if cached is None:
            shared = self.itree.shared_order
            ordered = leaf.sorted_functions
            if shared is not None and isinstance(ordered, PermutedView):
                # One fancy-index into the shared per-function arrays --
                # the same float64 values the per-object rebuild produces.
                matrix = shared.coefficient_matrix[ordered.row]
                constants = shared.constant_vector[ordered.row]
            else:
                matrix = np.array([f.coefficients for f in ordered], dtype=float)
                constants = np.array([f.constant for f in ordered], dtype=float)
            cached = leaf.score_cache = (matrix, constants)
        matrix, constants = cached
        return matrix @ np.asarray(weights, dtype=float) + constants

    # ----------------------------------------------------------------- size
    def size_breakdown(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> Dict[str, int]:
        """Byte-size breakdown of the serialized structure (Fig. 5c)."""
        dimension = self.template.dimension
        intersection_nodes = self.imh_node_count - self.subdomain_count
        imh_bytes = intersection_nodes * (
            size_model.hyperplane_size(dimension)
            + 2 * size_model.pointer_size
            + size_model.hash_size
        ) + self.subdomain_count * (2 * size_model.pointer_size + size_model.hash_size)
        fmh_bytes = self.fmh_node_count * (size_model.hash_size + 3 * size_model.pointer_size)
        record_refs = sum(leaf.fmh_tree.item_count for leaf in self._materialized_leaves())
        list_bytes = record_refs * size_model.pointer_size
        signature_bytes = self.signature_count * size_model.signature_size
        return {
            "imh_bytes": imh_bytes,
            "fmh_bytes": fmh_bytes,
            "sorted_list_bytes": list_bytes,
            "signature_bytes": signature_bytes,
        }

    def size_bytes(self, size_model: SizeModel = DEFAULT_SIZE_MODEL) -> int:
        """Total serialized size in bytes."""
        return sum(self.size_breakdown(size_model).values())
