"""Contiguous result windows over a sorted score list.

A :class:`ResultWindow` describes which slice of the subdomain's sorted
function list satisfies a query.  The window may be empty (``start > end``),
in which case the verification object still proves completeness via the two
records that bracket the empty gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import InvalidQueryError
from repro.core.queries import AnalyticQuery, KNNQuery, RangeQuery, TopKQuery

__all__ = ["ResultWindow", "select_window"]


@dataclass(frozen=True)
class ResultWindow:
    """A contiguous, inclusive index window ``[start, end]`` of a sorted list.

    ``start > end`` (canonically ``start = end + 1``) encodes an empty
    result; ``start``/``end`` always stay within ``[0, size)`` for
    non-empty windows.
    """

    start: int
    end: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("list size cannot be negative")
        if not self.is_empty and not (
            0 <= self.start < self.size and 0 <= self.end < self.size
        ):
            raise ValueError(
                f"window [{self.start}, {self.end}] out of bounds for size {self.size}"
            )

    @property
    def is_empty(self) -> bool:
        return self.start > self.end

    @property
    def length(self) -> int:
        """Number of records in the window."""
        return 0 if self.is_empty else self.end - self.start + 1

    def indices(self) -> range:
        """The window as a range of positions into the sorted list."""
        if self.is_empty:
            return range(0)
        return range(self.start, self.end + 1)

    @classmethod
    def empty_at(cls, gap_position: int, size: int) -> "ResultWindow":
        """An empty window located just before ``gap_position``.

        The boundary records proving completeness are then positions
        ``gap_position - 1`` and ``gap_position``.
        """
        return cls(start=gap_position, end=gap_position - 1, size=size)

    @property
    def left_boundary_position(self) -> int:
        """Position of the record immediately left of the window (may be -1)."""
        return self.start - 1

    @property
    def right_boundary_position(self) -> int:
        """Position immediately right of the window (may be ``size``)."""
        return self.end + 1


def select_window(query: AnalyticQuery, scores: Sequence[float]) -> ResultWindow:
    """Dispatch to the window selector for the query's type.

    ``scores`` must be the scores of the subdomain's sorted function list
    evaluated at the query's weight vector (ascending order).
    """
    from repro.queryproc.knn import knn_window
    from repro.queryproc.range_query import range_window
    from repro.queryproc.topk import topk_window

    if isinstance(query, TopKQuery):
        return topk_window(scores, query.k)
    if isinstance(query, RangeQuery):
        return range_window(scores, query.low, query.high)
    if isinstance(query, KNNQuery):
        return knn_window(scores, query.k, query.target)
    raise InvalidQueryError(f"unsupported query type {type(query).__name__}")
