"""Top-k window selection.

A top-k query returns the k records with the *highest* scores; on an
ascending sorted list that is the suffix of length k.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import InvalidQueryError
from repro.queryproc.window import ResultWindow

__all__ = ["topk_window"]


def topk_window(scores: Sequence[float], k: int) -> ResultWindow:
    """Window of the ``k`` highest-scoring positions of an ascending list.

    When ``k`` is at least the list length the whole list is returned (the
    paper's semantics: "all records whose scores are among the top k").
    """
    if k < 1:
        raise InvalidQueryError(f"top-k requires k >= 1, got {k}")
    size = len(scores)
    if size == 0:
        return ResultWindow.empty_at(0, 0)
    start = max(0, size - k)
    return ResultWindow(start=start, end=size - 1, size=size)
