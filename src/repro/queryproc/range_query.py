"""Score-range window selection.

A range query ``(X, l, u)`` returns the records whose scores at ``X`` fall
inside ``[l, u]``.  On the ascending sorted list this is the contiguous
window found by two binary searches.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.core.errors import InvalidQueryError
from repro.queryproc.window import ResultWindow

__all__ = ["range_window"]


def range_window(scores: Sequence[float], low: float, high: float) -> ResultWindow:
    """Window of positions whose score lies in ``[low, high]`` (inclusive).

    Returns an empty window positioned at the gap when no score qualifies,
    so the verification object can still prove completeness with the two
    bracketing records.
    """
    if low > high:
        raise InvalidQueryError(f"range lower boundary {low} exceeds upper boundary {high}")
    size = len(scores)
    if size == 0:
        return ResultWindow.empty_at(0, 0)
    start = bisect.bisect_left(scores, low)
    end = bisect.bisect_right(scores, high) - 1
    if start > end:
        return ResultWindow.empty_at(start, size)
    return ResultWindow(start=start, end=end, size=size)
