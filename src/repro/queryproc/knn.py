"""KNN-on-score window selection.

A KNN query ``(X, k, y)`` returns the k records whose scores at ``X`` are
nearest to the target value ``y``.  Because the candidate list is sorted,
the k nearest scores always form a contiguous window around the insertion
point of ``y``; the window is grown greedily one element at a time, always
taking the closer of the two frontier elements (ties prefer the left / lower
score, a deterministic rule shared by server and verifying client).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import InvalidQueryError
from repro.queryproc.window import ResultWindow

__all__ = ["knn_window"]


def knn_window(scores: Sequence[float], k: int, target: float) -> ResultWindow:
    """Window of the ``k`` scores nearest to ``target`` on an ascending list."""
    if k < 1:
        raise InvalidQueryError(f"KNN requires k >= 1, got {k}")
    size = len(scores)
    if size == 0:
        return ResultWindow.empty_at(0, 0)
    if k >= size:
        return ResultWindow(start=0, end=size - 1, size=size)

    import bisect

    insertion = bisect.bisect_left(scores, target)
    left = insertion - 1
    right = insertion
    for _ in range(k):
        if left < 0:
            right += 1
        elif right >= size:
            left -= 1
        elif abs(scores[left] - target) <= abs(scores[right] - target):
            left -= 1
        else:
            right += 1
    return ResultWindow(start=left + 1, end=right - 1, size=size)
