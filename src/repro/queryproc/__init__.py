"""Query processing on a sorted function list.

Inside the subdomain containing the query's weight vector the score
functions form a fixed ascending order, so every supported analytic query
(top-k, range, KNN) selects a *contiguous window* of that order.  This
package computes the window; the authenticated structures only need the
window's boundaries.
"""

from repro.queryproc.window import ResultWindow, select_window
from repro.queryproc.topk import topk_window
from repro.queryproc.range_query import range_window
from repro.queryproc.knn import knn_window

__all__ = [
    "ResultWindow",
    "select_window",
    "topk_window",
    "range_window",
    "knn_window",
]
