"""Generic Merkle hash tree with the paper's odd-node carry rule.

The FMH-tree of the paper (section 3.1, step 2) is built layer by layer:
every two adjacent nodes get a common parent whose hash is
``H(left.h | right.h)``; when a layer has an odd number of nodes "the last
node will be linked to the tree in the next round", i.e. it is carried to
the next layer unchanged.  This module implements that exact shape plus two
kinds of proofs:

* :class:`MembershipProof` -- the classic authentication path for a single
  leaf;
* :class:`RangeProof` -- the minimal set of off-range node hashes needed to
  recompute the root from a *contiguous* range of leaf values, which is what
  a verification object for a windowed query result needs (the query result
  plus its two boundary records form such a range).

Verification never trusts hashes it can recompute: node hashes inside the
proven range are always recomputed from the supplied leaves, so a forged or
dropped record changes the reconstructed root (the paper's security
argument, section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from repro.crypto.hashing import HashFunction

__all__ = ["MerkleTree", "MembershipProof", "RangeProof", "level_sizes"]


def level_sizes(leaf_count: int) -> list[int]:
    """Node counts per level for a tree over ``leaf_count`` leaves.

    Level 0 holds the leaves; the top level holds a single root.  A level
    of size 1 terminates the tree (a single leaf is its own root).
    """
    if leaf_count <= 0:
        raise ValueError("a Merkle tree needs at least one leaf")
    sizes = [leaf_count]
    while sizes[-1] > 1:
        sizes.append((sizes[-1] + 1) // 2)
    return sizes


@dataclass(frozen=True)
class MembershipProof:
    """Authentication path for one leaf.

    ``siblings`` lists ``(level, index, hash)`` entries bottom-up; levels or
    positions where the climbing node is carried (no sibling) contribute no
    entry.
    """

    leaf_index: int
    leaf_count: int
    siblings: tuple[tuple[int, int, bytes], ...]

    def node_count(self) -> int:
        """Number of hashes shipped in this proof."""
        return len(self.siblings)


@dataclass(frozen=True)
class RangeProof:
    """Everything needed to recompute the root from a contiguous leaf range.

    ``supplements`` lists ``(level, index, hash)`` for every node outside
    the range whose hash is required; the in-range leaf hashes themselves
    are *not* included -- the verifier recomputes them from the records it
    received.
    """

    start: int
    end: int
    leaf_count: int
    supplements: tuple[tuple[int, int, bytes], ...]

    def node_count(self) -> int:
        """Number of hashes shipped in this proof."""
        return len(self.supplements)


class MerkleTree:
    """A Merkle hash tree over a fixed sequence of leaf hashes.

    Parameters
    ----------
    leaf_hashes:
        The (already hashed) leaves, level 0 of the tree.
    hash_function:
        Counting SHA-256 wrapper (a fresh uncounted one by default).
    node_cache:
        Optional hash-consing table mapping ``(left_digest, right_digest)``
        to the parent digest, shared across trees by the construction
        engine (:class:`repro.merkle.engine.MerkleBuildEngine`).  A cache
        hit skips the SHA-256 invocation but still counts as one *logical*
        hash operation, so counter-based figures are unchanged; carried odd
        nodes are never hashed and never enter the cache.  The resulting
        tree is bit-identical with or without a cache.
    """

    def __init__(
        self,
        leaf_hashes: Sequence[bytes],
        hash_function: Optional[HashFunction] = None,
        node_cache: Optional[MutableMapping[Tuple[bytes, bytes], bytes]] = None,
    ):
        if len(leaf_hashes) == 0:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._hash = hash_function or HashFunction()
        self.levels: List[List[bytes]] = [list(leaf_hashes)]
        # The cache is only consulted during construction; it is deliberately
        # not stored on the instance so the engine's tables can be freed once
        # the owning construction drops them.
        self._build(node_cache)

    # ---------------------------------------------------------------- build
    def _build(self, cache: Optional[MutableMapping[Tuple[bytes, bytes], bytes]]) -> None:
        combine = self._hash.combine
        current = self.levels[0]
        while len(current) > 1:
            parents: List[bytes] = []
            if cache is None:
                for position in range(0, len(current) - 1, 2):
                    parents.append(combine(current[position], current[position + 1]))
            else:
                lookup = cache.get
                hits = 0
                for position in range(0, len(current) - 1, 2):
                    key = (current[position], current[position + 1])
                    value = lookup(key)
                    if value is None:
                        value = combine(*key)
                        cache[key] = value
                    else:
                        hits += 1
                    parents.append(value)
                if hits:
                    self._hash.note_cached(hits)
            if len(current) % 2 == 1:
                # Odd-node carry: the last node joins the next layer unchanged.
                parents.append(current[-1])
            self.levels.append(parents)
            current = parents

    # ------------------------------------------------------------ accessors
    @property
    def leaf_count(self) -> int:
        return len(self.levels[0])

    @property
    def height(self) -> int:
        """Number of levels, including the leaf level."""
        return len(self.levels)

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    @property
    def node_count(self) -> int:
        """Total number of nodes across all levels."""
        return sum(len(level) for level in self.levels)

    def leaf_hash(self, index: int) -> bytes:
        return self.levels[0][index]

    # --------------------------------------------------------------- proofs
    def membership_proof(self, leaf_index: int) -> MembershipProof:
        """Authentication path proving that leaf ``leaf_index`` is in the tree."""
        if not (0 <= leaf_index < self.leaf_count):
            raise IndexError(f"leaf index {leaf_index} out of range")
        siblings: list[tuple[int, int, bytes]] = []
        index = leaf_index
        for level in range(len(self.levels) - 1):
            size = len(self.levels[level])
            if index == size - 1 and size % 2 == 1:
                # Carried node: no sibling at this level.
                index //= 2
                continue
            sibling = index + 1 if index % 2 == 0 else index - 1
            siblings.append((level, sibling, self.levels[level][sibling]))
            index //= 2
        return MembershipProof(
            leaf_index=leaf_index, leaf_count=self.leaf_count, siblings=tuple(siblings)
        )

    def range_proof(self, start: int, end: int) -> RangeProof:
        """Proof for the contiguous leaf range ``[start, end]`` (inclusive)."""
        if not (0 <= start <= end < self.leaf_count):
            raise IndexError(
                f"range [{start}, {end}] out of bounds for {self.leaf_count} leaves"
            )
        supplements: list[tuple[int, int, bytes]] = []
        known = set(range(start, end + 1))
        for level in range(len(self.levels) - 1):
            size = len(self.levels[level])
            parents: set[int] = set()
            for index in sorted(known):
                parent = index // 2
                parents.add(parent)
                if index == size - 1 and size % 2 == 1:
                    continue  # carried node, no sibling
                sibling = index + 1 if index % 2 == 0 else index - 1
                if sibling not in known:
                    supplements.append((level, sibling, self.levels[level][sibling]))
                    known.add(sibling)
            known = parents
        return RangeProof(
            start=start, end=end, leaf_count=self.leaf_count, supplements=tuple(supplements)
        )

    # --------------------------------------------------------- verification
    @staticmethod
    def root_from_membership(
        leaf_hash: bytes,
        proof: MembershipProof,
        hash_function: Optional[HashFunction] = None,
    ) -> bytes:
        """Recompute the root implied by a membership proof."""
        hashes = hash_function or HashFunction()
        sizes = level_sizes(proof.leaf_count)
        sibling_map: Dict[Tuple[int, int], bytes] = {
            (level, index): value for level, index, value in proof.siblings
        }
        index = proof.leaf_index
        current = leaf_hash
        for level in range(len(sizes) - 1):
            size = sizes[level]
            if index == size - 1 and size % 2 == 1:
                index //= 2
                continue
            sibling = index + 1 if index % 2 == 0 else index - 1
            try:
                sibling_hash = sibling_map[(level, sibling)]
            except KeyError:
                raise ValueError(
                    f"membership proof is missing the sibling at level {level}, index {sibling}"
                ) from None
            current = (
                hashes.combine(current, sibling_hash)
                if index % 2 == 0
                else hashes.combine(sibling_hash, current)
            )
            index //= 2
        return current

    @staticmethod
    def root_from_range(
        leaf_hashes: Sequence[bytes],
        proof: RangeProof,
        hash_function: Optional[HashFunction] = None,
    ) -> bytes:
        """Recompute the root implied by a range proof.

        ``leaf_hashes`` must be the hashes of the leaves ``start..end`` in
        order; every other hash the computation needs must appear in the
        proof's supplements, otherwise a :class:`ValueError` is raised.
        """
        if len(leaf_hashes) != proof.end - proof.start + 1:
            raise ValueError(
                f"expected {proof.end - proof.start + 1} leaf hashes, got {len(leaf_hashes)}"
            )
        hashes = hash_function or HashFunction()
        sizes = level_sizes(proof.leaf_count)
        values: Dict[Tuple[int, int], bytes] = {
            (0, proof.start + offset): value for offset, value in enumerate(leaf_hashes)
        }
        for level, index, value in proof.supplements:
            if not (0 <= level < len(sizes)) or not (0 <= index < sizes[level]):
                raise ValueError(f"range proof refers to nonexistent node ({level}, {index})")
            key = (level, index)
            if key in values and values[key] != value:
                raise ValueError(f"range proof contradicts recomputed node {key}")
            values.setdefault(key, value)

        known = {index for level, index in values if level == 0}
        for level in range(len(sizes) - 1):
            size = sizes[level]
            parents: set[int] = set()
            for index in sorted(known):
                parent = index // 2
                if parent in parents:
                    continue
                left = 2 * parent
                right = 2 * parent + 1
                if right >= size:
                    # Carried node: parent value equals the single child's value.
                    if (level, left) not in values:
                        raise ValueError(
                            f"cannot recompute node ({level + 1}, {parent}): missing child"
                        )
                    values[(level + 1, parent)] = values[(level, left)]
                else:
                    if (level, left) not in values or (level, right) not in values:
                        raise ValueError(
                            f"cannot recompute node ({level + 1}, {parent}): missing child hash"
                        )
                    values[(level + 1, parent)] = hashes.combine(
                        values[(level, left)], values[(level, right)]
                    )
                parents.add(parent)
            known = parents
        return values[(len(sizes) - 1, 0)]
