"""Array-backed Merkle forest arena and level-order batched construction.

The IFMH construction (paper section 3.1, step 2) builds one FMH-tree per
subdomain, and every one of those trees has the *same shape*: each
subdomain's sorted list holds all ``n`` records bracketed by the two
boundary tokens, so every tree is a Merkle tree over exactly ``n + 2``
leaves.  PR 2's node-at-a-time engine already eliminated the redundant
SHA-256 work; at thousand-record scale the remaining cost is pure Python
per-node overhead -- one method call, one tuple key and one dict probe per
logical node, times Theta(n^3) logical nodes.

This module removes that overhead with two pieces:

* :class:`MerkleArena` -- a flat node store: one ``(count, 32)`` uint8
  digest matrix plus two integer child-index arrays.  A node is an integer;
  structure shared between subdomain trees is shared by index, so the whole
  forest costs Theta(distinct nodes) memory instead of Theta(total nodes)
  object references.

* :class:`ForestHasher` -- a level-order batched builder.  The forest is
  represented as a 2-D matrix of digest indices (one row per tree, one
  column per node of the current level) and advanced one level at a time
  across *all* trees at once: pair keys are formed vectorially, cells equal
  to the cell one row above are deduplicated without touching Python (in
  subdomain order adjacent trees differ by a single transposition, so
  almost every cell is such a repeat), and the few genuinely new pairs per
  level are hashed in one bulk pass
  (:func:`repro.crypto.hashing.sha256_many`) over a contiguous preimage
  buffer.

Counting semantics are identical to the node-at-a-time engine: every pair
slot of every level of every tree is one *logical* hash operation (what
Fig. 5a/7a report), while only the first occurrence of a ``(left, right)``
digest pair costs a *physical* SHA-256 invocation.  Roots, levels, proofs
and counters are bit-for-bit the values the per-tree
:class:`~repro.merkle.mh_tree.MerkleTree` build produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crypto.hashing import DIGEST_SIZE, HashFunction
from repro.merkle.mh_tree import MerkleTree, level_sizes

__all__ = [
    "MerkleArena",
    "ArenaMerkleTree",
    "ForestHasher",
    "DeltaForestHasher",
    "arena_from_level_trees",
]

#: 8-byte big-endian length prefix of one digest, replicating the
#: unambiguous ``H(len(x) | x | len(y) | y)`` framing of
#: :meth:`repro.crypto.hashing.HashFunction.combine` for two-digest parents.
_DIGEST_LENGTH_PREFIX = DIGEST_SIZE.to_bytes(8, "big")

#: Bytes of one two-digest combine preimage (two prefixes + two digests).
_PAIR_PREIMAGE_SIZE = 2 * (8 + DIGEST_SIZE)

#: Upper bound on ``rows * level_width`` per processed chunk of the forest
#: matrix (bounds peak memory of the vectorized level step).
_CHUNK_ELEMENTS = 8_000_000


class MerkleArena:
    """Finalized flat node store for a forest of Merkle trees.

    ``digests`` is a ``(count, 32)`` uint8 matrix; ``left`` / ``right``
    hold the child node indices of internal nodes and ``-1`` for leaves.
    Carried odd nodes (the paper's carry rule) are not separate nodes: a
    carried node appears in several levels of a tree under the same index.
    """

    __slots__ = ("digests", "left", "right")

    def __init__(self, digests: np.ndarray, left: np.ndarray, right: np.ndarray):
        if digests.shape[0] != left.shape[0] or left.shape[0] != right.shape[0]:
            raise ValueError("digest and child arrays disagree on node count")
        self.digests = digests
        self.left = left
        self.right = right

    def __len__(self) -> int:
        return self.digests.shape[0]

    def digest_bytes(self, index: int) -> bytes:
        """The 32-byte digest of one node."""
        return self.digests[index].tobytes()

    # -------------------------------------------------------------- codecs
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The arena's backing arrays, ready for serialization.

        The returned arrays are the live backing store (no copy); artifact
        writers treat them as read-only.
        """
        return {"digests": self.digests, "left": self.left, "right": self.right}

    @classmethod
    def from_arrays(
        cls, digests: np.ndarray, left: np.ndarray, right: np.ndarray
    ) -> "MerkleArena":
        """Rebuild an arena from serialized arrays (shape-validated)."""
        digests = np.ascontiguousarray(digests, dtype=np.uint8)
        left = np.ascontiguousarray(left, dtype=np.int64)
        right = np.ascontiguousarray(right, dtype=np.int64)
        if digests.ndim != 2 or digests.shape[1] != DIGEST_SIZE:
            raise ValueError(
                f"arena digest matrix must be (count, {DIGEST_SIZE}), got {digests.shape}"
            )
        count = digests.shape[0]
        for name, child in (("left", left), ("right", right)):
            if child.ndim != 1 or child.shape[0] != count:
                raise ValueError(f"arena {name}-child array does not match {count} nodes")
            if child.size and (child.min() < -1 or child.max() >= count):
                raise ValueError(f"arena {name}-child array references nonexistent nodes")
        return cls(digests=digests, left=left, right=right)

    # ------------------------------------------------------------ traversal
    def index_levels(self, root_index: int, leaf_count: int) -> List[np.ndarray]:
        """Node-index levels (bottom-up: leaves first) of one tree.

        The tree shape is fully determined by ``leaf_count`` (see
        :func:`repro.merkle.mh_tree.level_sizes`), so the levels are
        reconstructed top-down from the child indices: paired parents
        expand into two children, and when a level has odd size its last
        node is the carried node of the level below (same index).
        """
        sizes = level_sizes(leaf_count)
        levels = [np.array([root_index], dtype=np.int64)]
        for level in range(len(sizes) - 1, 0, -1):
            parents = levels[-1]
            child_size = sizes[level - 1]
            paired = child_size // 2
            children = np.empty(child_size, dtype=np.int64)
            children[0 : 2 * paired : 2] = self.left[parents[:paired]]
            children[1 : 2 * paired : 2] = self.right[parents[:paired]]
            if child_size % 2 == 1:
                children[-1] = parents[-1]
            levels.append(children)
        levels.reverse()
        return levels

    def byte_levels(self, root_index: int, leaf_count: int) -> List[List[bytes]]:
        """The tree's levels as lists of digest bytes (MerkleTree layout)."""
        result: List[List[bytes]] = []
        for indices in self.index_levels(root_index, leaf_count):
            flat = self.digests[indices].tobytes()
            result.append(
                [flat[i * DIGEST_SIZE : (i + 1) * DIGEST_SIZE] for i in range(len(indices))]
            )
        return result


class ArenaMerkleTree(MerkleTree):
    """Lazy :class:`MerkleTree` view over an arena-resident tree.

    Exposes the exact node-object API (``levels``, ``root``, proofs) of a
    tree built leaf-up, but materializes the per-level digest lists only on
    first use -- queries touch a handful of subdomains, so the Theta(total
    nodes) list-of-bytes representation is never built for the rest of the
    forest.  Proof construction and verification are inherited unchanged
    from :class:`MerkleTree`, so verification objects are bit-identical.
    """

    def __init__(
        self,
        arena: MerkleArena,
        root_index: int,
        leaf_count: int,
        hash_function: Optional[HashFunction] = None,
    ):
        # Deliberately does not call MerkleTree.__init__: nothing is hashed
        # and no levels are stored until a proof needs them.
        self._hash = hash_function or HashFunction()
        self._arena = arena
        self._root_index = root_index
        self._leaf_count = leaf_count
        self._materialized: Optional[List[List[bytes]]] = None

    # ------------------------------------------------------------ accessors
    @property
    def arena(self) -> MerkleArena:
        """The shared arena this view reads from (artifact export)."""
        return self._arena

    @property
    def root_index(self) -> int:
        """Arena node index of this tree's root (artifact export)."""
        return self._root_index

    @property
    def levels(self) -> List[List[bytes]]:  # type: ignore[override]
        if self._materialized is None:
            self._materialized = self._arena.byte_levels(self._root_index, self._leaf_count)
        return self._materialized

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    @property
    def height(self) -> int:
        return len(level_sizes(self._leaf_count))

    @property
    def root(self) -> bytes:
        return self._arena.digest_bytes(self._root_index)

    @property
    def node_count(self) -> int:
        return sum(level_sizes(self._leaf_count))

    def leaf_hash(self, index: int) -> bytes:
        return self.levels[0][index]


class _NodeStore:
    """Growable backing arrays for digests and child indices."""

    __slots__ = ("digests", "left", "right", "size")

    def __init__(self, capacity: int = 1024):
        self.digests = np.empty((capacity, DIGEST_SIZE), dtype=np.uint8)
        self.left = np.full(capacity, -1, dtype=np.int64)
        self.right = np.full(capacity, -1, dtype=np.int64)
        self.size = 0

    def reserve(self, count: int) -> int:
        """Grow to fit ``count`` more nodes; return the first new index."""
        start = self.size
        needed = start + count
        if needed > 1 << 32:
            # Pair-cache keys pack two node indices into one int64
            # ((left << 32) | right); past 2^32 nodes they would collide.
            raise OverflowError("Merkle arena exceeds 2^32 nodes")
        capacity = self.digests.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            digests = np.empty((capacity, DIGEST_SIZE), dtype=np.uint8)
            digests[:start] = self.digests[:start]
            left = np.full(capacity, -1, dtype=np.int64)
            left[:start] = self.left[:start]
            right = np.full(capacity, -1, dtype=np.int64)
            right[:start] = self.right[:start]
            self.digests, self.left, self.right = digests, left, right
        self.size = needed
        return start

    def append_pair_nodes(
        self, left_index: np.ndarray, right_index: np.ndarray, hash_function: HashFunction
    ) -> int:
        """Reserve, hash and store one parent node per ``(left, right)`` pair.

        Assembles the ``H(len(x) | x | len(y) | y)`` two-digest preimages
        into one contiguous buffer, hashes them in a single bulk pass and
        writes digests plus child indices into the reserved slots; returns
        the first new index.  Shared by the full level-order builder and
        the changed-path delta builder so the pair framing exists in
        exactly one place.
        """
        count = int(left_index.shape[0])
        start = self.reserve(count)
        digests = self.digests
        buffer = np.empty((count, _PAIR_PREIMAGE_SIZE), dtype=np.uint8)
        prefix = np.frombuffer(_DIGEST_LENGTH_PREFIX, dtype=np.uint8)
        buffer[:, 0:8] = prefix
        buffer[:, 8 : 8 + DIGEST_SIZE] = digests[left_index]
        buffer[:, 8 + DIGEST_SIZE : 16 + DIGEST_SIZE] = prefix
        buffer[:, 16 + DIGEST_SIZE :] = digests[right_index]
        # Buffer rows go to the bulk hasher directly (hashlib accepts any
        # C-contiguous buffer) -- no per-row memoryview slicing.
        new_digests = hash_function.digest_batch(buffer)
        digests[start : start + count] = np.frombuffer(
            b"".join(new_digests), dtype=np.uint8
        ).reshape(count, DIGEST_SIZE)
        self.left[start : start + count] = left_index
        self.right[start : start + count] = right_index
        return start


class ForestHasher:
    """Level-order batched construction of many equal-shape Merkle trees.

    One instance lives for one ADS construction.  Leaf preimages are
    interned once (:meth:`intern_leaves`); the forest is then built level
    by level across all trees at once (:meth:`build_forest`), and
    :meth:`finalize` freezes the node store into a :class:`MerkleArena`
    that the per-subdomain :class:`ArenaMerkleTree` views share.

    ``workers > 1`` builds the forest's contiguous row shards in forked
    worker processes and merges them deterministically
    (:mod:`repro.merkle.parallel`); roots, digests and both hash counters
    are bit-identical at any worker count, so the knob is purely a
    wall-clock decision and never part of the system configuration.
    """

    def __init__(self, workers: int = 1) -> None:
        self._store = _NodeStore()
        #: ``digest -> node index`` for leaf digests, so equal-valued leaves
        #: share one node exactly like the value-keyed node cache would.
        self._digest_index: Dict[bytes, int] = {}
        #: ``(left_index << 32) | right_index -> parent index``.
        self._pair_cache: Dict[int, int] = {}
        #: Globally distinct internal nodes (== ``len(_pair_cache)`` after
        #: serial builds; the parallel merge counts without the dict).
        self._distinct_pairs = 0
        #: Leaf digest requests already counted (logically and physically)
        #: by :meth:`intern_leaves` and not yet credited against a forest's
        #: per-(tree, leaf) logical accounting.
        self._uncredited_leaf_ops = 0
        self._interned_payloads = 0
        self._leaf_requests = 0
        self._workers = max(1, int(workers))
        #: Set after a parallel build: the pair cache no longer mirrors the
        #: store, so further forest builds on this instance are refused.
        self._sealed = False
        self._arena: Optional[MerkleArena] = None

    # ------------------------------------------------------------------ API
    def intern_leaves(self, payloads: Sequence[bytes], hash_function: HashFunction) -> np.ndarray:
        """Digest and intern leaf preimages; return their node indices.

        Every payload is physically hashed exactly once (one bulk pass),
        matching the per-object accounting of the node-at-a-time engine's
        leaf pool; payloads whose digests collide in value share one arena
        node so that pair consing stays value-exact.
        """
        if self._arena is not None:
            raise RuntimeError("the forest has been finalized; no more leaves can be interned")
        digests = hash_function.digest_batch(payloads)
        self._uncredited_leaf_ops += len(digests)
        self._interned_payloads += len(digests)
        indices = np.empty(len(digests), dtype=np.int64)
        index_of = self._digest_index
        store = self._store
        for position, digest in enumerate(digests):
            known = index_of.get(digest)
            if known is None:
                known = store.reserve(1)
                store.digests[known] = np.frombuffer(digest, dtype=np.uint8)
                index_of[digest] = known
            indices[position] = known
        return indices

    def build_forest(self, leaf_matrix: np.ndarray, hash_function: HashFunction) -> np.ndarray:
        """Build every tree of the forest; return per-tree root node indices.

        ``leaf_matrix`` has one row per tree and one leaf node index per
        column (all trees share one leaf count, the IFMH invariant).  The
        matrix is processed in row chunks; within a chunk each level is
        advanced with three vectorized passes (pair keys, repeat-of-row-
        above dedup, parent scatter/forward-fill) and one bulk hash over
        the level's genuinely new pairs.
        """
        if self._arena is not None:
            raise RuntimeError("the forest has been finalized; no more trees can be built")
        if self._sealed:
            raise RuntimeError(
                "this forest hasher already built a forest in parallel; its pair "
                "cache no longer mirrors the store, so build with a new instance"
            )
        if leaf_matrix.ndim != 2:
            raise ValueError("leaf_matrix must be 2-D (trees x leaves)")
        tree_count, leaf_count = leaf_matrix.shape
        if leaf_count == 0:
            raise ValueError("a Merkle tree needs at least one leaf")
        # Logical accounting for the leaf level: one operation per
        # (tree, leaf) slot, exactly like one digest request per leaf of
        # every tree; the interned first occurrences were already counted.
        self._leaf_requests += tree_count * leaf_count
        credited = min(self._uncredited_leaf_ops, tree_count * leaf_count)
        self._uncredited_leaf_ops -= credited
        hash_function.note_cached(tree_count * leaf_count - credited)

        if (
            self._workers > 1
            and leaf_count > 1
            and not self._pair_cache
            and self._distinct_pairs == 0
        ):
            from repro.merkle.parallel import (
                build_forest_sharded,
                fork_available,
                shard_bounds,
            )

            bounds = shard_bounds(tree_count, leaf_count, self._workers)
            if len(bounds) > 1 and fork_available():
                self._sealed = True
                return build_forest_sharded(self, leaf_matrix, bounds, hash_function)

        roots = np.empty(tree_count, dtype=np.int64)
        chunk_rows = max(1, _CHUNK_ELEMENTS // leaf_count)
        for start in range(0, tree_count, chunk_rows):
            current = leaf_matrix[start : start + chunk_rows].astype(np.int64, copy=True)
            width = leaf_count
            while width > 1:
                paired = width // 2
                current = self._advance_level(current, paired, width - 2 * paired, hash_function)
                width = paired + (width - 2 * paired)
            roots[start : start + current.shape[0]] = current[:, 0]
        return roots

    def finalize(self) -> MerkleArena:
        """Freeze the node store into the arena shared by all tree views.

        The intern and pair tables are dropped -- only the flat digest and
        child arrays survive, which is what the lazy views need.
        """
        if self._arena is None:
            size = self._store.size
            self._arena = MerkleArena(
                digests=self._store.digests[:size],
                left=self._store.left[:size],
                right=self._store.right[:size],
            )
            self._digest_index = {}
        return self._arena

    def stats(self) -> Dict[str, int]:
        """Table sizes and hit rates, in the node-at-a-time engine's shape."""
        return {
            "leaf_pool_entries": self._interned_payloads,
            "leaf_pool_hits": self._leaf_requests - self._interned_payloads,
            "leaf_pool_misses": self._interned_payloads,
            "distinct_internal_nodes": self._distinct_pairs,
        }

    # ------------------------------------------------------------ internals
    def _advance_level(
        self, current: np.ndarray, paired: int, odd: int, hash_function: HashFunction
    ) -> np.ndarray:
        """One level step for a chunk: pair, dedup, bulk-hash, scatter."""
        rows = current.shape[0]
        keys = (current[:, 0 : 2 * paired : 2] << np.int64(32)) | current[:, 1 : 2 * paired : 2]
        # A cell equal to the cell one row above is the same (left, right)
        # pair and therefore the same parent; only "fresh" cells need the
        # pair cache.  Adjacent subdomain trees differ by one transposition,
        # so fresh cells are Theta(1) per row.
        fresh = np.empty((rows, paired), dtype=bool)
        fresh[0, :] = True
        np.not_equal(keys[1:], keys[:-1], out=fresh[1:])
        fresh_rows, fresh_cols = np.nonzero(fresh)
        fresh_keys = keys[fresh_rows, fresh_cols]

        cache = self._pair_cache
        cache_get = cache.get
        fresh_parents = np.empty(fresh_keys.shape[0], dtype=np.int64)
        new_keys: List[int] = []
        new_first = self._store.size
        next_new = new_first
        for position, key in enumerate(fresh_keys.tolist()):
            parent = cache_get(key)
            if parent is None:
                parent = next_new
                next_new += 1
                cache[key] = parent
                new_keys.append(key)
            fresh_parents[position] = parent
        if new_keys:
            self._hash_new_pairs(new_keys, hash_function)
        hash_function.note_cached(rows * paired - len(new_keys))

        # Scatter the fresh parents, then forward-fill repeats down columns.
        parents = np.zeros((rows, paired), dtype=np.int64)
        parents[fresh_rows, fresh_cols] = fresh_parents
        if rows > 1:
            last_fresh = np.where(fresh, np.arange(rows)[:, None], 0)
            np.maximum.accumulate(last_fresh, axis=0, out=last_fresh)
            parents = parents[last_fresh, np.arange(paired)[None, :]]
        if odd:
            parents = np.concatenate([parents, current[:, -1:]], axis=1)
        return parents

    def _hash_new_pairs(self, new_keys: List[int], hash_function: HashFunction) -> None:
        """Bulk-hash the level's new pairs and append them to the store."""
        self._distinct_pairs += len(new_keys)
        key_array = np.asarray(new_keys, dtype=np.int64)
        self._store.append_pair_nodes(
            key_array >> np.int64(32), key_array & np.int64(0xFFFFFFFF), hash_function
        )


#: Bits reserved for the tree index in the delta builder's packed
#: ``(column, tree)`` entry keys; forests are far below 2^40 trees.
_TREE_BITS = 40


class DeltaForestHasher:
    """Changed-path rebuild of an equal-shape Merkle forest against a seed arena.

    The incremental-update path (:mod:`repro.ifmh.updates`) knows the *new*
    forest's leaf matrix only in change-point form: tree 0's full leaf row
    plus, for every later tree, the cells that differ from the tree before
    it (adjacent subdomains differ by a couple of cells).  This builder
    advances all trees one level at a time exactly like
    :class:`ForestHasher`, but it represents every level sparsely as sorted
    ``(column, tree, node)`` change entries, so the work per level is
    proportional to the number of *changed* cells -- Theta(trees * log n)
    for a single-record update -- instead of the full ``trees x width``
    matrix.

    Pairs already present in the seed arena are reused by index (no SHA-256
    runs); only pairs that exist in no seeded tree are hashed, in one bulk
    pass per level, and appended to the node store.  The finalized arena
    therefore *extends* the seed arena: every old node keeps its index, so
    lazy views over the previous forest remain valid, and the appended tail
    is exactly what a delta artifact ships.
    """

    def __init__(
        self,
        seed: MerkleArena,
        pair_tables: Optional[tuple] = None,
    ) -> None:
        count = len(seed)
        self._seed_size = count
        self._store = _NodeStore(capacity=max(1024, count))
        self._store.reserve(count)
        self._store.digests[:count] = seed.digests
        self._store.left[:count] = seed.left
        self._store.right[:count] = seed.right
        if pair_tables is not None:
            # Sorted pair tables carried over from the previous update
            # (see :meth:`sorted_pair_tables`) -- skips the argsort.
            self._seed_keys, self._seed_parents = pair_tables
        else:
            # Seed pair table in vectorized form: sorted packed (left,
            # right) keys of every internal node, probed with searchsorted.
            internal = np.nonzero(seed.left >= 0)[0]
            keys = (seed.left[internal] << np.int64(32)) | seed.right[internal]
            order = np.argsort(keys, kind="stable")
            self._seed_keys = keys[order]
            self._seed_parents = internal[order]
        # Pairs appended during this build, in the same sorted-key form.
        self._new_keys = np.empty(0, dtype=np.int64)
        self._new_parents = np.empty(0, dtype=np.int64)
        self._leaf_index: Optional[Dict[bytes, int]] = None
        self._arena: Optional[MerkleArena] = None

    def sorted_pair_tables(self) -> tuple:
        """Merged sorted ``(keys, parents)`` covering seed plus new pairs.

        Hand these to the next update's :class:`DeltaForestHasher` so it
        starts with ready-made lookup tables.
        """
        if self._new_keys.shape[0] == 0:
            return self._seed_keys, self._seed_parents
        slots = np.searchsorted(self._seed_keys, self._new_keys)
        keys = np.insert(self._seed_keys, slots, self._new_keys)
        parents = np.insert(self._seed_parents, slots, self._new_parents)
        return keys, parents

    # ------------------------------------------------------------------ API
    def intern_leaf(self, payload: bytes, hash_function: HashFunction) -> int:
        """Digest one new leaf payload and return its (deduplicated) node index.

        Matches :meth:`ForestHasher.intern_leaves` semantics: the payload is
        hashed once; if a leaf with the same digest already exists in the
        seeded store it is reused so pair consing stays value-exact.
        """
        if self._arena is not None:
            raise RuntimeError("the forest has been finalized; no more leaves can be interned")
        if self._leaf_index is None:
            store = self._store
            leaves = np.nonzero(store.left[: store.size] < 0)[0]
            self._leaf_index = {
                store.digests[int(index)].tobytes(): int(index) for index in leaves
            }
        digest = hash_function.digest(payload)
        known = self._leaf_index.get(digest)
        if known is None:
            known = self._store.reserve(1)
            self._store.digests[known] = np.frombuffer(digest, dtype=np.uint8)
            self._leaf_index[digest] = known
        return int(known)

    def leaf_index_of(self, digest: bytes) -> Optional[int]:
        """Node index of an existing leaf digest (``None`` when absent)."""
        store = self._store
        if self._leaf_index is None:
            leaves = np.nonzero(store.left[: store.size] < 0)[0]
            self._leaf_index = {
                store.digests[int(index)].tobytes(): int(index) for index in leaves
            }
        return self._leaf_index.get(digest)

    def build(
        self,
        base_row: np.ndarray,
        change_tree: np.ndarray,
        change_col: np.ndarray,
        change_value: np.ndarray,
        tree_count: int,
        hash_function: HashFunction,
    ) -> np.ndarray:
        """Build every tree of the change-point forest; return root indices.

        ``base_row`` is tree 0's full leaf row (node indices, length = the
        shared leaf count); ``(change_tree, change_col, change_value)``
        lists the cells where tree ``t >= 1`` differs from tree ``t - 1``.
        Redundant entries (a listed cell whose value does not actually
        change) are tolerated and compressed away.
        """
        if self._arena is not None:
            raise RuntimeError("the forest has been finalized; no more trees can be built")
        width = int(base_row.shape[0])
        if width < 1:
            raise ValueError("a Merkle tree needs at least one leaf")
        if tree_count < 1:
            raise ValueError("the forest needs at least one tree")
        if np.any(change_tree < 1) or np.any(change_tree >= tree_count):
            raise ValueError("change entries must reference trees 1..tree_count-1")
        tree_bits = np.int64(_TREE_BITS)
        columns = np.concatenate(
            [np.arange(width, dtype=np.int64), np.asarray(change_col, dtype=np.int64)]
        )
        trees = np.concatenate(
            [np.zeros(width, dtype=np.int64), np.asarray(change_tree, dtype=np.int64)]
        )
        values = np.concatenate(
            [np.asarray(base_row, dtype=np.int64), np.asarray(change_value, dtype=np.int64)]
        )
        order = np.argsort((columns << tree_bits) | trees, kind="stable")
        columns, trees, values = columns[order], trees[order], values[order]

        while width > 1:
            paired = width // 2
            odd = width - 2 * paired
            entry_keys = (columns << tree_bits) | trees
            in_pair = columns < 2 * paired
            # Candidate parent cells: one per changed child cell, deduped.
            candidate_keys = np.unique(
                ((columns[in_pair] >> 1) << tree_bits) | trees[in_pair]
            )
            cand_col = candidate_keys >> tree_bits
            cand_tree = candidate_keys & ((np.int64(1) << tree_bits) - 1)
            # Child values at (2c, t) / (2c+1, t): latest change entry with
            # that column and tree <= t.  Every column has a tree-0 entry,
            # so the searchsorted probe always lands inside the column.
            left_at = np.searchsorted(
                entry_keys, ((cand_col * 2) << tree_bits) | cand_tree, side="right"
            )
            right_at = np.searchsorted(
                entry_keys, ((cand_col * 2 + 1) << tree_bits) | cand_tree, side="right"
            )
            left_value = values[left_at - 1]
            right_value = values[right_at - 1]
            parent_value = self._resolve_pairs(left_value, right_value, hash_function)

            next_columns = cand_col
            next_trees = cand_tree
            next_values = parent_value
            if odd:
                carried = columns == width - 1
                next_columns = np.concatenate(
                    [next_columns, np.full(int(carried.sum()), paired, dtype=np.int64)]
                )
                next_trees = np.concatenate([next_trees, trees[carried]])
                next_values = np.concatenate([next_values, values[carried]])
                order = np.argsort(
                    (next_columns << tree_bits) | next_trees, kind="stable"
                )
                next_columns = next_columns[order]
                next_trees = next_trees[order]
                next_values = next_values[order]
            # Compress: drop entries whose value equals the previous entry
            # of the same column (no actual change; tree-0 entries survive
            # because they open their column).
            keep = np.empty(next_columns.shape[0], dtype=bool)
            keep[0] = True
            np.not_equal(next_values[1:], next_values[:-1], out=keep[1:])
            keep[1:] |= next_columns[1:] != next_columns[:-1]
            columns = next_columns[keep]
            trees = next_trees[keep]
            values = next_values[keep]
            width = paired + odd

        roots = np.repeat(values, np.diff(np.append(trees, tree_count)))
        if roots.shape[0] != tree_count:  # pragma: no cover - internal invariant
            raise RuntimeError("delta forest produced a malformed root sequence")
        return roots

    def finalize(self) -> MerkleArena:
        """Freeze the extended node store into an arena (seed nodes first)."""
        if self._arena is None:
            size = self._store.size
            self._arena = MerkleArena(
                digests=self._store.digests[:size],
                left=self._store.left[:size],
                right=self._store.right[:size],
            )
            self._leaf_index = None
        return self._arena

    @property
    def appended_nodes(self) -> int:
        """Nodes added on top of the seed arena (delta-artifact tail size)."""
        return self._store.size - self._seed_size

    # ------------------------------------------------------------ internals
    def _resolve_pairs(
        self, left_value: np.ndarray, right_value: np.ndarray, hash_function: HashFunction
    ) -> np.ndarray:
        """Map ``(left, right)`` child pairs to parent node indices.

        Pairs found in the seed arena (or appended earlier in this build)
        are cache hits; the rest are hashed in one bulk pass and appended.
        """
        pair_keys = (left_value << np.int64(32)) | right_value
        parents = np.empty(pair_keys.shape[0], dtype=np.int64)
        missing = np.ones(pair_keys.shape[0], dtype=bool)
        for keys, targets in ((self._seed_keys, self._seed_parents), (self._new_keys, self._new_parents)):
            if keys.shape[0] == 0:
                continue
            at = np.searchsorted(keys, pair_keys)
            at[at == keys.shape[0]] = keys.shape[0] - 1
            hit = missing & (keys[at] == pair_keys)
            parents[hit] = targets[at[hit]]
            missing &= ~hit
        miss_keys = pair_keys[missing]
        if miss_keys.shape[0]:
            order = np.argsort(miss_keys, kind="stable")
            sorted_miss = miss_keys[order]
            first = np.empty(sorted_miss.shape[0], dtype=bool)
            first[0] = True
            np.not_equal(sorted_miss[1:], sorted_miss[:-1], out=first[1:])
            group = np.cumsum(first) - 1
            fresh_keys = sorted_miss[first]
            start = self._store.append_pair_nodes(
                fresh_keys >> np.int64(32),
                fresh_keys & np.int64(0xFFFFFFFF),
                hash_function,
            )
            fresh_parents = np.arange(
                start, start + fresh_keys.shape[0], dtype=np.int64
            )
            scattered = np.empty(sorted_miss.shape[0], dtype=np.int64)
            scattered[order] = fresh_parents[group]
            parents[missing] = scattered
            merged = np.concatenate([self._new_keys, fresh_keys])
            merged_parents = np.concatenate([self._new_parents, fresh_parents])
            order = np.argsort(merged, kind="stable")
            self._new_keys = merged[order]
            self._new_parents = merged_parents[order]
            hash_function.note_cached(pair_keys.shape[0] - fresh_keys.shape[0])
        else:
            hash_function.note_cached(pair_keys.shape[0])
        return parents

def arena_from_level_trees(trees: Sequence[MerkleTree]) -> tuple[MerkleArena, np.ndarray]:
    """Re-encode materialized Merkle trees into one shared arena (no hashing).

    The artifact writer (:mod:`repro.core.artifact`) always publishes the
    FMH forest in arena form.  Builds that went through the batched engine
    already live in an arena; builds with ``batch_hashing=False`` (or
    ``hash_consing=False``) hold ordinary per-subdomain
    :class:`~repro.merkle.mh_tree.MerkleTree` objects, which this function
    folds into an equivalent arena purely by value: leaves are interned by
    digest, internal nodes by their ``(left, right)`` child indices --
    exactly the sharing rule of :class:`ForestHasher` -- so no SHA-256 runs
    and the per-tree levels reconstructed from the arena are bit-identical
    to the originals.

    Returns ``(arena, root_indices)`` with one root index per input tree.
    """
    digests: List[bytes] = []
    left: List[int] = []
    right: List[int] = []
    digest_index: Dict[bytes, int] = {}
    pair_index: Dict[tuple[int, int], int] = {}
    roots = np.empty(len(trees), dtype=np.int64)
    for position, tree in enumerate(trees):
        levels = tree.levels
        below: List[int] = []
        for digest in levels[0]:
            index = digest_index.get(digest)
            if index is None:
                index = len(digests)
                digests.append(digest)
                left.append(-1)
                right.append(-1)
                digest_index[digest] = index
            below.append(index)
        for level in levels[1:]:
            current: List[int] = []
            for slot, digest in enumerate(level):
                first = 2 * slot
                if first + 1 < len(below):
                    key = (below[first], below[first + 1])
                    index = pair_index.get(key)
                    if index is None:
                        index = len(digests)
                        digests.append(digest)
                        left.append(key[0])
                        right.append(key[1])
                        pair_index[key] = index
                    current.append(index)
                else:
                    # Odd-node carry: same node, one level up.
                    current.append(below[first])
            below = current
        roots[position] = below[0]
    digest_matrix = np.frombuffer(b"".join(digests), dtype=np.uint8).reshape(
        len(digests), DIGEST_SIZE
    )
    arena = MerkleArena(
        digests=digest_matrix,
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
    )
    return arena, roots
