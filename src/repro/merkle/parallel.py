"""Multiprocess sharded construction of the batched Merkle forest.

:meth:`repro.merkle.arena.ForestHasher.build_forest` advances the whole
forest level by level; the heavy per-level work (pair-key dedup, the pair
cache probe, the bulk SHA-256 pass) touches only rows of one chunk at a
time, so contiguous row ranges can build independently.  Each worker runs
the *identical* serial algorithm over its shard with a private node store
seeded with the parent's interned leaves, ships its appended nodes back
through one shared-memory segment, and the parent merges the shards in
shard order into the single flat arena.

Determinism argument
--------------------
Within a shard the worker appends internal nodes in first-local-occurrence
order -- exactly the order the serial build discovers them while scanning
that row range.  The merge walks shards in row order and each shard's
appended nodes in append order, assigning a fresh global index only to
pairs no earlier shard produced; node numbering is therefore the global
first-occurrence order of the scan with the shard boundaries as chunk
boundaries.  When shards align with the serial chunk grid (always the case
once the forest spans multiple chunks), that order *is* the serial build's
order and the merged arena is byte-identical to the single-process one; in
every case roots, per-tree digests, verification objects and both hash
counters are bit-identical at any worker count, because digests depend
only on values and the counters are credited from the merged totals:
logical = one operation per pair slot of every tree, physical = one
SHA-256 per globally distinct ``(left, right)`` pair, the exact serial
semantics (duplicate cross-shard hashing inside workers uses throwaway
counters and is never reported).

Failure containment
-------------------
Workers create their shared-memory segment only when their shard is
complete and unlink it themselves on any earlier failure; the parent
unlinks every received segment in a ``finally`` and converts a dead or
failing worker into a :class:`~repro.core.errors.ConstructionError` naming
the shard, so a poisoned shard can neither hang the build nor leak
``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from multiprocessing import shared_memory
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import ConstructionError
from repro.crypto.hashing import DIGEST_SIZE, HashFunction

__all__ = ["fork_available", "shard_bounds", "build_forest_sharded"]

#: Seconds between liveness checks while draining worker results.
_POLL_SECONDS = 0.2


def fork_available() -> bool:
    """Whether fork-based workers are usable on this platform.

    The sharded build relies on copy-on-write inheritance of the leaf
    matrix and the interned leaf digests (nothing is pickled); without the
    ``fork`` start method the dispatcher stays serial.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def shard_bounds(tree_count: int, leaf_count: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` row ranges for ``workers`` shards.

    Boundaries land on the serial builder's chunk grid whenever the forest
    spans at least ``workers`` chunks, which makes the merged arena
    byte-identical to the serial one (see the module determinism note);
    smaller forests fall back to an even row split so the machinery still
    parallelizes (and stays digest- and counter-identical).
    """
    from repro.merkle.arena import _CHUNK_ELEMENTS

    chunk_rows = max(1, _CHUNK_ELEMENTS // leaf_count)
    total_chunks = -(-tree_count // chunk_rows)
    if total_chunks >= workers:
        base, extra = divmod(total_chunks, workers)
        bounds = []
        start_chunk = 0
        for shard in range(workers):
            stop_chunk = start_chunk + base + (1 if shard < extra else 0)
            bounds.append(
                (start_chunk * chunk_rows, min(stop_chunk * chunk_rows, tree_count))
            )
            start_chunk = stop_chunk
    else:
        share = min(workers, tree_count)
        base, extra = divmod(tree_count, share)
        bounds = []
        start = 0
        for shard in range(share):
            stop = start + base + (1 if shard < extra else 0)
            bounds.append((start, stop))
            start = stop
    return [(start, stop) for start, stop in bounds if start < stop]


def internal_pair_slots(leaf_count: int) -> int:
    """Pair slots per tree above the leaf level (one logical hash each)."""
    width = leaf_count
    slots = 0
    while width > 1:
        paired = width // 2
        slots += paired
        width = paired + (width - 2 * paired)
    return slots


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _build_shard(
    shard_index: int,
    leaf_rows: np.ndarray,
    leaf_digests: np.ndarray,
    leaf_nodes: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Run the serial level-order build over one shard's rows.

    Returns ``(digests, left, right, batch_sizes, local_roots)`` for the
    nodes appended on top of the ``leaf_nodes`` seeded leaves; child ids
    and roots are in the worker's local numbering (< ``leaf_nodes`` means
    a shared leaf node).  Split out from the process entry point so tests
    can poison a shard deterministically.
    """
    from repro.merkle.arena import ForestHasher

    local = ForestHasher()
    local._store.reserve(leaf_nodes)
    local._store.digests[:leaf_nodes] = leaf_digests
    batch_sizes: List[int] = []
    inner = local._hash_new_pairs  # bound class method

    def recording(new_keys, hash_function):
        batch_sizes.append(len(new_keys))
        inner(new_keys, hash_function)

    local._hash_new_pairs = recording  # instance attribute shadows the method
    # Throwaway counters: the parent credits the merged totals, so the
    # worker's (partly redundant cross-shard) hashing is never reported.
    local_roots = local.build_forest(leaf_rows, HashFunction())
    size = local._store.size
    return (
        local._store.digests[leaf_nodes:size],
        local._store.left[leaf_nodes:size],
        local._store.right[leaf_nodes:size],
        np.asarray(batch_sizes, dtype=np.int64),
        local_roots,
    )


def _shard_worker(
    shard_index: int,
    leaf_rows: np.ndarray,
    leaf_digests: np.ndarray,
    leaf_nodes: int,
    results: "multiprocessing.queues.Queue",
) -> None:
    """Process entry point: build one shard, publish it via shared memory.

    The segment is created only once the shard is fully built; on any
    failure before hand-off the worker unlinks its own segment and reports
    the error, so the parent never waits on a dead shard nor leaks
    ``/dev/shm`` entries (the parent unlinks every segment it was told
    about).
    """
    segment = None
    try:
        digests, left, right, batch_sizes, local_roots = _build_shard(
            shard_index, leaf_rows, leaf_digests, leaf_nodes
        )
        parts = (digests, left, right, batch_sizes, local_roots)
        blobs = [np.ascontiguousarray(part).tobytes() for part in parts]
        total = max(1, sum(len(blob) for blob in blobs))
        segment = shared_memory.SharedMemory(create=True, size=total)
        cursor = 0
        for blob in blobs:
            segment.buf[cursor : cursor + len(blob)] = blob
            cursor += len(blob)
        results.put(
            (
                "ok",
                shard_index,
                segment.name,
                int(digests.shape[0]),
                int(batch_sizes.shape[0]),
                int(local_roots.shape[0]),
            )
        )
        segment.close()
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        try:
            results.put(("error", shard_index, f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            # The parent is gone or closed the queue; its exitcode watch
            # will still classify this worker's death.
            pass
        raise SystemExit(1)


def _unpack_shard(
    segment: shared_memory.SharedMemory, appended: int, batches: int, roots: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Views over one shard's published arrays (copy before unlinking)."""
    buf = segment.buf
    cursor = 0

    def take(count: int, dtype, shape) -> np.ndarray:
        nonlocal cursor
        size = count * np.dtype(dtype).itemsize
        array = np.frombuffer(buf, dtype=dtype, offset=cursor, count=count).reshape(shape)
        cursor += size
        return array

    digests = take(appended * DIGEST_SIZE, np.uint8, (appended, DIGEST_SIZE))
    left = take(appended, np.int64, (appended,))
    right = take(appended, np.int64, (appended,))
    batch_sizes = take(batches, np.int64, (batches,))
    local_roots = take(roots, np.int64, (roots,))
    return digests, left, right, batch_sizes, local_roots


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
def build_forest_sharded(
    hasher,
    leaf_matrix: np.ndarray,
    bounds: Sequence[Tuple[int, int]],
    hash_function: HashFunction,
) -> np.ndarray:
    """Fork one worker per shard, merge the shards, credit the counters.

    ``hasher`` is the parent :class:`~repro.merkle.arena.ForestHasher`,
    holding only interned leaves (the dispatch guard enforces this).
    Returns the per-tree root node indices, exactly as the serial build
    numbers them when the bounds sit on the chunk grid.
    """
    context = multiprocessing.get_context("fork")
    # Start the resource tracker *before* forking: the workers then inherit
    # it, so their segment registrations and the parent's unlink land in
    # one tracker and /dev/shm bookkeeping balances (otherwise every worker
    # lazily spawns its own tracker, which warns about a "leaked" segment
    # the parent already unlinked).
    from multiprocessing import resource_tracker

    resource_tracker.ensure_running()
    leaf_nodes = hasher._store.size
    leaf_digests = hasher._store.digests[:leaf_nodes]
    results = context.Queue()
    workers = [
        context.Process(
            target=_shard_worker,
            args=(shard, leaf_matrix[start:stop], leaf_digests, leaf_nodes, results),
            daemon=True,
        )
        for shard, (start, stop) in enumerate(bounds)
    ]
    for worker in workers:
        worker.start()

    received = {}
    segments = {}
    tree_count, leaf_count = leaf_matrix.shape
    try:
        idle_polls = 0
        while len(received) < len(workers):
            try:
                message = results.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                missing = [s for s in range(len(workers)) if s not in received]
                for shard in missing:
                    if workers[shard].exitcode not in (None, 0):
                        raise ConstructionError(
                            f"forest shard {shard} worker died with exit code "
                            f"{workers[shard].exitcode} before reporting a result"
                        )
                idle_polls += 1
                if idle_polls > 150 and all(
                    workers[shard].exitcode is not None for shard in missing
                ):
                    # Workers all exited "cleanly" yet never reported: a
                    # protocol bug, not a user error -- refuse to hang.
                    raise ConstructionError(
                        f"forest shards {missing} exited without reporting a result"
                    )
                continue
            idle_polls = 0
            if message[0] == "error":
                _shard, failed, reason = message[0], message[1], message[2]
                raise ConstructionError(f"forest shard {failed} failed: {reason}")
            _tag, shard, name, appended, batches, roots = message
            segments[shard] = shared_memory.SharedMemory(name=name)
            received[shard] = (appended, batches, roots)

        roots_out = np.empty(tree_count, dtype=np.int64)
        new_nodes = 0
        table_keys = np.empty(0, dtype=np.int64)
        table_parents = np.empty(0, dtype=np.int64)
        for shard, (start, stop) in enumerate(bounds):
            parts = _unpack_shard(segments[shard], *received[shard])
            added, table_keys, table_parents = _merge_shard(
                hasher, parts, leaf_nodes, roots_out[start:stop], table_keys, table_parents
            )
            new_nodes += added
            del parts  # release the shared-memory views before unlinking
        hasher._distinct_pairs += new_nodes
        hash_function.note_computed(new_nodes)
        hash_function.note_cached(tree_count * internal_pair_slots(leaf_count) - new_nodes)
        return roots_out
    finally:
        for segment in segments.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exports still alive
                pass
            try:
                segment.unlink()
            except OSError:
                pass
        # Grace period before terminating: a SIGTERM'd worker cannot run
        # its cleanup handler, so killing one mid-shard would orphan the
        # segment it just created.  Letting it finish (or fail) keeps the
        # no-leak guarantee; only a genuinely hung worker is killed.
        deadline = time.monotonic() + 10.0
        for worker in workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - pathological hang
                worker.terminate()
                worker.join()
        # Workers that finished *after* a failure aborted the drain loop
        # have "ok" messages still queued; their segments were never
        # attached above and would outlive the build -- drain and unlink.
        while True:
            try:
                message = results.get(timeout=0.1)
            except (queue_module.Empty, OSError, ValueError):
                break
            if message and message[0] == "ok":
                try:
                    straggler = shared_memory.SharedMemory(name=message[2])
                except FileNotFoundError:
                    continue
                straggler.close()
                try:
                    straggler.unlink()
                except OSError:  # pragma: no cover - raced cleanup
                    pass
        results.close()


def _merge_shard(
    hasher,
    parts: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    leaf_nodes: int,
    roots_slice: np.ndarray,
    table_keys: np.ndarray,
    table_parents: np.ndarray,
) -> Tuple[int, np.ndarray, np.ndarray]:
    """Fold one shard's appended nodes into the parent store.

    Walks the shard's append batches in order; every batch's children are
    leaves or nodes of earlier batches, so the local-to-global map is
    always complete when a batch is processed.  Returns the number of
    globally new nodes plus the extended sorted pair tables.
    """
    digests, left, right, batch_sizes, local_roots = parts
    store = hasher._store
    gmap = np.empty(leaf_nodes + left.shape[0], dtype=np.int64)
    gmap[:leaf_nodes] = np.arange(leaf_nodes, dtype=np.int64)
    appended_before = store.size
    offset = 0
    for size in batch_sizes.tolist():
        stop = offset + size
        global_left = gmap[left[offset:stop]]
        global_right = gmap[right[offset:stop]]
        keys = (global_left << np.int64(32)) | global_right
        resolved = np.empty(size, dtype=np.int64)
        if table_keys.shape[0]:
            at = np.searchsorted(table_keys, keys)
            at_clipped = np.minimum(at, table_keys.shape[0] - 1)
            hit = table_keys[at_clipped] == keys
        else:
            hit = np.zeros(size, dtype=bool)
            at_clipped = np.zeros(size, dtype=np.int64)
        resolved[hit] = table_parents[at_clipped[hit]]
        miss = ~hit
        miss_count = int(miss.sum())
        if miss_count:
            start = store.reserve(miss_count)
            store.digests[start : start + miss_count] = digests[offset:stop][miss]
            store.left[start : start + miss_count] = global_left[miss]
            store.right[start : start + miss_count] = global_right[miss]
            fresh_ids = np.arange(start, start + miss_count, dtype=np.int64)
            resolved[miss] = fresh_ids
            miss_keys = keys[miss]
            order = np.argsort(miss_keys, kind="stable")
            sorted_keys = miss_keys[order]
            slots = np.searchsorted(table_keys, sorted_keys)
            table_keys = np.insert(table_keys, slots, sorted_keys)
            table_parents = np.insert(table_parents, slots, fresh_ids[order])
        gmap[leaf_nodes + offset : leaf_nodes + stop] = resolved
        offset = stop
    roots_slice[:] = gmap[local_roots]
    return store.size - appended_before, table_keys, table_parents
