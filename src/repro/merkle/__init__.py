"""Merkle hash trees.

* :mod:`repro.merkle.mh_tree` -- a generic Merkle hash tree with the paper's
  odd-node carry rule, membership proofs and contiguous-range proofs.
* :mod:`repro.merkle.fmh_tree` -- the Function Merkle Hash tree (FMH-tree):
  a Merkle tree over a subdomain's sorted function list bracketed by the
  ``f_min`` / ``f_max`` boundary tokens.
"""

from repro.merkle.mh_tree import MerkleTree, MembershipProof, RangeProof
from repro.merkle.fmh_tree import FMHTree, MIN_TOKEN, MAX_TOKEN, BoundaryEntry

__all__ = [
    "MerkleTree",
    "MembershipProof",
    "RangeProof",
    "FMHTree",
    "MIN_TOKEN",
    "MAX_TOKEN",
    "BoundaryEntry",
]
