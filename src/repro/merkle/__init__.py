"""Merkle hash trees.

* :mod:`repro.merkle.mh_tree` -- a generic Merkle hash tree with the paper's
  odd-node carry rule, membership proofs and contiguous-range proofs.
* :mod:`repro.merkle.fmh_tree` -- the Function Merkle Hash tree (FMH-tree):
  a Merkle tree over a subdomain's sorted function list bracketed by the
  ``f_min`` / ``f_max`` boundary tokens.
* :mod:`repro.merkle.engine` -- the shared-structure construction engine
  (leaf-digest intern pool + hash-consed internal-node cache) that collapses
  the redundant hashing across the per-subdomain FMH-trees.
* :mod:`repro.merkle.arena` -- the array-backed forest arena and the
  level-order batched construction path (bulk hashing across all subdomain
  trees at once, lazy per-tree views).
"""

from repro.merkle.mh_tree import MerkleTree, MembershipProof, RangeProof
from repro.merkle.fmh_tree import FMHTree, MIN_TOKEN, MAX_TOKEN, BoundaryEntry
from repro.merkle.engine import MerkleBuildEngine
from repro.merkle.arena import ArenaMerkleTree, ForestHasher, MerkleArena

__all__ = [
    "MerkleBuildEngine",
    "MerkleTree",
    "MembershipProof",
    "RangeProof",
    "FMHTree",
    "MIN_TOKEN",
    "MAX_TOKEN",
    "BoundaryEntry",
    "MerkleArena",
    "ArenaMerkleTree",
    "ForestHasher",
]
