"""Shared-structure Merkle construction engine.

The IFMH construction (paper section 3.1, step 2) builds one FMH-tree per
subdomain.  Adjacent subdomains of the 1-D arrangement differ by a single
adjacent transposition of the sorted record list, so their Merkle trees
share almost every node; across the whole sweep only Theta(n^2 log n) of
the Theta(n^3) internal nodes are distinct.  The engine exploits that shared
structure with two tables that persist across every tree of one
construction:

* a :class:`~repro.crypto.intern_pool.LeafDigestPool` interning each
  record's canonical bytes and leaf digest (plus the two boundary-token
  digests, computed exactly once);
* a hash-consed internal-node cache keyed on ``(left_digest,
  right_digest)``, consulted by :class:`~repro.merkle.mh_tree.MerkleTree`
  for every two-child combine.  Carried odd nodes are not hashed at all
  (the paper's carry rule) and therefore never enter the cache.

The engine changes *which* hashes physically run, never their values: every
root, proof and verification result is bit-identical with or without it,
and the logical hash counters (what the paper's figures report) are
unchanged because cache hits are counted as performed operations (see
:mod:`repro.crypto.hashing`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.crypto.hashing import HashFunction
from repro.crypto.intern_pool import LeafDigestPool

__all__ = ["MerkleBuildEngine"]


class MerkleBuildEngine:
    """Leaf intern pool plus hash-consed internal-node cache.

    One engine instance is created per ADS construction and threaded
    through every :class:`~repro.merkle.fmh_tree.FMHTree` built for it; the
    tables are shared so structure discovered while building one subdomain's
    tree is reused by every later subdomain.
    """

    __slots__ = ("leaf_pool", "node_cache")

    def __init__(self) -> None:
        self.leaf_pool = LeafDigestPool()
        #: ``(left_digest, right_digest) -> parent_digest``; keys are full
        #: 32-byte SHA-256 digests, so (absent collisions) consing is exact.
        self.node_cache: Dict[Tuple[bytes, bytes], bytes] = {}

    # ------------------------------------------------------------------ API
    def leaf_digest(self, item: object, hash_function: HashFunction) -> bytes:
        """Interned leaf digest of an item (see :class:`LeafDigestPool`)."""
        return self.leaf_pool.item_digest(item, hash_function)

    def token_digest(self, token: bytes, hash_function: HashFunction) -> bytes:
        """Interned digest of a boundary token, computed exactly once."""
        return self.leaf_pool.token_digest(token, hash_function)

    # ------------------------------------------------------------ accessors
    def stats(self) -> Dict[str, int]:
        """Table sizes and pool hit rates for benchmark reporting."""
        pool = self.leaf_pool.stats()
        return {
            "leaf_pool_entries": pool["entries"],
            "leaf_pool_hits": pool["hits"],
            "leaf_pool_misses": pool["misses"],
            "distinct_internal_nodes": len(self.node_cache),
        }
