"""Shared-structure Merkle construction engine.

The IFMH construction (paper section 3.1, step 2) builds one FMH-tree per
subdomain.  Adjacent subdomains of the 1-D arrangement differ by a single
adjacent transposition of the sorted record list, so their Merkle trees
share almost every node; across the whole sweep only Theta(n^2 log n) of
the Theta(n^3) internal nodes are distinct.  The engine exploits that shared
structure in one of two modes:

* **node-at-a-time** (the PR 2 engine): a
  :class:`~repro.crypto.intern_pool.LeafDigestPool` interning each record's
  canonical bytes and leaf digest, plus a hash-consed internal-node cache
  keyed on ``(left_digest, right_digest)`` that
  :class:`~repro.merkle.mh_tree.MerkleTree` consults for every two-child
  combine.  Each tree is still walked node by node in Python.

* **batched level-order** (``batched=True``): the whole forest is advanced
  one level at a time through the array-backed
  :class:`~repro.merkle.arena.ForestHasher` -- all uncached parent
  preimages of a level, across *all* subdomain trees, are gathered into a
  contiguous buffer and hashed in one bulk pass
  (:func:`repro.crypto.hashing.sha256_many`), and the resulting forest
  lives in a flat :class:`~repro.merkle.arena.MerkleArena` that per-tree
  lazy views share.

Either mode changes *which* hashes physically run, never their values:
every root, proof and verification result is bit-identical with or without
it, and the logical hash counters (what the paper's figures report) are
unchanged because cache hits are counted as performed operations (see
:mod:`repro.crypto.hashing`).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.crypto.hashing import HashFunction
from repro.crypto.intern_pool import LeafDigestPool
from repro.merkle.arena import ForestHasher, MerkleArena

__all__ = ["MerkleBuildEngine"]


class MerkleBuildEngine:
    """Leaf intern pool plus hash-consed internal-node tables.

    One engine instance is created per ADS construction and threaded
    through every :class:`~repro.merkle.fmh_tree.FMHTree` built for it; the
    tables are shared so structure discovered while building one subdomain's
    tree is reused by every later subdomain.  With ``batched=True`` the
    engine additionally carries the level-order forest builder used by the
    batched IFMH step-2 path.
    """

    __slots__ = ("leaf_pool", "node_cache", "forest")

    def __init__(self, batched: bool = False, workers: int = 1) -> None:
        self.leaf_pool = LeafDigestPool()
        #: ``(left_digest, right_digest) -> parent_digest``; keys are full
        #: 32-byte SHA-256 digests, so (absent collisions) consing is exact.
        self.node_cache: Dict[Tuple[bytes, bytes], bytes] = {}
        #: Level-order batched builder (``None`` in node-at-a-time mode).
        #: ``workers`` shards its build across forked processes; output is
        #: bit-identical at any worker count (a runtime knob, not config).
        self.forest = ForestHasher(workers=workers) if batched else None

    @property
    def batched(self) -> bool:
        """Whether this engine builds through the level-order forest path."""
        return self.forest is not None

    # ------------------------------------------------------------------ API
    def leaf_digest(self, item: object, hash_function: HashFunction) -> bytes:
        """Interned leaf digest of an item (see :class:`LeafDigestPool`)."""
        return self.leaf_pool.item_digest(item, hash_function)

    def token_digest(self, token: bytes, hash_function: HashFunction) -> bytes:
        """Interned digest of a boundary token, computed exactly once."""
        return self.leaf_pool.token_digest(token, hash_function)

    # ------------------------------------------------------- batched mode
    def intern_leaf_batch(
        self, payloads: Sequence[bytes], hash_function: HashFunction
    ) -> np.ndarray:
        """Bulk-digest leaf preimages into the forest arena (batched mode)."""
        if self.forest is None:
            raise RuntimeError("intern_leaf_batch requires a batched engine")
        return self.forest.intern_leaves(payloads, hash_function)

    def build_forest(self, leaf_matrix: np.ndarray, hash_function: HashFunction) -> np.ndarray:
        """Level-order batched build of every tree (batched mode)."""
        if self.forest is None:
            raise RuntimeError("build_forest requires a batched engine")
        return self.forest.build_forest(leaf_matrix, hash_function)

    def finalize_arena(self) -> MerkleArena:
        """Freeze the forest's node store into the shared arena."""
        if self.forest is None:
            raise RuntimeError("finalize_arena requires a batched engine")
        return self.forest.finalize()

    # ------------------------------------------------------------ accessors
    def stats(self) -> Dict[str, int]:
        """Table sizes and pool hit rates for benchmark reporting.

        Both modes report the same shape; in batched mode the numbers come
        from the forest builder and match the node-at-a-time values (same
        interned payloads, same distinct internal nodes).
        """
        if self.forest is not None:
            return self.forest.stats()
        pool = self.leaf_pool.stats()
        return {
            "leaf_pool_entries": pool["entries"],
            "leaf_pool_hits": pool["hits"],
            "leaf_pool_misses": pool["misses"],
            "distinct_internal_nodes": len(self.node_cache),
        }
