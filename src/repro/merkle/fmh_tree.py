"""The Function Merkle Hash tree (FMH-tree).

One FMH-tree is built per subdomain, over that subdomain's sorted function
list bracketed by the two special boundary tokens ``f_min`` and ``f_max``
(paper section 3.1, step 2).  Leaf ``0`` is the ``f_min`` token, leaf
``i + 1`` is the ``i``-th item of the sorted list, and the last leaf is the
``f_max`` token.  The tree's root becomes the subdomain node's hash in the
IMH-tree.

The tree is generic over the *items* it authenticates: anything exposing a
canonical ``to_bytes()`` works.  The IFMH construction passes the records
corresponding to the sorted functions (the paper uses records and functions
interchangeably), so the whole record -- id, attributes and label -- is
bound by the root hash.

The FMH-tree also knows how to produce the *function verification object*
(FV) for a result window: a contiguous Merkle range proof covering the
window plus its two boundary leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence, runtime_checkable

from repro.crypto.hashing import HashFunction
from repro.merkle.mh_tree import MerkleTree, RangeProof
from repro.queryproc.window import ResultWindow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.merkle.engine import MerkleBuildEngine

__all__ = ["FMHTree", "MIN_TOKEN", "MAX_TOKEN", "BoundaryEntry", "Hashable"]

#: Canonical byte encodings of the two boundary tokens.  They are public
#: constants: the verifying client hashes them locally, so a malicious
#: server cannot substitute a real record for a token or vice versa.
MIN_TOKEN = b"repro:fmh:min-token"
MAX_TOKEN = b"repro:fmh:max-token"


@runtime_checkable
class Hashable(Protocol):
    """Anything with a canonical byte encoding (records, functions, ...)."""

    def to_bytes(self) -> bytes:
        """Canonical encoding used as the Merkle leaf pre-image."""


@dataclass(frozen=True)
class BoundaryEntry:
    """One boundary of a result window as shipped inside a VO.

    Either a real neighbouring item (``item`` set) or one of the two
    tokens (``token`` set to ``"min"`` or ``"max"``).
    """

    leaf_index: int
    item: Optional[Hashable] = None
    token: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.item is None) == (self.token is None):
            raise ValueError("a boundary entry is either an item or a token, not both")
        if self.token is not None and self.token not in ("min", "max"):
            raise ValueError(f"unknown boundary token {self.token!r}")

    @property
    def is_token(self) -> bool:
        return self.token is not None

    def leaf_bytes(self) -> bytes:
        """The bytes whose hash is this boundary's leaf."""
        if self.token == "min":
            return MIN_TOKEN
        if self.token == "max":
            return MAX_TOKEN
        return self.item.to_bytes()


class FMHTree:
    """Merkle tree over ``[f_min] + sorted items + [f_max]``.

    Parameters
    ----------
    sorted_items:
        The subdomain's sorted function/record list.
    hash_function:
        Counting SHA-256 wrapper (a fresh uncounted one by default).
    engine:
        Optional shared-structure construction engine
        (:class:`repro.merkle.engine.MerkleBuildEngine`).  When given, leaf
        digests are interned in the engine's pool and internal nodes are
        hash-consed across every tree built with the same engine; the
        resulting tree (root, levels, proofs) is bit-identical either way.
    """

    def __init__(
        self,
        sorted_items: Sequence[Hashable],
        hash_function: Optional[HashFunction] = None,
        engine: Optional["MerkleBuildEngine"] = None,
    ):
        self._hash = hash_function or HashFunction()
        self.sorted_items = list(sorted_items)
        if engine is None:
            leaf_hashes = [self._hash.digest(MIN_TOKEN)]
            leaf_hashes.extend(self._hash.digest(item.to_bytes()) for item in self.sorted_items)
            leaf_hashes.append(self._hash.digest(MAX_TOKEN))
            self.tree = MerkleTree(leaf_hashes, hash_function=self._hash)
        else:
            hash_function = self._hash
            leaf_hashes = [engine.token_digest(MIN_TOKEN, hash_function)]
            leaf_hashes.extend(
                engine.leaf_digest(item, hash_function) for item in self.sorted_items
            )
            leaf_hashes.append(engine.token_digest(MAX_TOKEN, hash_function))
            self.tree = MerkleTree(
                leaf_hashes, hash_function=hash_function, node_cache=engine.node_cache
            )

    @classmethod
    def from_prebuilt(
        cls,
        sorted_items: Sequence[Hashable],
        tree: MerkleTree,
        hash_function: HashFunction,
    ) -> "FMHTree":
        """Wrap an already-built Merkle tree (the batched construction path).

        ``sorted_items`` may be any read-only sequence (e.g. a lazy
        :class:`repro.itree.permutation.PermutedView` over the shared
        permutation array) and is *not* copied; ``tree`` is typically an
        arena-backed lazy view whose levels materialize on first proof.
        The resulting object is observationally identical to one built
        through :meth:`__init__` over the same items.
        """
        self = cls.__new__(cls)
        self._hash = hash_function
        self.sorted_items = sorted_items
        self.tree = tree
        return self

    # ------------------------------------------------------------ accessors
    @property
    def root(self) -> bytes:
        return self.tree.root

    @property
    def item_count(self) -> int:
        return len(self.sorted_items)

    @property
    def leaf_count(self) -> int:
        return self.tree.leaf_count

    @property
    def node_count(self) -> int:
        return self.tree.node_count

    def leaf_index_of_position(self, position: int) -> int:
        """Leaf index of the sorted-list position (offset by the min token)."""
        return position + 1

    # ----------------------------------------------------------------- FV
    def window_proof(self, window: ResultWindow) -> tuple[BoundaryEntry, BoundaryEntry, RangeProof]:
        """Boundary entries and range proof for a result window.

        The proven leaf range covers the window plus its immediate left and
        right neighbours, which may be the ``f_min`` / ``f_max`` tokens.
        """
        if window.size != self.item_count:
            raise ValueError(
                f"window refers to a list of {window.size} items, "
                f"but this FMH-tree holds {self.item_count}"
            )
        left = self._boundary_for_position(window.left_boundary_position)
        right = self._boundary_for_position(window.right_boundary_position)
        proof = self.tree.range_proof(left.leaf_index, right.leaf_index)
        return left, right, proof

    def _boundary_for_position(self, position: int) -> BoundaryEntry:
        if position < 0:
            return BoundaryEntry(leaf_index=0, token="min")
        if position >= self.item_count:
            return BoundaryEntry(leaf_index=self.leaf_count - 1, token="max")
        return BoundaryEntry(
            leaf_index=self.leaf_index_of_position(position),
            item=self.sorted_items[position],
        )

    # --------------------------------------------------------- verification
    @staticmethod
    def root_from_window(
        result_items: Sequence[Hashable],
        left: BoundaryEntry,
        right: BoundaryEntry,
        proof: RangeProof,
        hash_function: Optional[HashFunction] = None,
    ) -> bytes:
        """Recompute the FMH root from a window's items, boundaries and proof.

        The verifier hashes the boundary bytes and every result item
        itself; only off-range hashes come from the proof.  Any substituted,
        dropped or reordered item therefore changes the recomputed root.
        """
        if left.leaf_index != proof.start or right.leaf_index != proof.end:
            raise ValueError(
                f"window boundaries sit at leaves ({left.leaf_index}, {right.leaf_index}) "
                f"but the range proof covers leaves [{proof.start}, {proof.end}]: "
                "the proof does not anchor this window"
            )
        hashes = hash_function or HashFunction()
        leaf_hashes = [hashes.digest(left.leaf_bytes())]
        leaf_hashes.extend(hashes.digest(item.to_bytes()) for item in result_items)
        leaf_hashes.append(hashes.digest(right.leaf_bytes()))
        expected = proof.end - proof.start + 1
        if len(leaf_hashes) != expected:
            raise ValueError(
                f"window carries {len(leaf_hashes)} leaves but the proof covers {expected}"
            )
        return MerkleTree.root_from_range(leaf_hashes, proof, hash_function=hashes)
