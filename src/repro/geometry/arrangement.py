"""The flat arrangement of subdomains created by all pairwise intersections.

This is the structure the signature-mesh baseline works on (the paper's
section 2.3.1): the list of every subdomain carved out of the weight domain
by the ``O(n^2)`` pairwise intersection hyperplanes, each subdomain paired
with its sorted function list.  It is also used as ground truth when testing
the I-tree: the set of I-tree leaves must induce exactly this partition.

For a univariate template the subdomains form a sorted list of intervals and
the arrangement records them in left-to-right order, which is what enables
the mesh's shared-signature optimization (a pair of functions that stays
adjacent across consecutive subdomains is signed once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.geometry.domain import Domain, Region
from repro.geometry.engine import SplitEngine, make_engine
from repro.geometry.functions import (
    COEFFICIENT_TOLERANCE,
    Hyperplane,
    LinearFunction,
    intersection_hyperplane,
)
from repro.geometry.sorting import sort_functions_at

__all__ = [
    "Subdomain",
    "Arrangement",
    "build_arrangement",
    "pairwise_hyperplanes",
    "univariate_breakpoints",
]


@dataclass
class Subdomain:
    """One cell of the arrangement.

    Attributes
    ----------
    identifier:
        Position of this subdomain in the arrangement (stable, 0-based;
        for univariate templates this is the left-to-right order).
    region:
        Symbolic description (domain box + signed half-space constraints).
    witness:
        An interior point used to fix the function order.
    sorted_functions:
        The score functions sorted ascending by score inside this cell.
    """

    identifier: int
    region: Region
    witness: tuple[float, ...]
    sorted_functions: list[LinearFunction] = field(default_factory=list)

    def contains(self, weights: Sequence[float], tolerance: float = 1e-9) -> bool:
        """True when the weight vector lies inside this cell."""
        return self.region.contains(weights, tolerance)

    def sorted_indices(self) -> list[int]:
        """Record indices in ascending-score order."""
        return [f.index for f in self.sorted_functions]


@dataclass
class Arrangement:
    """All subdomains induced by the pairwise intersections of the functions."""

    domain: Domain
    functions: list[LinearFunction]
    subdomains: list[Subdomain]
    hyperplanes: list[Hyperplane]

    @property
    def size(self) -> int:
        """Number of subdomains (the paper's number of "cells")."""
        return len(self.subdomains)

    def locate(self, weights: Sequence[float]) -> Subdomain:
        """Linear search for the cell containing ``weights``.

        This is intentionally a linear scan: it is exactly the search the
        signature-mesh server performs, and the benchmark harness counts the
        cells it touches.
        """
        for subdomain in self.subdomains:
            if subdomain.contains(weights):
                return subdomain
        raise ValueError(f"weight vector {tuple(weights)} lies outside the domain")

    def locate_with_count(self, weights: Sequence[float]) -> tuple[Subdomain, int]:
        """Like :meth:`locate` but also returns the number of cells inspected."""
        for inspected, subdomain in enumerate(self.subdomains, start=1):
            if subdomain.contains(weights):
                return subdomain, inspected
        raise ValueError(f"weight vector {tuple(weights)} lies outside the domain")


def pairwise_hyperplanes(functions: Sequence[LinearFunction]) -> list[Hyperplane]:
    """All non-degenerate intersection hyperplanes ``I_{i,j}`` with ``i < j``."""
    hyperplanes: list[Hyperplane] = []
    for position, f_i in enumerate(functions):
        for f_j in functions[position + 1 :]:
            hyperplane = intersection_hyperplane(f_i, f_j)
            if hyperplane is not None:
                hyperplanes.append(hyperplane)
    return hyperplanes


def univariate_breakpoints(
    functions: Sequence[LinearFunction],
    slope_tolerance: float = COEFFICIENT_TOLERANCE,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All pairwise breakpoints of a univariate function set, vectorized.

    For every pair ``p < q`` (position order, matching
    :func:`pairwise_hyperplanes`) with slope difference exceeding
    ``slope_tolerance``, the crossing point ``x* = -(c_p - c_q)/(a_p - a_q)``
    is computed in one numpy pass.  Returns ``(breakpoints, left, right,
    normals, offsets)`` arrays where ``left[k]``/``right[k]`` are the
    *positions* of the pair in ``functions``.  The per-element arithmetic is
    bit-identical to :meth:`IntervalEngine._breakpoint` applied to
    :func:`intersection_hyperplane`.
    """
    if any(f.dimension != 1 for f in functions):
        raise ValueError("univariate_breakpoints requires 1-dimensional functions")
    slopes = np.array([f.coefficients[0] for f in functions], dtype=float)
    constants = np.array([f.constant for f in functions], dtype=float)
    left, right = np.triu_indices(len(functions), k=1)
    normals = slopes[left] - slopes[right]
    offsets = constants[left] - constants[right]
    crossing = np.abs(normals) > slope_tolerance
    left, right, normals, offsets = (
        left[crossing],
        right[crossing],
        normals[crossing],
        offsets[crossing],
    )
    return -offsets / normals, left, right, normals, offsets


def build_arrangement(
    functions: Sequence[LinearFunction],
    domain: Domain,
    engine: Optional[SplitEngine] = None,
    hyperplanes: Optional[Iterable[Hyperplane]] = None,
) -> Arrangement:
    """Compute the full arrangement of the functions over ``domain``.

    The construction splits cells incrementally: starting from the whole
    domain, each hyperplane is tested against every current cell and cells
    it cuts are replaced by their two sides.  For d = 1 this produces the
    cells in left-to-right order (the splitting keeps ``below`` before
    ``above`` for positive slopes), which the mesh relies on.
    """
    function_list = list(functions)
    if not function_list:
        raise ValueError("cannot build an arrangement for an empty function set")
    engine = engine or make_engine(domain)
    planes = list(hyperplanes) if hyperplanes is not None else pairwise_hyperplanes(function_list)

    regions: list[Region] = [Region.full(domain)]
    for hyperplane in planes:
        next_regions: list[Region] = []
        for region in regions:
            if engine.splits(region, hyperplane):
                above, below = engine.split(region, hyperplane)
                # Keep 1-D cells ordered left-to-right.
                if domain.dimension == 1 and below.interval_low <= above.interval_low:
                    next_regions.extend([below, above])
                else:
                    next_regions.extend([above, below])
            else:
                next_regions.append(region)
        regions = next_regions

    if domain.dimension == 1:
        regions.sort(key=lambda r: r.interval_low)

    subdomains: list[Subdomain] = []
    for identifier, region in enumerate(regions):
        witness = engine.witness(region)
        ordered = sort_functions_at(function_list, witness)
        subdomains.append(
            Subdomain(
                identifier=identifier,
                region=region,
                witness=witness,
                sorted_functions=ordered,
            )
        )
    return Arrangement(
        domain=domain,
        functions=function_list,
        subdomains=subdomains,
        hyperplanes=planes,
    )
