"""Split/witness engines for the weight-space arrangement.

Building the I-tree (and the signature-mesh arrangement) requires two
geometric primitives on a region of the weight space:

``splits(region, hyperplane)``
    Does the intersection hyperplane cut the region into two non-empty
    parts?  (Paper: "check if I_{i,j} partitions X".)

``witness(region)``
    An interior point of the region, used to sort the functions for that
    subdomain (their order is constant across the whole region by the
    function-sortability theorem, so any interior point works).

Two engines implement these primitives:

* :class:`IntervalEngine` -- exact O(1) interval arithmetic for univariate
  templates (d = 1), the configuration used for the paper-scale benchmarks;
* :class:`LPEngine` -- small linear programs (scipy HiGHS) over the domain
  box plus the accumulated half-space constraints, for any dimension.

:func:`make_engine` picks the right engine from the domain dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.errors import ConstructionError
from repro.geometry.domain import ABOVE, BELOW, Constraint, Domain, Region
from repro.geometry.functions import Hyperplane

__all__ = ["SplitEngine", "IntervalEngine", "LPEngine", "make_engine"]

#: Minimum width (1-D) / interior radius (LP) for a side to count as non-empty.
DEFAULT_TOLERANCE = 1e-9

#: Default tolerance of the LP engine (looser: HiGHS works in floating point).
DEFAULT_LP_TOLERANCE = 1e-7


@runtime_checkable
class SplitEngine(Protocol):
    """Geometric primitives needed to build arrangements and I-trees."""

    def splits(self, region: Region, hyperplane: Hyperplane) -> bool:
        """True when the hyperplane cuts the region into two non-empty parts."""

    def split(self, region: Region, hyperplane: Hyperplane) -> tuple[Region, Region]:
        """Return the ``(above, below)`` sub-regions created by the cut."""

    def witness(self, region: Region) -> tuple[float, ...]:
        """An interior point of the region."""


# --------------------------------------------------------------------------
# Interval engine (d = 1)
# --------------------------------------------------------------------------
@dataclass
class IntervalEngine:
    """Exact engine for univariate score functions.

    A region is an interval ``[low, high]`` of the single weight variable;
    an intersection hyperplane is the breakpoint ``x* = -offset / normal``.
    """

    tolerance: float = DEFAULT_TOLERANCE

    def _breakpoint(self, hyperplane: Hyperplane) -> Optional[float]:
        if hyperplane.dimension != 1:
            raise ValueError("IntervalEngine only handles 1-dimensional hyperplanes")
        slope = hyperplane.normal[0]
        if abs(slope) <= self.tolerance:
            return None
        return -hyperplane.offset / slope

    def splits(self, region: Region, hyperplane: Hyperplane) -> bool:
        breakpoint = self._breakpoint(hyperplane)
        if breakpoint is None:
            return False
        return (
            region.interval_low + self.tolerance
            < breakpoint
            < region.interval_high - self.tolerance
        )

    def split(
        self, region: Region, hyperplane: Hyperplane, check: bool = True
    ) -> tuple[Region, Region]:
        """Cut the region at the hyperplane's breakpoint.

        ``check=False`` skips the ``splits`` validation -- used by the bulk
        I-tree assembly, whose planner has already vetted every breakpoint
        at insertion time (re-checking against the *final* region bounds
        would be stricter than the incremental builder it mirrors).
        """
        if check and not self.splits(region, hyperplane):
            raise ValueError(f"{hyperplane.name} does not split the region")
        breakpoint = self._breakpoint(hyperplane)
        slope = hyperplane.normal[0]
        lo, hi = region.interval_low, region.interval_high
        if slope > 0:
            above_lo, above_hi = breakpoint, hi
            below_lo, below_hi = lo, breakpoint
        else:
            above_lo, above_hi = lo, breakpoint
            below_lo, below_hi = breakpoint, hi
        above = region.with_constraint(
            Constraint(hyperplane, ABOVE), interval_low=above_lo, interval_high=above_hi
        )
        below = region.with_constraint(
            Constraint(hyperplane, BELOW), interval_low=below_lo, interval_high=below_hi
        )
        return above, below

    def witness(self, region: Region) -> tuple[float, ...]:
        return ((region.interval_low + region.interval_high) / 2.0,)


# --------------------------------------------------------------------------
# LP engine (any d)
# --------------------------------------------------------------------------
@dataclass
class LPEngine:
    """LP-based engine for multivariate score functions.

    A region is the domain box intersected with the accumulated half-space
    constraints.  Split tests solve two small LPs (maximize / minimize the
    hyperplane's signed value over the region); witness points are Chebyshev
    centres (the centre of the largest inscribed ball).
    """

    tolerance: float = DEFAULT_LP_TOLERANCE

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _region_inequalities(region: Region) -> tuple[np.ndarray, np.ndarray]:
        """Half-space constraints of the region in ``A x <= b`` form (box excluded)."""
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        for constraint in region.constraints:
            normal = np.asarray(constraint.hyperplane.normal, dtype=float)
            offset = constraint.hyperplane.offset
            if constraint.side == ABOVE:
                # normal . x + offset >= 0  <=>  -normal . x <= offset
                rows.append(-normal)
                rhs.append(offset)
            else:
                # normal . x + offset < 0   <=>  normal . x <= -offset
                rows.append(normal)
                rhs.append(-offset)
        if rows:
            return np.vstack(rows), np.asarray(rhs, dtype=float)
        dimension = region.dimension
        return np.zeros((0, dimension)), np.zeros(0)

    def _extremes(self, region: Region, hyperplane: Hyperplane) -> tuple[float, float]:
        """Minimum and maximum of ``normal . x + offset`` over the region."""
        from scipy.optimize import linprog

        a_ub, b_ub = self._region_inequalities(region)
        bounds = list(zip(region.domain.lower, region.domain.upper))
        normal = np.asarray(hyperplane.normal, dtype=float)
        values = []
        for sign in (1.0, -1.0):
            result = linprog(
                sign * normal,
                A_ub=a_ub if a_ub.size else None,
                b_ub=b_ub if b_ub.size else None,
                bounds=bounds,
                method="highs",
            )
            if not result.success:
                # A provably infeasible LP means the region is genuinely
                # empty: report a degenerate span so it is never split.
                if result.status == 2:
                    return 0.0, 0.0
                # Anything else (iteration limit, numerical difficulties,
                # unbounded -- impossible over the domain box) is a *solver*
                # failure.  Treating it as "no split" would silently merge
                # subdomains, so surface it instead.
                raise ConstructionError(
                    f"LP solver failed while testing {hyperplane.name} against a region "
                    f"with {len(region.constraints)} constraints "
                    f"(status={result.status}: {result.message})"
                )
            values.append(sign * result.fun + hyperplane.offset)
        minimum, maximum = values[0], values[1]
        return float(minimum), float(maximum)

    # ----------------------------------------------------------------- API
    def splits(self, region: Region, hyperplane: Hyperplane) -> bool:
        if hyperplane.is_degenerate():
            return False
        minimum, maximum = self._extremes(region, hyperplane)
        return minimum < -self.tolerance and maximum > self.tolerance

    def split(self, region: Region, hyperplane: Hyperplane) -> tuple[Region, Region]:
        if not self.splits(region, hyperplane):
            raise ValueError(f"{hyperplane.name} does not split the region")
        above = region.with_constraint(Constraint(hyperplane, ABOVE))
        below = region.with_constraint(Constraint(hyperplane, BELOW))
        return above, below

    def witness(self, region: Region) -> tuple[float, ...]:
        """Chebyshev centre of the region (centre of the largest inscribed ball)."""
        from scipy.optimize import linprog

        dimension = region.dimension
        a_ub, b_ub = self._region_inequalities(region)
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        # Half-space constraints: a . x + r * ||a|| <= b
        for row, bound in zip(a_ub, b_ub):
            norm = float(np.linalg.norm(row))
            rows.append(np.concatenate([row, [norm]]))
            rhs.append(bound)
        # Box constraints: x_k + r <= upper_k and -x_k + r <= -lower_k
        for k in range(dimension):
            unit = np.zeros(dimension)
            unit[k] = 1.0
            rows.append(np.concatenate([unit, [1.0]]))
            rhs.append(region.domain.upper[k])
            rows.append(np.concatenate([-unit, [1.0]]))
            rhs.append(-region.domain.lower[k])
        objective = np.zeros(dimension + 1)
        objective[-1] = -1.0  # maximize the radius
        bounds = [(None, None)] * dimension + [(0.0, None)]
        result = linprog(
            objective,
            A_ub=np.vstack(rows),
            b_ub=np.asarray(rhs),
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise ValueError("cannot compute a witness point for an empty region")
        return tuple(float(v) for v in result.x[:dimension])


def make_engine(domain: Domain, tolerance: Optional[float] = None) -> SplitEngine:
    """Pick the right engine for the domain's dimension.

    ``tolerance=None`` selects the engine's default; an explicit value --
    including ``0.0`` (exact comparisons) -- is honoured as given.
    """
    if domain.dimension == 1:
        return IntervalEngine(tolerance=DEFAULT_TOLERANCE if tolerance is None else tolerance)
    return LPEngine(tolerance=DEFAULT_LP_TOLERANCE if tolerance is None else tolerance)
