"""Deterministic sorting of score functions inside a subdomain.

By the function-sortability theorem, the relative order of the score
functions is the same for every weight vector inside a subdomain, so sorting
them at a single interior witness point fixes the order for the whole
subdomain.  Ties (functions with identical output across the subdomain,
e.g. duplicate records) are broken by record index so the owner, the server
and the verifying client always agree on the order.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.functions import LinearFunction

__all__ = ["sort_functions_at", "rank_of"]


def sort_functions_at(
    functions: Sequence[LinearFunction],
    witness: Sequence[float],
) -> list[LinearFunction]:
    """Return the functions sorted ascending by score at ``witness``.

    The returned list is a new list; the input sequence is not modified.
    Ties are broken by ``function.index`` (ascending) so the order is a
    deterministic total order.
    """
    return sorted(functions, key=lambda f: (f.evaluate(witness), f.index))


def rank_of(
    functions: Sequence[LinearFunction],
    witness: Sequence[float],
    index: int,
) -> int:
    """Position (0-based, ascending score) of record ``index`` at ``witness``.

    Raises :class:`ValueError` when no function carries that record index.
    """
    ordered = sort_functions_at(functions, witness)
    for position, function in enumerate(ordered):
        if function.index == index:
            return position
    raise ValueError(f"no function with record index {index}")
