"""Weight-space domain, half-space constraints and subdomain regions.

The data owner declares a bounded axis-aligned box as the domain of the
weight variables (section 2.3.2: only the root's domain boundary needs to be
known).  Subdomains are described *symbolically* as the set of signed
half-space constraints accumulated along the I-tree path that leads to them
-- exactly the "set of inequality functions that determines the subdomain"
the multi-signature mode hashes and signs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crypto.serialization import (
    encode_float_vector,
    encode_int,
    encode_sequence,
    encode_str,
)
from repro.geometry.functions import Hyperplane

__all__ = ["Domain", "Constraint", "Region", "ABOVE", "BELOW"]

#: Side labels.  ``ABOVE`` is the closed side ``f_i - f_j >= 0`` and
#: ``BELOW`` the open side ``f_i - f_j < 0`` -- the paper's ``a``/``b``
#: pointers of an intersection node.
ABOVE = +1
BELOW = -1


@dataclass(frozen=True)
class Domain:
    """An axis-aligned box of admissible weight vectors."""

    lower: tuple[float, ...]
    upper: tuple[float, ...]

    def __post_init__(self) -> None:
        lower = tuple(float(v) for v in self.lower)
        upper = tuple(float(v) for v in self.upper)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        if len(lower) != len(upper):
            raise ValueError("lower and upper bounds must have the same dimension")
        if len(lower) == 0:
            raise ValueError("domain must have at least one dimension")
        for lo, hi in zip(lower, upper):
            if not lo < hi:
                raise ValueError(f"degenerate domain interval [{lo}, {hi}]")

    @classmethod
    def unit_box(cls, dimension: int) -> "Domain":
        """The unit box ``[0, 1]^d`` -- the default weight domain."""
        return cls(lower=(0.0,) * dimension, upper=(1.0,) * dimension)

    @classmethod
    def box(cls, dimension: int, low: float, high: float) -> "Domain":
        """A cube ``[low, high]^d``."""
        return cls(lower=(low,) * dimension, upper=(high,) * dimension)

    @property
    def dimension(self) -> int:
        return len(self.lower)

    def contains(self, weights: Sequence[float], tolerance: float = 1e-9) -> bool:
        """True when ``weights`` lies inside the box (within tolerance)."""
        if len(weights) != self.dimension:
            return False
        return all(
            lo - tolerance <= float(w) <= hi + tolerance
            for w, lo, hi in zip(weights, self.lower, self.upper)
        )

    def center(self) -> tuple[float, ...]:
        """The box center, used as the root witness point."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lower, self.upper))

    def to_bytes(self) -> bytes:
        """Canonical encoding (bound into the tree root in hardened mode)."""
        return encode_sequence(
            [
                encode_str("domain"),
                encode_float_vector(self.lower),
                encode_float_vector(self.upper),
            ]
        )


@dataclass(frozen=True)
class Constraint:
    """A signed half-space: which side of an intersection a region lies on.

    ``side == ABOVE`` means ``hyperplane.side_value(X) >= 0`` (so
    ``f_i(X) >= f_j(X)``); ``side == BELOW`` means ``< 0``.
    """

    hyperplane: Hyperplane
    side: int

    def __post_init__(self) -> None:
        if self.side not in (ABOVE, BELOW):
            raise ValueError(f"side must be ABOVE(+1) or BELOW(-1), got {self.side}")

    def satisfied_by(self, weights: Sequence[float], tolerance: float = 0.0) -> bool:
        """True when the weight vector lies on this constraint's side."""
        value = self.hyperplane.side_value(weights)
        if self.side == ABOVE:
            return value >= -tolerance
        return value < tolerance

    def to_bytes(self) -> bytes:
        """Canonical encoding used by the multi-signature digests."""
        return encode_sequence(
            [
                encode_str("constraint"),
                self.hyperplane.to_bytes(),
                encode_int(self.side),
            ]
        )

    def describe(self) -> str:
        """Human-readable inequality, e.g. ``f_1(X) - f_3(X) >= 0``."""
        op = ">=" if self.side == ABOVE else "<"
        return f"f_{self.hyperplane.i}(X) - f_{self.hyperplane.j}(X) {op} 0"


@dataclass(frozen=True)
class Region:
    """A subdomain of the weight space: the domain box cut by constraints.

    Regions are immutable; splitting a region produces two new regions with
    one extra constraint each.  For univariate templates the equivalent
    interval ``(interval_low, interval_high)`` is tracked explicitly so the
    interval engine never needs an LP.
    """

    domain: Domain
    constraints: tuple[Constraint, ...] = ()
    interval_low: float = field(default=float("nan"))
    interval_high: float = field(default=float("nan"))

    def __post_init__(self) -> None:
        # math.isnan, not np.isnan: regions are created once per tree node,
        # and the numpy scalar path costs ~1 microsecond per call at scale.
        if self.domain.dimension == 1 and math.isnan(self.interval_low):
            object.__setattr__(self, "interval_low", self.domain.lower[0])
            object.__setattr__(self, "interval_high", self.domain.upper[0])

    @classmethod
    def full(cls, domain: Domain) -> "Region":
        """The region covering the entire domain (the I-tree root's X)."""
        return cls(domain=domain)

    @property
    def dimension(self) -> int:
        return self.domain.dimension

    @property
    def is_interval(self) -> bool:
        """True when the region is one-dimensional."""
        return self.domain.dimension == 1

    def with_constraint(
        self,
        constraint: Constraint,
        interval_low: float | None = None,
        interval_high: float | None = None,
    ) -> "Region":
        """Return the sub-region additionally bounded by ``constraint``."""
        low = self.interval_low if interval_low is None else interval_low
        high = self.interval_high if interval_high is None else interval_high
        return Region(
            domain=self.domain,
            constraints=self.constraints + (constraint,),
            interval_low=low,
            interval_high=high,
        )

    def contains(self, weights: Sequence[float], tolerance: float = 1e-9) -> bool:
        """True when ``weights`` lies in the domain and satisfies every constraint."""
        if not self.domain.contains(weights, tolerance):
            return False
        return all(c.satisfied_by(weights, tolerance) for c in self.constraints)

    def constraint_bytes(self) -> bytes:
        """Canonical encoding of the inequality set (multi-signature digest)."""
        return encode_sequence(
            [encode_str("region"), self.domain.to_bytes()]
            + [c.to_bytes() for c in self.constraints]
        )

    def describe(self) -> list[str]:
        """The inequality set as human-readable strings."""
        return [c.describe() for c in self.constraints]

    def __len__(self) -> int:
        return len(self.constraints)


def region_from_constraints(domain: Domain, constraints: Iterable[Constraint]) -> Region:
    """Build a region from scratch (used when reconstructing from a VO)."""
    region = Region.full(domain)
    for constraint in constraints:
        region = region.with_constraint(constraint)
    return region
