"""Geometry substrate: the weight-space arrangement of score functions.

The paper's data structures rest on the *theorem of function sortability*:
the pairwise intersections of the score functions partition the weight
domain into subdomains inside which the functions have a fixed total order.
This package provides everything needed to compute and reason about that
partition:

* :mod:`repro.geometry.functions` -- linear score functions and their
  pairwise intersection hyperplanes;
* :mod:`repro.geometry.domain` -- the weight-space box, half-space
  constraints and subdomain (region) descriptions;
* :mod:`repro.geometry.engine` -- split/witness engines: an exact interval
  engine for univariate templates and an LP engine (scipy HiGHS) for
  higher-dimensional templates;
* :mod:`repro.geometry.arrangement` -- the flat list of all subdomains with
  their sorted function lists (used directly by the signature-mesh baseline
  and as ground truth in tests);
* :mod:`repro.geometry.sorting` -- deterministic sorting of functions at a
  witness point.
"""

from repro.geometry.functions import LinearFunction, Hyperplane, intersection_hyperplane
from repro.geometry.domain import Domain, Constraint, Region, ABOVE, BELOW
from repro.geometry.engine import (
    SplitEngine,
    IntervalEngine,
    LPEngine,
    make_engine,
)
from repro.geometry.arrangement import Arrangement, Subdomain, build_arrangement
from repro.geometry.sorting import sort_functions_at, rank_of

__all__ = [
    "LinearFunction",
    "Hyperplane",
    "intersection_hyperplane",
    "Domain",
    "Constraint",
    "Region",
    "ABOVE",
    "BELOW",
    "SplitEngine",
    "IntervalEngine",
    "LPEngine",
    "make_engine",
    "Arrangement",
    "Subdomain",
    "build_arrangement",
    "sort_functions_at",
    "rank_of",
]
