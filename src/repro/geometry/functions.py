"""Linear score functions and their pairwise intersection hyperplanes.

Following the paper's system model (section 2.1), the outsourced database is
viewed as a set of math functions ``f_i(X) = a_i . X + c_i`` sharing the same
variables ``X = (x_1, ..., x_d)``.  For the Fig. 1 applicant table the
coefficients are the record's attribute values (GPA, awards, papers) and the
variables are the query-supplied weights.

Two distinct functions ``f_i`` and ``f_j`` intersect on the hyperplane
``(a_i - a_j) . X + (c_i - c_j) = 0``; these hyperplanes drive both the
I-tree and the signature-mesh arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.crypto.serialization import (
    encode_float,
    encode_float_vector,
    encode_int,
    encode_sequence,
    encode_str,
)

__all__ = ["LinearFunction", "Hyperplane", "intersection_hyperplane"]

#: Numerical tolerance used when deciding whether coefficients are equal.
COEFFICIENT_TOLERANCE = 1e-12


@dataclass(frozen=True)
class LinearFunction:
    """A linear score function ``f(X) = coefficients . X + constant``.

    Parameters
    ----------
    index:
        Position of the corresponding record in the outsourced database.
        Used for deterministic tie-breaking and for naming intersections
        ``I_{i,j}`` exactly as the paper does.
    coefficients:
        The ``d`` attribute values acting as coefficients of the weights.
    constant:
        Optional constant term (0 for the paper's pure weighted-sum
        template, non-zero for affine templates).
    """

    index: int
    coefficients: tuple[float, ...]
    constant: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "coefficients", tuple(float(c) for c in self.coefficients))
        object.__setattr__(self, "constant", float(self.constant))
        if len(self.coefficients) == 0:
            raise ValueError("a score function needs at least one coefficient")

    # ---------------------------------------------------------------- math
    @property
    def dimension(self) -> int:
        """Number of weight variables."""
        return len(self.coefficients)

    def evaluate(self, weights: Sequence[float]) -> float:
        """Score of this function at the weight vector ``weights``."""
        if len(weights) != self.dimension:
            raise ValueError(
                f"weight vector has dimension {len(weights)}, expected {self.dimension}"
            )
        return float(np.dot(self.coefficients, np.asarray(weights, dtype=float)) + self.constant)

    def __call__(self, weights: Sequence[float]) -> float:
        return self.evaluate(weights)

    def is_parallel_to(self, other: "LinearFunction") -> bool:
        """True when the two functions never intersect (or coincide)."""
        diff = np.asarray(self.coefficients) - np.asarray(other.coefficients)
        return bool(np.all(np.abs(diff) <= COEFFICIENT_TOLERANCE))

    def is_coincident_with(self, other: "LinearFunction") -> bool:
        """True when the two functions are equal everywhere."""
        return self.is_parallel_to(other) and abs(self.constant - other.constant) <= COEFFICIENT_TOLERANCE

    # --------------------------------------------------------- serialization
    def to_bytes(self) -> bytes:
        """Canonical encoding used for hashing and signing."""
        return encode_sequence(
            [
                encode_str("function"),
                encode_int(self.index),
                encode_float_vector(self.coefficients),
                encode_float(self.constant),
            ]
        )


@dataclass(frozen=True)
class Hyperplane:
    """The intersection locus of two score functions.

    ``normal . X + offset = 0`` where ``normal = a_i - a_j`` and
    ``offset = c_i - c_j``.  The *above* side is ``normal . X + offset >= 0``
    (i.e. ``f_i(X) >= f_j(X)``), matching the paper's I-tree convention.
    """

    i: int
    j: int
    normal: tuple[float, ...]
    offset: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "normal", tuple(float(v) for v in self.normal))
        object.__setattr__(self, "offset", float(self.offset))

    @property
    def dimension(self) -> int:
        return len(self.normal)

    def side_value(self, weights: Sequence[float]) -> float:
        """Signed value ``normal . X + offset`` (positive on the above side)."""
        return float(np.dot(self.normal, np.asarray(weights, dtype=float)) + self.offset)

    def is_degenerate(self) -> bool:
        """True when the normal vector is (numerically) zero."""
        return bool(np.all(np.abs(self.normal) <= COEFFICIENT_TOLERANCE))

    def to_bytes(self) -> bytes:
        """Canonical encoding used for hashing (intersection binding)."""
        return encode_sequence(
            [
                encode_str("hyperplane"),
                encode_int(self.i),
                encode_int(self.j),
                encode_float_vector(self.normal),
                encode_float(self.offset),
            ]
        )

    @property
    def name(self) -> str:
        """Human-readable name matching the paper's ``I_{i,j}`` notation."""
        return f"I_{{{self.i},{self.j}}}"


def intersection_hyperplane(f_i: LinearFunction, f_j: LinearFunction) -> Optional[Hyperplane]:
    """Hyperplane on which ``f_i`` and ``f_j`` have equal scores.

    Returns ``None`` when the functions are parallel (including coincident):
    parallel functions never swap order, so they contribute nothing to the
    arrangement.
    """
    if f_i.dimension != f_j.dimension:
        raise ValueError("functions must share the same weight variables")
    if f_i.is_parallel_to(f_j):
        return None
    normal = tuple(a - b for a, b in zip(f_i.coefficients, f_j.coefficients))
    offset = f_i.constant - f_j.constant
    return Hyperplane(i=f_i.index, j=f_j.index, normal=normal, offset=offset)
