"""Concrete tampering transforms on query results and verification objects.

Every attack takes the honest ``(result, verification_object)`` pair the
server produced and returns a tampered pair; attacks never mutate their
inputs.  An attack may be *inapplicable* to a particular result (for
example, dropping a record from an empty result); in that case it returns
``None`` and callers skip it.

The attacks are deliberately written from the adversary's point of view:
they only use information the compromised server actually has (the records,
the VO it built, other genuine records of the database) and never the
owner's private key -- which is exactly why the verification must catch
them.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.records import Record
from repro.core.results import QueryResult
from repro.ifmh.vo import VerificationObject
from repro.merkle.fmh_tree import BoundaryEntry
from repro.mesh.structures import MeshVerificationObject

__all__ = [
    "Attack",
    "AttackApplicability",
    "ATTACK_REGISTRY",
    "all_attacks",
    "apply_attack",
    "drop_record",
    "truncate_result",
    "forge_attribute",
    "inject_record",
    "reorder_result",
    "substitute_record",
    "tamper_signature",
    "tamper_boundary",
]

AnyVO = Union[VerificationObject, MeshVerificationObject]
TamperedPair = Optional[tuple[QueryResult, AnyVO]]


@dataclass(frozen=True)
class Attack:
    """A named tampering transform.

    ``violates`` records which correctness property the attack breaks
    (``"completeness"``, ``"soundness"`` or ``"authenticity"``), so tests can
    assert that the right class of check catches it.
    """

    name: str
    violates: str
    apply: Callable[[QueryResult, AnyVO, random.Random], TamperedPair]

    def __call__(
        self, result: QueryResult, vo: AnyVO, rng: Optional[random.Random] = None
    ) -> TamperedPair:
        return self.apply(result, vo, rng or random.Random(0))


# ---------------------------------------------------------------- helpers
def _flip_byte(data: bytes, position: int = 0) -> bytes:
    if not data:
        return b"\x01"
    position %= len(data)
    return data[:position] + bytes([data[position] ^ 0xFF]) + data[position + 1 :]


def _forged_record(record: Record, rng: random.Random) -> Record:
    """A record with one attribute nudged -- not present in the database."""
    values = list(record.values)
    position = rng.randrange(len(values))
    values[position] = values[position] + 1.0 + rng.random()
    return Record(record_id=record.record_id, values=tuple(values), label=record.label)


# ---------------------------------------------------------------- attacks
def drop_record(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Completeness: silently omit one record from the middle of the result."""
    if len(result) < 2:
        return None
    records = list(result.records)
    del records[len(records) // 2]
    return QueryResult(records=tuple(records)), vo


def truncate_result(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Completeness: return only a prefix of the true result."""
    if len(result) < 2:
        return None
    records = list(result.records)[:-1]
    return QueryResult(records=tuple(records)), vo


def forge_attribute(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Soundness: alter an attribute value of a returned record."""
    if len(result) == 0:
        return None
    records = list(result.records)
    position = rng.randrange(len(records))
    records[position] = _forged_record(records[position], rng)
    return QueryResult(records=tuple(records)), vo


def inject_record(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Soundness: insert a record that does not exist in the database."""
    if len(result) == 0:
        return None
    records = list(result.records)
    template_record = records[rng.randrange(len(records))]
    fake = Record(
        record_id=max(record.record_id for record in records) + 1_000_000,
        values=tuple(value + 0.5 for value in template_record.values),
        label="forged",
    )
    records.insert(len(records) // 2, fake)
    return QueryResult(records=tuple(records)), vo


def reorder_result(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Soundness: swap two records so the claimed score order is wrong."""
    if len(result) < 2:
        return None
    records = list(result.records)
    records[0], records[-1] = records[-1], records[0]
    return QueryResult(records=tuple(records)), vo


def substitute_record(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Soundness: replace a returned record with a duplicate of another one."""
    if len(result) < 2:
        return None
    records = list(result.records)
    records[0] = records[-1]
    return QueryResult(records=tuple(records)), vo


def tamper_signature(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Authenticity: corrupt a signature inside the verification object."""
    if isinstance(vo, VerificationObject):
        if vo.root_signature is not None:
            return result, replace(vo, root_signature=_flip_byte(vo.root_signature))
        tampered_iv = replace(
            vo.multi_signature_iv, signature=_flip_byte(vo.multi_signature_iv.signature)
        )
        return result, replace(vo, multi_signature_iv=tampered_iv)
    if not vo.pair_signatures:
        return None
    pairs = list(vo.pair_signatures)
    pairs[0] = dataclasses.replace(pairs[0], signature=_flip_byte(pairs[0].signature))
    return result, dataclasses.replace(vo, pair_signatures=tuple(pairs))


def tamper_boundary(result: QueryResult, vo: AnyVO, rng: random.Random) -> TamperedPair:
    """Completeness: forge the left boundary so a dropped prefix looks legal."""
    left = vo.left if isinstance(vo, MeshVerificationObject) else vo.fv.left
    if left.is_token:
        return None
    forged = BoundaryEntry(leaf_index=left.leaf_index, item=_forged_record(left.item, rng))
    if isinstance(vo, MeshVerificationObject):
        return result, dataclasses.replace(vo, left=forged)
    tampered_fv = dataclasses.replace(vo.fv, left=forged)
    return result, dataclasses.replace(vo, fv=tampered_fv)


#: Registry used by tests, examples and the security-analysis benchmark.
ATTACK_REGISTRY: Dict[str, Attack] = {
    attack.name: attack
    for attack in (
        Attack("drop-record", "completeness", drop_record),
        Attack("truncate-result", "completeness", truncate_result),
        Attack("forge-attribute", "soundness", forge_attribute),
        Attack("inject-record", "soundness", inject_record),
        Attack("reorder-result", "soundness", reorder_result),
        Attack("substitute-record", "soundness", substitute_record),
        Attack("tamper-signature", "authenticity", tamper_signature),
        Attack("tamper-boundary", "completeness", tamper_boundary),
    )
}


def all_attacks() -> list[Attack]:
    """Every registered attack, in a stable order."""
    return [ATTACK_REGISTRY[name] for name in sorted(ATTACK_REGISTRY)]


# ------------------------------------------------------------ applicability
@dataclass
class AttackApplicability:
    """Applicability bookkeeping for a tamper-attack sweep.

    An attack that returns ``None`` is *inapplicable* to that particular
    result shape (e.g. dropping a record from an empty result).  Skips are
    legitimate per query -- but an attack that was inapplicable for *every*
    tested scheme and query shape exercised nothing, and the suite that ran
    it is silently vacuous.  Recording every attempt here makes that
    failure mode detectable: tests and the fault-injection bench call
    :meth:`assert_not_vacuous` after a sweep.
    """

    applied: Dict[str, int] = dataclasses.field(default_factory=dict)
    skipped: Dict[str, int] = dataclasses.field(default_factory=dict)

    def record(self, name: str, applicable: bool) -> None:
        """Record one attempt of attack ``name``."""
        bucket = self.applied if applicable else self.skipped
        bucket[name] = bucket.get(name, 0) + 1

    def attempts(self, name: str) -> int:
        """Total attempts (applied + skipped) of attack ``name``."""
        return self.applied.get(name, 0) + self.skipped.get(name, 0)

    def attempted(self) -> tuple[str, ...]:
        """Names of every attack attempted at least once, sorted."""
        return tuple(sorted(set(self.applied) | set(self.skipped)))

    def vacuous(self) -> tuple[str, ...]:
        """Attacks that were attempted but never once applicable."""
        return tuple(
            name for name in self.attempted() if self.applied.get(name, 0) == 0
        )

    def merge(self, other: "AttackApplicability") -> None:
        """Fold another sweep's counts into this one."""
        for name, count in other.applied.items():
            self.applied[name] = self.applied.get(name, 0) + count
        for name, count in other.skipped.items():
            self.skipped[name] = self.skipped.get(name, 0) + count

    def assert_not_vacuous(self, expected: Optional[Sequence[str]] = None) -> None:
        """Fail if any attack never applied (optionally: or never attempted).

        ``expected`` names attacks that must have been *attempted* at least
        once -- pass ``ATTACK_REGISTRY`` keys to catch a sweep that silently
        stopped running an attack altogether.
        """
        if expected is not None:
            missing = sorted(set(expected) - set(self.attempted()))
            if missing:
                raise AssertionError(
                    f"attacks never attempted by the sweep: {', '.join(missing)}"
                )
        vacuous = self.vacuous()
        if vacuous:
            raise AssertionError(
                "attacks inapplicable for every tested scheme/query shape "
                f"(the suite is vacuous for them): {', '.join(vacuous)}"
            )


def apply_attack(
    attack: Attack,
    result: QueryResult,
    vo: AnyVO,
    rng: random.Random,
    stats: Optional[AttackApplicability] = None,
) -> TamperedPair:
    """Apply ``attack`` and record its applicability on ``stats``."""
    tampered = attack(result, vo, rng)
    if stats is not None:
        stats.record(attack.name, tampered is not None)
    return tampered
