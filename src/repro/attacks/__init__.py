"""Adversary simulation: tampering with query results and verification objects.

The paper's adversary model (section 2.2) allows the server -- or anyone on
the network path -- to return an arbitrary incorrect result.  This package
provides concrete tampering transforms so tests, examples and the security
analysis can demonstrate that every such manipulation is detected by the
verification step:

* completeness attacks: dropping or truncating records of the result;
* soundness attacks: forging attribute values, injecting records that are
  not in the database, reordering the result;
* verification-object attacks: tampering with signatures, sibling hashes or
  boundary records.
"""

from repro.attacks.tamper import (
    Attack,
    AttackApplicability,
    ATTACK_REGISTRY,
    all_attacks,
    apply_attack,
    drop_record,
    truncate_result,
    forge_attribute,
    inject_record,
    reorder_result,
    substitute_record,
    tamper_signature,
    tamper_boundary,
)

__all__ = [
    "Attack",
    "AttackApplicability",
    "ATTACK_REGISTRY",
    "all_attacks",
    "apply_attack",
    "drop_record",
    "truncate_result",
    "forge_attribute",
    "inject_record",
    "reorder_result",
    "substitute_record",
    "tamper_signature",
    "tamper_boundary",
]
