"""The reprolint engine: walk files once, run rules, apply suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.findings import PARSE_RULE, Finding
from repro.analysis.rules import Rule, all_rules
from repro.analysis.source import parse_module
from repro.analysis.suppressions import apply_suppressions, collect_suppressions

__all__ = ["LintResult", "lint_paths", "lint_sources"]


@dataclass
class LintResult:
    """Outcome of one linter run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    strict: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "LintResult") -> None:
        self.findings.extend(other.findings)
        self.files_checked += other.files_checked
        self.suppressed += other.suppressed


def _configured_rules(config: LintConfig) -> List[Rule]:
    rules: List[Rule] = []
    disabled = set(config.disabled_rules)
    for rule in all_rules():
        if rule.rule_id in disabled:
            continue
        rule.configure(config.options_for(rule.rule_id))
        rules.append(rule)
    return rules


def lint_sources(
    sources: Mapping[str, str], config: Optional[LintConfig] = None
) -> LintResult:
    """Lint in-memory sources (``relpath -> text``).  The test-facing API."""
    config = config or LintConfig()
    rules = _configured_rules(config)
    result = LintResult(strict=config.strict)
    for relpath in sorted(sources):
        if config.is_excluded(relpath):
            continue
        source = sources[relpath]
        result.files_checked += 1
        file_findings: List[Finding] = []
        try:
            info = parse_module(relpath, source)
        except (SyntaxError, ValueError) as error:
            result.findings.append(
                Finding(
                    path=relpath,
                    line=getattr(error, "lineno", 1) or 1,
                    column=(getattr(error, "offset", 0) or 1) - 1,
                    rule=PARSE_RULE,
                    message=f"file does not parse: {error.msg if isinstance(error, SyntaxError) else error}",
                )
            )
            continue
        for rule in rules:
            if not rule.applies_to(info.module):
                continue
            file_findings.extend(rule.check(info))
        suppressions, directive_findings = collect_suppressions(relpath, source)
        file_findings, suppressed = apply_suppressions(
            relpath, file_findings, suppressions, strict=config.strict
        )
        file_findings.extend(directive_findings)
        result.suppressed += suppressed
        result.findings.extend(file_findings)
    result.findings.sort()
    return result


def iter_python_files(paths: Sequence[str], config: LintConfig) -> Iterable[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Tuple[Path, ...] = tuple(sorted(path.rglob("*.py")))
        else:
            candidates = (path,)
        for candidate in candidates:
            relpath = _relative(candidate)
            if config.is_excluded(relpath) or relpath in seen:
                continue
            seen.add(relpath)
            yield candidate


def _relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Sequence[str], config: Optional[LintConfig] = None) -> LintResult:
    """Lint files and directory trees on disk."""
    config = config or LintConfig()
    sources = {}
    for path in iter_python_files(paths, config):
        sources[_relative(path)] = path.read_text(encoding="utf-8")
    return lint_sources(sources, config)
