"""Text and JSON reporters for reprolint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict

from repro.analysis.engine import LintResult

__all__ = ["render_text", "render_json"]

#: Bumped on any incompatible change to the JSON report layout.
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        by_rule = Counter(finding.rule for finding in result.findings)
        breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files_checked} file(s) "
            f"({breakdown}); {result.suppressed} suppressed"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), 0 findings, "
            f"{result.suppressed} suppressed"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload: Dict[str, Any] = {
        "tool": "reprolint",
        "report_version": REPORT_VERSION,
        "strict": result.strict,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
