"""reprolint configuration: built-in defaults + ``pyproject.toml`` overrides.

Configuration lives under ``[tool.reprolint]``::

    [tool.reprolint]
    exclude = ["tests/analysis/fixtures"]   # path prefixes never linted
    disable = ["RL006"]                     # rules turned off project-wide

    [tool.reprolint.rl001]
    allowed-modules = ["repro.crypto"]      # per-rule options (kebab-case)

Every rule documents its options in :mod:`repro.analysis.rules`; option
keys are normalized (``-`` to ``_``) before they reach the rule.  An
unknown rule id in ``disable`` or an unknown option key raises
:class:`LintConfigError` -- a config typo must fail loudly, not silently
re-enable an invariant.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Sequence, Tuple

__all__ = ["LintConfig", "LintConfigError", "load_config"]

_RULE_ID_PREFIX = "rl"


class LintConfigError(ValueError):
    """Raised for malformed ``[tool.reprolint]`` sections."""


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    #: Repo-relative path prefixes (POSIX style) excluded from linting.
    exclude: Tuple[str, ...] = ()
    #: Rule ids disabled project-wide (upper-case, e.g. ``"RL006"``).
    disabled_rules: Tuple[str, ...] = ()
    #: Per-rule option overrides: rule id -> {option: value}.
    rule_options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: Report stale suppressions (``--strict``).
    strict: bool = False

    def is_excluded(self, relpath: str) -> bool:
        posix = relpath.replace("\\", "/")
        return any(
            posix == prefix or posix.startswith(prefix.rstrip("/") + "/")
            for prefix in self.exclude
        )

    def options_for(self, rule_id: str) -> Mapping[str, Any]:
        return self.rule_options.get(rule_id, {})

    def with_strict(self, strict: bool) -> "LintConfig":
        return LintConfig(
            exclude=self.exclude,
            disabled_rules=self.disabled_rules,
            rule_options=self.rule_options,
            strict=strict,
        )


def _string_tuple(value: Any, context: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{context} must be a list of strings, got {value!r}")
    return tuple(value)


def load_config(
    pyproject: "Path | str | None" = None,
    known_rules: Sequence[str] = (),
) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml``, if present.

    ``pyproject=None`` looks for ``pyproject.toml`` in the current working
    directory; a missing file (or a file without a ``[tool.reprolint]``
    table) yields the defaults.
    """
    path = Path(pyproject) if pyproject is not None else Path("pyproject.toml")
    if not path.is_file():
        return LintConfig()
    with open(path, "rb") as stream:
        try:
            payload = tomllib.load(stream)
        except tomllib.TOMLDecodeError as error:
            raise LintConfigError(f"cannot parse {path}: {error}") from None
    table = payload.get("tool", {}).get("reprolint")
    if table is None:
        return LintConfig()
    if not isinstance(table, dict):
        raise LintConfigError("[tool.reprolint] must be a table")

    known = {rule.upper() for rule in known_rules}
    exclude: Tuple[str, ...] = ()
    disabled: Tuple[str, ...] = ()
    rule_options: Dict[str, Dict[str, Any]] = {}
    for key, value in table.items():
        if key == "exclude":
            exclude = _string_tuple(value, "[tool.reprolint].exclude")
        elif key == "disable":
            disabled = tuple(
                rule.upper() for rule in _string_tuple(value, "[tool.reprolint].disable")
            )
            unknown = sorted(set(disabled) - known) if known else []
            if unknown:
                raise LintConfigError(
                    f"[tool.reprolint].disable names unknown rules: {unknown}"
                )
        elif key.lower().startswith(_RULE_ID_PREFIX) and isinstance(value, dict):
            rule_id = key.upper()
            if known and rule_id not in known:
                raise LintConfigError(f"[tool.reprolint.{key}] configures unknown rule")
            rule_options[rule_id] = {
                option.replace("-", "_"): option_value
                for option, option_value in value.items()
            }
        else:
            raise LintConfigError(f"unknown [tool.reprolint] key {key!r}")
    return LintConfig(
        exclude=exclude, disabled_rules=disabled, rule_options=rule_options
    )
