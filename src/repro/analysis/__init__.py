"""reprolint: AST-based project-invariant checks for the repro codebase.

The correctness story of this reproduction rests on invariants the test
suite can only sample:

* every digest computed on behalf of a party must flow through the counting
  :class:`repro.crypto.hashing.HashFunction` wrappers (or the paper's
  Fig. 5a/7a logical counters silently drift),
* every signed message from epoch >= 1 must be built via
  :func:`repro.crypto.hashing.epoch_bound_combine` (or a freshness hole
  opens),
* the tolerance-replay and geometry paths must stay bit-deterministic
  (no unseeded randomness, no wall-clock influence, no approximate float
  predicates, no mutation of frozen config/package dataclasses),
* shared mutable server state must stay lock-guarded, and
* every fast-path toggle must keep its slow reference branch reachable.

This package turns those prose invariants into machine-checked rules: a
single-pass AST walker (:mod:`repro.analysis.engine`) runs a small rule
suite (:mod:`repro.analysis.rules`) over every file, applies
``# reprolint: disable=RULE -- reason`` suppressions (a rationale is
mandatory; see :mod:`repro.analysis.suppressions`) and reports findings as
text or JSON.  Run it as ``python -m repro.analysis [--format json]
[--strict] [paths]``; CI gates on a clean run over ``src`` and ``tests``.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression policy.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintResult, lint_paths, lint_sources
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "render_json",
    "render_text",
]
