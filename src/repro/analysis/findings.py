"""The finding record every reprolint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding", "PARSE_RULE", "SUPPRESSION_RULE"]

#: Pseudo-rule id used for files the engine cannot parse.  Not suppressible.
PARSE_RULE = "RL900"

#: Pseudo-rule id for suppression-hygiene findings (a ``disable`` comment
#: without a rationale, or -- under ``--strict`` -- a stale suppression).
#: Not suppressible, by design: the escape hatch cannot silence itself.
SUPPRESSION_RULE = "RL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by ``(path, line, column, rule)`` so reports are stable across
    runs and rule-execution order.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
