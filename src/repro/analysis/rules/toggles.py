"""RL007: fast-path toggles keep their slow reference branch alive.

Every optimization in this codebase ships behind a toggle
(``hash_consing``, ``batch_hashing``, ``builder``/``build_mode``) whose
slow branch is the *reference implementation* the bit-identity property
harnesses differentiate against.  A fast path whose slow twin is dead --
short-circuited by a constant, or replaced by ``raise
NotImplementedError`` -- silently degrades those differential tests into
self-comparisons.  This rule flags, for any ``if``/ternary whose condition
mentions a configured toggle:

* a boolean operand that is literally ``True``/``False`` (constant
  short-circuit: the toggle no longer decides the branch), and
* a branch whose entire body is ``raise NotImplementedError`` (the slow
  path was removed rather than kept callable).

Raising :class:`ConstructionError` (or any other exception) for *invalid*
toggle values remains legal -- only ``NotImplementedError`` marks a
removed implementation.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["LiveSlowPathRule"]


class LiveSlowPathRule(Rule):
    rule_id = "RL007"
    name = "live-slow-path"
    summary = "fast-path toggles must keep their slow reference branch reachable"
    scopes = ("repro",)
    option_names = ("scopes", "toggles", "banned_raises")

    def __init__(self) -> None:
        self.toggles: Tuple[str, ...] = (
            "hash_consing",
            "batch_hashing",
            "builder",
            "build_mode",
        )
        self.banned_raises: Tuple[str, ...] = ("NotImplementedError",)

    # ------------------------------------------------------------ helpers
    def _mentions_toggle(self, test: ast.AST) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Name) and node.id in self.toggles:
                return True
            if isinstance(node, ast.Attribute) and node.attr in self.toggles:
                return True
        return False

    @staticmethod
    def _constant_bool_operand(test: ast.AST) -> "ast.AST | None":
        for node in ast.walk(test):
            if isinstance(node, ast.BoolOp):
                for operand in node.values:
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, bool
                    ):
                        return operand
        return None

    def _is_removed_branch(self, body: List[ast.stmt]) -> bool:
        if len(body) != 1 or not isinstance(body[0], ast.Raise):
            return False
        exc = body[0].exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        return isinstance(exc, ast.Name) and exc.id in self.banned_raises

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in info.nodes(ast.If, ast.IfExp):
            if not self._mentions_toggle(node.test):
                continue
            constant = self._constant_bool_operand(node.test)
            if constant is not None:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"constant {constant.value!r} in a toggle condition "
                        "short-circuits the branch; the toggle no longer "
                        "selects between fast and slow paths",
                    )
                )
            if isinstance(node, ast.IfExp):
                continue
            for branch_name, branch in (("if", node.body), ("else", node.orelse)):
                if self._is_removed_branch(branch):
                    findings.append(
                        self.finding(
                            info,
                            branch[0],
                            f"the {branch_name}-branch of this toggle raises "
                            f"{self.banned_raises[0]}: the slow reference path "
                            "must stay callable for the bit-identity harnesses",
                        )
                    )
        return findings
