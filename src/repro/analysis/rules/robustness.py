"""RL008: no silently swallowed broad exception handlers.

The resilience layer's whole contract is that faults are *classified and
reported*: a replica error becomes a recorded attempt, feeds the quarantine
bookkeeping and surfaces in the :class:`ResilientExecution` trail.  A
``except Exception: pass`` anywhere in that path (or in the rest of the
project) silently converts a hard failure into wrong bookkeeping -- a retry
loop that looks healthy while eating crashes is worse than one that fails.

The rule flags every handler that is **broad** -- a bare ``except:``, or one
catching ``Exception`` / ``BaseException`` (alone or inside a tuple) -- and
does **not** re-raise anywhere in its body.  Narrow handlers
(``except QueryProcessingError:``) may swallow: catching a specific type is
itself the classification.  Broad handlers that re-raise (e.g. annotate-
then-``raise``) are fine; nested function definitions inside the handler do
not count as re-raising.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["SwallowedBroadExceptRule"]

_BROAD = frozenset({"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"})


class SwallowedBroadExceptRule(Rule):
    rule_id = "RL008"
    name = "swallowed-except"
    summary = "broad exception handlers (bare / Exception / BaseException) must re-raise"
    scopes = ("repro",)
    option_names = ("scopes",)

    # ------------------------------------------------------------ helpers
    def _broad_via(self, info: ModuleInfo, handler: ast.ExceptHandler) -> Optional[str]:
        """How the handler is broad (``"bare except"`` / the caught name), or None."""
        if handler.type is None:
            return "bare except:"
        caught = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for expression in caught:
            resolved = info.resolve(expression)
            if resolved in _BROAD:
                return resolved.rsplit(".", 1)[-1]
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """True when some statement of the handler body raises.

        Raises inside nested function/class definitions run later (if at
        all) and do not stop the swallow, so those subtrees are skipped.
        """
        stack: List[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for handler in info.nodes(ast.ExceptHandler):
            broad = self._broad_via(info, handler)
            if broad is None or self._reraises(handler):
                continue
            findings.append(
                self.finding(
                    info,
                    handler,
                    f"{broad} swallows every failure here; catch the specific "
                    "exception types this block can classify, or re-raise "
                    "after recording",
                )
            )
        return findings
