"""RL001: every digest flows through the counting wrappers.

The paper's Fig. 5a/7a report *numbers of hashing operations*; the
benchmark harness reproduces those figures from the logical counters kept
by :class:`repro.crypto.hashing.HashFunction` (and the bulk primitives next
to it).  A raw :func:`hashlib.sha256` call anywhere else computes a digest
the counters never see, so the reproduced figures silently drift.  This
rule bans direct ``hashlib``/``hmac`` digest construction outside the
crypto layer -- route the digest through
:class:`~repro.crypto.hashing.HashFunction`, ``sha256``/``sha256_many``,
or annotate the site with a rationale if the digest is genuinely not a
paper-counted hash (e.g. file-integrity checksums).
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo

__all__ = ["CountedDigestRule"]

#: Digest constructors whose direct use bypasses the counting wrappers.
_BANNED = frozenset(
    {
        "hashlib.new",
        "hashlib.md5",
        "hashlib.sha1",
        "hashlib.sha224",
        "hashlib.sha256",
        "hashlib.sha384",
        "hashlib.sha512",
        "hashlib.sha3_224",
        "hashlib.sha3_256",
        "hashlib.sha3_384",
        "hashlib.sha3_512",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.shake_128",
        "hashlib.shake_256",
        "hmac.new",
        "hmac.digest",
    }
)


class CountedDigestRule(Rule):
    rule_id = "RL001"
    name = "counted-digest"
    summary = (
        "digests outside the crypto layer must go through the counting "
        "HashFunction/sha256_many wrappers"
    )
    scopes = ("repro",)
    option_names = ("scopes", "allowed_modules")

    def __init__(self) -> None:
        #: Module prefixes where raw constructors are the implementation.
        self.allowed_modules: Tuple[str, ...] = ("repro.crypto",)

    def check(self, info: ModuleInfo) -> List[Finding]:
        if any(
            info.module == prefix or info.module.startswith(prefix + ".")
            for prefix in self.allowed_modules
        ):
            return []
        findings: List[Finding] = []
        for node in info.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
                # Only flag the outermost chain once (hashlib.sha256 is
                # flagged at the 2-segment Attribute, not again inside a
                # longer chain like hashlib.sha256(x).digest).
                continue
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            resolved = info.resolve(node)
            if resolved in _BANNED:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"direct {resolved} bypasses the counting hash wrappers; "
                        "use repro.crypto.hashing (HashFunction / sha256 / "
                        "sha256_many) so Fig. 5a/7a counters stay exact",
                    )
                )
        return findings
