"""RL009: persistence paths publish through the atomic-write helper.

Crash safety of the update pipeline rests on one invariant: every
*truncating* write to a persisted artifact or journal goes through
:func:`repro.core.artifact.atomic_write_bytes` (temp file + fsync +
``os.replace``), so a crash mid-write can never leave a half-written file
where a valid one used to be.  A bare ``np.savez(path, ...)`` or
``open(path, "wb")`` in those modules silently reintroduces the torn-write
window the whole recovery story assumes away.

The rule flags, inside the persistence scopes, any ``numpy.savez`` /
``numpy.savez_compressed`` / ``numpy.save`` call and any
``open``/``io.open``/``os.fdopen`` call whose literal mode truncates or
creates (``"w"``/``"x"``) -- unless the call sits lexically inside one of
the ``allowed_functions`` that *implement* the atomic discipline
(``atomic_write_bytes`` itself and the in-memory ``_encode_npz``).
Append mode (``"ab"``) is deliberately legal: the journal's append-only
frames are crash-safe by construction (checksummed framing, torn tails
discarded on scan), and forcing appends through a rewrite would destroy
exactly the property the journal exists for.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo, call_args

__all__ = ["AtomicPersistenceRule"]

#: numpy writers that persist straight to a path when handed one.
_NUMPY_WRITERS = frozenset({"numpy.save", "numpy.savez", "numpy.savez_compressed"})

#: file-opening callables whose mode argument decides crash safety.
_OPENERS = frozenset({"open", "builtins.open", "io.open", "os.fdopen"})


class AtomicPersistenceRule(Rule):
    rule_id = "RL009"
    name = "atomic-persistence"
    summary = (
        "persistence modules must truncate-write only through "
        "atomic_write_bytes (temp + fsync + os.replace)"
    )
    scopes = ("repro.core.artifact", "repro.resilience.journal")
    option_names = ("scopes", "allowed_functions")

    def __init__(self) -> None:
        #: Functions that implement (or feed) the atomic write path.
        self.allowed_functions: Tuple[str, ...] = (
            "atomic_write_bytes",
            "_encode_npz",
        )

    # ------------------------------------------------------------ helpers
    def _in_allowed_function(self, info: ModuleInfo, node: ast.AST) -> bool:
        function = info.enclosing_function(node)
        while function is not None:
            if function.name in self.allowed_functions:
                return True
            function = info.enclosing_function(function)
        return False

    @staticmethod
    def _literal_mode(call: ast.Call) -> Optional[str]:
        """The literal mode string of an open-style call, if statically known."""
        positional, keywords = call_args(call)
        mode_node: Optional[ast.expr] = None
        for keyword in keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
        if mode_node is None and len(positional) >= 2:
            mode_node = positional[1]
        if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
            return mode_node.value
        return None

    # -------------------------------------------------------------- check
    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for call in info.nodes(ast.Call):
            resolved = info.resolve(call.func)
            if resolved is None or self._in_allowed_function(info, call):
                continue
            if resolved in _NUMPY_WRITERS:
                findings.append(
                    self.finding(
                        info,
                        call,
                        f"bare {resolved} in a persistence module can tear "
                        "on crash; serialize via _encode_npz and publish "
                        "through atomic_write_bytes",
                    )
                )
            elif resolved in _OPENERS:
                mode = self._literal_mode(call)
                if mode is not None and ("w" in mode or "x" in mode):
                    findings.append(
                        self.finding(
                            info,
                            call,
                            f"{resolved}(..., {mode!r}) truncates in place; a "
                            "crash mid-write leaves a torn file -- publish "
                            "through atomic_write_bytes (append mode stays "
                            "legal: journal frames are crash-safe by design)",
                        )
                    )
        return findings
