"""RL004: digest- and replay-producing modules stay bit-deterministic.

Construction, updates and verification are proven *bit-identical* across
fast paths, artifact round trips and incremental updates.  That property
dies the moment a digest-producing code path consults an unseeded RNG or
the wall clock.  In the deterministic modules this rule therefore bans

* unseeded entropy: ``random.Random()`` with no seed, the module-level
  ``random.*`` functions (global Mersenne Twister state), any use of the
  legacy ``numpy.random.*`` global generator, and ``numpy.random
  .default_rng()`` without a seed;
* wall-clock reads: ``time.time``/``time.time_ns``, ``datetime.now`` /
  ``utcnow`` / ``today`` -- anything whose value depends on *when* the
  code runs.

Monotonic duration measurement (``time.perf_counter``, ``time.monotonic``,
``time.process_time``) is explicitly allowed: the paper's timing figures
need it, and a duration can only end up in a report, never in a digest.
Seeded generators (``random.Random(seed)``, injected ``rng`` parameters)
are likewise fine -- determinism, not abstinence, is the invariant.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import ModuleInfo, call_args

__all__ = ["UnseededEntropyRule"]

#: Module-level functions backed by the global (unseeded) Mersenne Twister.
_GLOBAL_RANDOM = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.getrandbits",
        "random.gauss",
        "random.normalvariate",
        "random.betavariate",
        "random.expovariate",
        "random.seed",
    }
)

#: Wall-clock reads (value depends on when the code runs).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Constructors that are unseeded when called with no arguments.
_SEEDABLE = frozenset({"random.Random", "random.SystemRandom", "numpy.random.default_rng"})


class UnseededEntropyRule(Rule):
    rule_id = "RL004"
    name = "determinism"
    summary = (
        "no unseeded randomness or wall-clock influence in digest/replay modules"
    )
    scopes = (
        "repro.ifmh",
        "repro.merkle",
        "repro.itree",
        "repro.geometry",
        "repro.mesh",
        "repro.core",
        "repro.resilience",
    )
    option_names = ("scopes",)

    def check(self, info: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in info.nodes(ast.Call):
            resolved = info.resolve(node.func)
            if resolved is None:
                continue
            positional, keywords = call_args(node)
            if resolved in _SEEDABLE and not positional and not keywords:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"unseeded {resolved}() in a deterministic module; "
                        "seed it or accept an injected rng",
                    )
                )
        for node in info.nodes(ast.Attribute, ast.Name):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            resolved = info.resolve(node)
            if resolved is None:
                continue
            if resolved in _GLOBAL_RANDOM:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} uses the global unseeded RNG; replays "
                        "through this path are not reproducible",
                    )
                )
            elif resolved in _WALL_CLOCK:
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} reads the wall clock in a deterministic "
                        "module; use time.perf_counter for durations, or move "
                        "timestamping out of the digest/replay path",
                    )
                )
            elif (
                resolved.startswith("numpy.random.")
                and resolved != "numpy.random.default_rng"
                and not isinstance(info.parent(node), ast.Attribute)
            ):
                findings.append(
                    self.finding(
                        info,
                        node,
                        f"{resolved} touches numpy's legacy global generator; "
                        "pass an explicit seeded Generator instead",
                    )
                )
        return findings
