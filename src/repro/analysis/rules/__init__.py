"""The reprolint rule suite.

Each rule protects one project invariant (see ``docs/static-analysis.md``
for the catalogue).  Rules subclass :class:`Rule`, declare the module
prefixes they apply to (``scopes``; overridable per rule via
``[tool.reprolint.rlNNN] scopes = [...]``) and consume the single-pass
indexes of :class:`repro.analysis.source.ModuleInfo`.
"""

from __future__ import annotations

import ast
from typing import Any, List, Mapping, Sequence, Tuple

from repro.analysis.config import LintConfigError
from repro.analysis.findings import Finding
from repro.analysis.source import ModuleInfo

__all__ = ["Rule", "all_rules"]


class Rule:
    """Base class for one machine-checked invariant."""

    #: Stable identifier, e.g. ``"RL001"``.
    rule_id: str = ""
    #: Short human name used by ``--list-rules``.
    name: str = ""
    #: One-line statement of the protected invariant.
    summary: str = ""
    #: Module-name prefixes this rule applies to; ``()`` means every module.
    scopes: Tuple[str, ...] = ("repro",)
    #: Option names accepted via ``[tool.reprolint.rlNNN]``.
    option_names: Tuple[str, ...] = ("scopes",)

    def configure(self, options: Mapping[str, Any]) -> None:
        """Apply per-rule options from the config file (strict on typos)."""
        for key, value in options.items():
            if key not in self.option_names:
                raise LintConfigError(
                    f"rule {self.rule_id} has no option {key!r}; "
                    f"accepted: {sorted(self.option_names)}"
                )
            if isinstance(getattr(type(self), key, None), property):
                raise LintConfigError(f"rule {self.rule_id} option {key!r} is read-only")
            if isinstance(value, list):
                value = tuple(value)
            setattr(self, key, value)

    def applies_to(self, module: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module == scope or module.startswith(scope + ".") for scope in self.scopes
        )

    def check(self, info: ModuleInfo) -> List[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def finding(self, info: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=info.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


def all_rules() -> Sequence[Rule]:
    """Fresh instances of the full rule suite, in id order."""
    from repro.analysis.rules.determinism import UnseededEntropyRule
    from repro.analysis.rules.epoch import EpochBindingRule
    from repro.analysis.rules.exactness import ExactPredicateRule
    from repro.analysis.rules.frozen import FrozenMutationRule
    from repro.analysis.rules.hashing import CountedDigestRule
    from repro.analysis.rules.locking import LockGuardRule
    from repro.analysis.rules.persistence import AtomicPersistenceRule
    from repro.analysis.rules.robustness import SwallowedBroadExceptRule
    from repro.analysis.rules.scaling import CpuCountRule
    from repro.analysis.rules.serving import ServingWallClockRule
    from repro.analysis.rules.toggles import LiveSlowPathRule

    return (
        CountedDigestRule(),
        EpochBindingRule(),
        FrozenMutationRule(),
        UnseededEntropyRule(),
        ExactPredicateRule(),
        LockGuardRule(),
        LiveSlowPathRule(),
        SwallowedBroadExceptRule(),
        AtomicPersistenceRule(),
        ServingWallClockRule(),
        CpuCountRule(),
    )
